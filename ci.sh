#!/usr/bin/env bash
# Local CI: the checks a change must pass before merging.
#
#   ./ci.sh
#
# Runs entirely offline — the root workspace has no registry
# dependencies (crates/bench, which needs criterion, is a standalone
# workspace and is not built here).
set -euo pipefail
cd "$(dirname "$0")"

echo "== format =="
cargo fmt --check

echo "== build (release) =="
cargo build --release

echo "== build (release, examples) =="
cargo build --release --examples

echo "== tests =="
cargo test -q

echo "== distributed socket tests (wall-clock bounded) =="
# The multi-process crash-recovery suite talks over real TCP sockets and
# SIGKILLs worker processes; a wedged accept or a leaked child must be
# killed by a wall-clock bound, never allowed to hang CI. Every listener
# binds port 0 (OS-assigned), so parallel CI runs cannot collide.
timeout 300 cargo test -q -p crossbow --test dist_train

echo "== chaos scenarios (seeded, wall-clock bounded) =="
# Replay two named chaos scenarios end to end through the real CLI: a
# SIGKILL of the primary coordinator with a warm-standby takeover, and a
# cascade across all three fault-injector families. Both are pure
# functions of --seed, every listener binds port 0, and the wall-clock
# bound reaps any wedged child. The grep asserts the machine-readable
# verdict, not just the exit code.
CHAOS_LOG=$(mktemp)
timeout 300 ./target/release/crossbow chaos --scenario kill-primary --seed 7 | tee "$CHAOS_LOG"
grep -q "CHAOS-REPORT scenario=kill-primary seed=7 .* pass=true" "$CHAOS_LOG"
timeout 300 ./target/release/crossbow chaos --scenario cascade --seed 7 | tee "$CHAOS_LOG"
grep -q "CHAOS-REPORT scenario=cascade seed=7 .* pass=true" "$CHAOS_LOG"
rm -f "$CHAOS_LOG"

echo "== fleet serving smoke (seeded, wall-clock bounded) =="
# Drive the multi-model serving fleet through the real CLI: an
# open-loop flood with mixed-priority closed streams, a canary staged
# and promoted mid-run, a shadow mirror, and manual autoscaler probes.
# The binary exits non-zero unless every admitted request was answered,
# per-client versions stayed monotone, the canary served, the promotion
# was observed, and the pools scaled both ways; the grep asserts the
# machine-readable verdict, not just the exit code.
FLEET_LOG=$(mktemp)
timeout 120 ./target/release/crossbow fleet --seed 7 | tee "$FLEET_LOG"
grep -q "FLEET-REPORT pass=true" "$FLEET_LOG"
# Same drill with an int8 canary: the candidate is quantized from the
# primary, staged with its measured accuracy delta, and the promoted
# primary must keep the precision label and delta (precision_ok).
timeout 120 ./target/release/crossbow fleet --seed 7 --precision int8 | tee "$FLEET_LOG"
grep -q "FLEET-REPORT pass=true .*precision=int8 precision_ok=true" "$FLEET_LOG"
rm -f "$FLEET_LOG"

echo "== trace validity =="
# A short traced run must emit parseable Chrome Trace JSON holding the
# learning, local-sync and global-sync spans (the --check mode of the
# trace_tour example parses it back with the in-repo JSON parser).
TRACE_DIR=$(mktemp -d)
./target/release/crossbow train --model lenet --gpus 2 --learners 2 \
    --epochs 1 --trace "$TRACE_DIR/train.json" > /dev/null
cargo run --release -q -p crossbow --example trace_tour -- --check "$TRACE_DIR/train.json"
rm -rf "$TRACE_DIR"

echo "== data plane (pack/verify round trip, wall-clock bounded) =="
# Pack a small synthetic dataset into shards through the real CLI, then
# re-validate every header, page and index checksum. `verify` exits
# non-zero on any corrupt shard; the greps assert the machine-readable
# markers. (The corruption matrix and disk/RAM bit-identity are covered
# by `cargo test` above; membench below re-asserts bit-identity.)
DATA_DIR=$(mktemp -d)
timeout 120 ./target/release/crossbow data pack --dir "$DATA_DIR/shards" \
    --samples 1024 --samples-per-shard 256 | grep -q "PACKED .* shards=4 samples=1024"
timeout 120 ./target/release/crossbow data verify --dir "$DATA_DIR/shards" \
    | grep -q "VERIFIED valid=4 corrupt=0"
rm -rf "$DATA_DIR"

echo "== memory-plan bench smoke =="
# Smoke-sized run of the §4.5 micro-benchmarks. membench exits non-zero
# if the arena allocation counter is not flat across iteration counts —
# the CI assertion that the training hot path performs no steady-state
# allocations — if an mmap-shard gather is not bit-identical to the
# same gather from RAM (the §14 data-plane invariant), if a fleet
# serving run leaves an admitted request unanswered (the §15 invariant;
# BENCH_serve.json records per-SLO goodput for 1- vs 3-model fleets
# with the autoscaler off and on), if any SIMD GEMM tier produces
# different bits than the scalar fallback (the §16 kernel-dispatch
# invariant, checked per size in BENCH_gemm.json), or if forced-scalar
# inference diverges bitwise from the auto-detected SIMD path
# (BENCH_infer.json, which also records f32/bf16/int8 eval throughput,
# snapshot bytes and accuracy deltas).
BENCH_DIR=$(mktemp -d)
./target/release/membench --smoke --out-dir "$BENCH_DIR" > /dev/null
rm -rf "$BENCH_DIR"

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== docs (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== ci: all green =="
