#!/usr/bin/env bash
# Local CI: the checks a change must pass before merging.
#
#   ./ci.sh
#
# Runs entirely offline — the root workspace has no registry
# dependencies (crates/bench, which needs criterion, is a standalone
# workspace and is not built here).
set -euo pipefail
cd "$(dirname "$0")"

echo "== format =="
cargo fmt --check

echo "== build (release) =="
cargo build --release

echo "== build (release, examples) =="
cargo build --release --examples

echo "== tests =="
cargo test -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== docs (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== ci: all green =="
