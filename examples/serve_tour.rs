//! Tour of the serving subsystem: snapshot hot-swap, micro-batching,
//! checkpoint round-trips, and the combined train-and-serve run.
//!
//! ```sh
//! cargo run --release -p crossbow --example serve_tour
//! ```
//!
//! Training's product is the central average model `z`; this example
//! deploys it. A [`SnapshotRegistry`] holds immutable versioned models
//! that can be swapped under load, a [`Server`] coalesces concurrent
//! requests into micro-batches, and [`train_and_serve`] runs both halves
//! at once — the trainer keeps publishing fresher `z` snapshots while
//! clients hammer the server.

use crossbow::data::synth::gaussian_mixture;
use crossbow::nn::zoo::mlp;
use crossbow::serve::{
    export_snapshot, load_into, run_load, train_and_serve, BatchConfig, LoadConfig, LoadMode,
    ModelSpec, ServeConfig, Server, SnapshotRegistry, TrainAndServeConfig,
};
use crossbow::sync::sma::{Sma, SmaConfig};
use crossbow::sync::TrainerConfig;
use crossbow::tensor::Rng;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    println!("CROSSBOW serve tour");
    println!("===================");

    // -- 1. A registry of versioned snapshots ----------------------------
    let net = Arc::new(mlp(6, &[16], 4));
    let registry = Arc::new(SnapshotRegistry::new(ModelSpec::of(&net)));
    let mut rng = Rng::new(7);
    let v1 = registry
        .publish(net.init_params(&mut rng), 0)
        .expect("initial model fits");
    println!("published version {v1} ({} parameters)", net.param_len());

    // -- 2. A server with micro-batching ---------------------------------
    let mut config = ServeConfig::new(2);
    config.batch = BatchConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(1),
        ..BatchConfig::default()
    };
    let server = Server::start(Arc::clone(&net), Arc::clone(&registry), config);
    let client = server.client();

    let (train_set, test_set) = gaussian_mixture(4, 6, 2304, 0.25, 8)
        .split_at(2048)
        .expect("demo split is in range");
    let sample_len = test_set.sample_len();
    let inputs: Vec<Vec<f32>> = test_set
        .images_tensor()
        .data()
        .chunks_exact(sample_len)
        .take(32)
        .map(<[f32]>::to_vec)
        .collect();

    let one = client.call(inputs[0].clone()).expect("server up");
    println!(
        "one request     : class {} from snapshot v{} in {:?}",
        one.class, one.version, one.latency
    );

    // -- 3. Hot swap under load ------------------------------------------
    let v2 = registry
        .publish(net.init_params(&mut rng), 50)
        .expect("same shape republished");
    let load = LoadConfig {
        mode: LoadMode::Closed {
            clients: 4,
            requests_per_client: 50,
        },
        seed: 3,
        panic_client: None,
    };
    let result = run_load(&client, &inputs, &load);
    println!(
        "after swap to v{v2}: {} ok, {} rejected, {} failed, versions {}..{} (monotonic: {})",
        result.ok,
        result.rejected,
        result.failed,
        result.min_version,
        result.max_version,
        result.versions_monotonic
    );
    let report = server.shutdown();
    println!("server report   : {}", report.summary());

    // -- 4. Snapshots round-trip through the checkpoint store ------------
    let dir = std::env::temp_dir().join(format!("crossbow-serve-tour-{}", std::process::id()));
    let snapshot = registry.current().expect("something published");
    export_snapshot(&dir, &snapshot).expect("export");
    let restored = Arc::new(SnapshotRegistry::new(ModelSpec::of(&net)));
    let version = load_into(&restored, &dir).expect("import").expect("found");
    println!(
        "checkpoint trip : exported v{} -> fresh registry serves v{version}",
        snapshot.version
    );
    let _ = std::fs::remove_dir_all(&dir);

    // -- 5. Train and serve at once --------------------------------------
    let mut algo = Sma::new(net.init_params(&mut rng), 4, SmaConfig::default());
    let ts_config = TrainAndServeConfig {
        trainer: TrainerConfig::new(16, 4).with_seed(7),
        publish_every: 10,
        serve: ServeConfig::new(2),
        load: LoadConfig {
            mode: LoadMode::Closed {
                clients: 2,
                requests_per_client: 50,
            },
            seed: 13,
            panic_client: None,
        },
    };
    let combined = train_and_serve(&net, &train_set, &test_set, &mut algo, &ts_config);
    println!();
    println!("train-and-serve:");
    println!(
        "  trained       : {} iterations, final accuracy {:.3}",
        combined.curve.iterations, combined.curve.final_accuracy
    );
    println!(
        "  load          : {} ok / {} submitted, versions {}..{} (monotonic: {})",
        combined.load.ok,
        combined.load.submitted,
        combined.load.min_version,
        combined.load.max_version,
        combined.load.versions_monotonic
    );
    println!("  server        : {}", combined.serve.summary());
}
