//! Tour of the serving subsystem: snapshot hot-swap, micro-batching,
//! checkpoint round-trips, the combined train-and-serve run, and a
//! quantized int8 candidate staged through the fleet's canary route.
//!
//! ```sh
//! cargo run --release -p crossbow --example serve_tour
//! ```
//!
//! Training's product is the central average model `z`; this example
//! deploys it. A [`SnapshotRegistry`] holds immutable versioned models
//! that can be swapped under load, a [`Server`] coalesces concurrent
//! requests into micro-batches, and [`train_and_serve`] runs both halves
//! at once — the trainer keeps publishing fresher `z` snapshots while
//! clients hammer the server. The finale quantizes the trained model to
//! int8, measures its accuracy delta against the f32 source, and walks
//! it through canary staging and promotion (DESIGN.md §16).

use crossbow::data::synth::gaussian_mixture;
use crossbow::fleet::{CandidateMode, Fleet, FleetConfig, SloClass};
use crossbow::nn::zoo::mlp;
use crossbow::serve::{
    export_snapshot, load_into, run_load, train_and_serve, BatchConfig, LoadConfig, LoadMode,
    ModelSpec, ServeConfig, Server, SnapshotRegistry, TrainAndServeConfig,
};
use crossbow::sync::sma::{Sma, SmaConfig};
use crossbow::sync::TrainerConfig;
use crossbow::tensor::{Precision, Rng};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    println!("CROSSBOW serve tour");
    println!("===================");

    // -- 1. A registry of versioned snapshots ----------------------------
    let net = Arc::new(mlp(6, &[16], 4));
    let registry = Arc::new(SnapshotRegistry::new(ModelSpec::of(&net)));
    let mut rng = Rng::new(7);
    let v1 = registry
        .publish(net.init_params(&mut rng), 0)
        .expect("initial model fits");
    println!("published version {v1} ({} parameters)", net.param_len());

    // -- 2. A server with micro-batching ---------------------------------
    let mut config = ServeConfig::new(2);
    config.batch = BatchConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(1),
        ..BatchConfig::default()
    };
    let server = Server::start(Arc::clone(&net), Arc::clone(&registry), config);
    let client = server.client();

    let (train_set, test_set) = gaussian_mixture(4, 6, 2304, 0.25, 8)
        .split_at(2048)
        .expect("demo split is in range");
    let sample_len = test_set.sample_len();
    let inputs: Vec<Vec<f32>> = test_set
        .images_tensor()
        .data()
        .chunks_exact(sample_len)
        .take(32)
        .map(<[f32]>::to_vec)
        .collect();

    let one = client.call(inputs[0].clone()).expect("server up");
    println!(
        "one request     : class {} from snapshot v{} in {:?}",
        one.class, one.version, one.latency
    );

    // -- 3. Hot swap under load ------------------------------------------
    let v2 = registry
        .publish(net.init_params(&mut rng), 50)
        .expect("same shape republished");
    let load = LoadConfig {
        mode: LoadMode::Closed {
            clients: 4,
            requests_per_client: 50,
        },
        seed: 3,
        panic_client: None,
    };
    let result = run_load(&client, &inputs, &load);
    println!(
        "after swap to v{v2}: {} ok, {} rejected, {} failed, versions {}..{} (monotonic: {})",
        result.ok,
        result.rejected,
        result.failed,
        result.min_version,
        result.max_version,
        result.versions_monotonic
    );
    let report = server.shutdown();
    println!("server report   : {}", report.summary());

    // -- 4. Snapshots round-trip through the checkpoint store ------------
    let dir = std::env::temp_dir().join(format!("crossbow-serve-tour-{}", std::process::id()));
    let snapshot = registry.current().expect("something published");
    export_snapshot(&dir, &snapshot).expect("export");
    let restored = Arc::new(SnapshotRegistry::new(ModelSpec::of(&net)));
    let version = load_into(&restored, &dir).expect("import").expect("found");
    println!(
        "checkpoint trip : exported v{} -> fresh registry serves v{version}",
        snapshot.version
    );
    let _ = std::fs::remove_dir_all(&dir);

    // -- 5. Train and serve at once --------------------------------------
    let mut algo = Sma::new(net.init_params(&mut rng), 4, SmaConfig::default());
    let ts_config = TrainAndServeConfig {
        trainer: TrainerConfig::new(16, 4).with_seed(7),
        publish_every: 10,
        serve: ServeConfig::new(2),
        load: LoadConfig {
            mode: LoadMode::Closed {
                clients: 2,
                requests_per_client: 50,
            },
            seed: 13,
            panic_client: None,
        },
        precision: Precision::F32,
    };
    let combined = train_and_serve(&net, &train_set, &test_set, &mut algo, &ts_config);
    println!();
    println!("train-and-serve:");
    println!(
        "  trained       : {} iterations, final accuracy {:.3}",
        combined.curve.iterations, combined.curve.final_accuracy
    );
    println!(
        "  load          : {} ok / {} submitted, versions {}..{} (monotonic: {})",
        combined.load.ok,
        combined.load.submitted,
        combined.load.min_version,
        combined.load.max_version,
        combined.load.versions_monotonic
    );
    println!("  server        : {}", combined.serve.summary());

    // -- 6. An int8 candidate through the canary route -------------------
    // Serve the trained f32 model from a one-model fleet, quantize it to
    // int8 (per-output-channel scales, ~3.6x smaller snapshots), measure
    // the top-1 accuracy delta on the held-out set, and stage it as a
    // canary taking 25% of traffic. Promotion publishes the quantized
    // model as the next primary version — the precision label and the
    // measured delta ride along, so operators (and crossbow-fleet's
    // report) always know what is serving and what it cost in accuracy.
    let trained = algo.center_mut().to_vec();
    let fleet = Fleet::builder(FleetConfig::default())
        .model("tour", Arc::clone(&net))
        .start();
    let registry = fleet.registry("tour").expect("registered above");
    registry
        .publish(trained.clone(), combined.curve.iterations as u64)
        .expect("trained model fits");

    let quant = Arc::new(net.quantize(&trained, Precision::Int8));
    let delta = crossbow::nn::accuracy_delta(
        &net,
        &trained,
        &quant,
        &test_set.images_tensor(),
        test_set.labels(),
        64,
    );
    fleet
        .stage_quantized_candidate(
            "tour",
            quant,
            Some(delta),
            CandidateMode::Canary { percent: 25 },
        )
        .expect("spec matches");
    let fclient = fleet.client();
    let mut canary_hits = 0;
    for input in &inputs {
        let p = fclient
            .call(
                "tour",
                input.clone(),
                SloClass::Interactive,
                Duration::from_millis(100),
            )
            .expect("fleet up");
        canary_hits += usize::from(p.canary);
    }
    let promoted = fleet
        .promote("tour", combined.curve.iterations as u64 + 1)
        .expect("model exists")
        .expect("candidate staged");
    let snapshot = registry.current().expect("published above");
    println!();
    println!("int8 canary:");
    println!(
        "  staged        : accuracy delta vs f32 {delta:+.4}, {canary_hits}/{} requests \
         took the canary",
        inputs.len()
    );
    println!(
        "  promoted      : v{promoted} serves {} (delta recorded: {})",
        snapshot.precision,
        snapshot
            .accuracy_delta
            .map_or_else(|| "none".to_string(), |d| format!("{d:+.4}")),
    );
    assert_eq!(snapshot.precision, Precision::Int8);
    assert_eq!(snapshot.accuracy_delta, Some(delta));
    let fleet_report = fleet.shutdown();
    println!(
        "  fleet         : {} completed, {} shed",
        fleet_report.total_completed(),
        fleet_report.total_shed()
    );
}
