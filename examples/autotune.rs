//! Auto-tuning the number of learners per GPU (paper §3.4 / Algorithm 2).
//!
//! ```sh
//! cargo run --release -p crossbow --example autotune
//! ```
//!
//! For each benchmark the tuner probes simulated training throughput with
//! growing learner counts and settles at the knee of the curve — more
//! learners when one small-batch replica cannot fill the GPU (ResNet-32 at
//! b = 64), fewer when a single task already saturates it (ResNet-50).

use crossbow::autotuner::tune_to_convergence;
use crossbow::benchmark::Benchmark;
use crossbow::exec_sim::{simulate, SimConfig};

fn main() {
    println!("Auto-tuner decisions on one simulated Titan X GPU");
    println!();
    for benchmark in Benchmark::all() {
        let batch = benchmark.profile.default_batch;
        let probe =
            |m: usize| simulate(&SimConfig::crossbow(benchmark.profile, 1, m, batch)).throughput;
        let base = probe(1);
        let (m, observations) = tune_to_convergence(base * 0.05, 8, probe);
        println!("{:>10} (b = {batch}):", benchmark.name);
        for (m_probe, t) in &observations {
            println!(
                "    m = {m_probe}: {:>9.0} images/s{}",
                t,
                if *m_probe == m { "   <- chosen" } else { "" }
            );
        }
        println!();
    }
}
