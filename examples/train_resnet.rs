//! The paper's headline scenario: ResNet-32 with small batches on a
//! multi-GPU server, CROSSBOW (SMA) against the TensorFlow-style S-SGD
//! baseline.
//!
//! ```sh
//! cargo run --release -p crossbow --example train_resnet
//! ```
//!
//! Mirrors §5.2 / Figure 10a: the baseline couples the batch size to the
//! GPU count, while CROSSBOW keeps the user's small batch and adds model
//! replicas instead.

use crossbow::benchmark::Benchmark;
use crossbow::engine::{AlgorithmKind, Session, SessionConfig};

fn main() {
    let gpus = 8;
    let benchmark = Benchmark::resnet32();
    println!(
        "ResNet-32 on {gpus} simulated GPUs (dataset: {} @ {} samples)",
        benchmark.profile.dataset, benchmark.profile.train_samples
    );
    println!();

    // CROSSBOW: small batch per learner, SMA synchronisation, auto-tuned m.
    let crossbow_cfg = SessionConfig::new(benchmark)
        .with_gpus(gpus)
        .with_batch(64)
        .with_algorithm(AlgorithmKind::Sma { tau: 1 })
        .with_seed(11);
    let crossbow_report = Session::new(crossbow_cfg)
        .run()
        .expect("checkpointing disabled; cannot fail");
    println!("CROSSBOW  : {}", crossbow_report.summary());

    // Baseline: parallel S-SGD, one replica per GPU, global barrier.
    let baseline_cfg = SessionConfig::new(benchmark)
        .with_gpus(gpus)
        .with_batch(64)
        .with_algorithm(AlgorithmKind::SSgd)
        .with_seed(11);
    let baseline_report = Session::new(baseline_cfg)
        .run()
        .expect("checkpointing disabled; cannot fail");
    println!("baseline  : {}", baseline_report.summary());

    println!();
    match (crossbow_report.tta, baseline_report.tta) {
        (Some(cb), Some(tf)) => {
            let speedup = tf.as_secs_f64() / cb.as_secs_f64();
            println!(
                "CROSSBOW reaches {:.0}% accuracy {speedup:.2}x {} than the baseline",
                benchmark.scaled_target * 100.0,
                if speedup >= 1.0 { "faster" } else { "slower" },
            );
        }
        (Some(_), None) => {
            println!("only CROSSBOW reached the target within the epoch budget")
        }
        (None, Some(_)) => {
            println!("only the baseline reached the target within the epoch budget")
        }
        (None, None) => println!("neither run reached the target; raise the epoch budget"),
    }
}
