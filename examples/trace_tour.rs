//! A tour of the telemetry subsystem: typed spans, the metrics registry,
//! the overlap analyzer, and Chrome-trace export.
//!
//! ```sh
//! cargo run --release -p crossbow --example trace_tour
//! ```
//!
//! The run writes `crossbow_trace_tour.json` into the system temp
//! directory; open it in chrome://tracing or https://ui.perfetto.dev to
//! see learning tasks overlap synchronisation, per device and lane.
//!
//! With `-- --check FILE` the example instead validates an emitted
//! trace (ci.sh uses this to keep `crossbow train --trace` honest).

use crossbow::engine::{Session, SessionConfig};
use crossbow::telemetry::json::Json;
use crossbow::telemetry::{chrome, SpanKind, Telemetry, HOST_DEVICE};
use std::time::Duration;

/// Parses a Chrome trace back with the crate's own JSON parser and
/// requires a non-empty span set covering the three core phases.
fn check(path: &str) {
    let text = std::fs::read_to_string(path).expect("trace file readable");
    let parsed = Json::parse(&text).expect("trace must be valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("top-level traceEvents array");
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(!names.is_empty(), "trace holds no spans");
    for required in ["learn", "local-sync", "global-sync"] {
        assert!(
            names.contains(&required),
            "trace is missing `{required}` spans"
        );
    }
    println!(
        "{path}: {} spans, learn/local-sync/global-sync present",
        names.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        check(args.get(1).expect("--check needs a trace file"));
        return;
    }
    // 1. Every runtime takes the same sink: a span recorder plus a
    //    metrics registry, cheap to clone and share across threads.
    let telemetry = Telemetry::wall();
    let config = SessionConfig::lenet_quick()
        .with_gpus(2)
        .with_learners_per_gpu(2)
        .with_telemetry(telemetry.clone());
    let report = Session::new(config)
        .run()
        .expect("no checkpointing configured");
    println!("{}", report.summary());

    // 2. The recorder's timeline: typed spans with device/lane/iteration
    //    attribution. Simulated-GPU spans sit on devices 0..g; host-side
    //    work (training epochs, evaluation) on the HOST_DEVICE pid.
    let timeline = telemetry.recorder.timeline();
    println!("\nrecorded {} spans:", timeline.len());
    for kind in SpanKind::ALL {
        let n = timeline.count(kind);
        if n > 0 {
            println!("  {:<18} x{n}", kind.name());
        }
    }

    // 3. The analyzer: per-phase totals, and the paper's Figure 8 claim —
    //    global synchronisation hidden under the next iteration's
    //    learning tasks.
    println!("\nphase breakdown:\n{}", timeline.phase_breakdown());
    if let Some(overlap) = report.sim.overlap {
        println!("sync-compute overlap: {overlap}");
    }

    // 4. Chrome Trace Event export: one pid per device, one tid per
    //    stream/lane.
    let mut names: Vec<(u32, String)> = (0..2).map(|d| (d, format!("gpu {d}"))).collect();
    names.push((HOST_DEVICE, "host".to_string()));
    let names: Vec<(u32, &str)> = names.iter().map(|(d, n)| (*d, n.as_str())).collect();
    let json = chrome::to_chrome_json(timeline.spans(), &names);
    let path = std::env::temp_dir().join("crossbow_trace_tour.json");
    std::fs::write(&path, json).expect("temp dir is writable");
    println!("\nwrote {} -> open in chrome://tracing", path.display());

    // 5. The metrics half: counters, gauges and log2 latency histograms,
    //    shared by the serving, prefetch and checkpoint runtimes.
    let m = &telemetry.metrics;
    m.counter("tour.widgets").add(3);
    m.gauge("tour.depth").set(7);
    m.gauge("tour.depth").set(2); // gauges keep value *and* high-water mark
    m.histogram("tour.latency_us")
        .record(Duration::from_micros(250));
    println!("\nmetrics snapshot:\n{}", m.snapshot());
}
