//! A tour of crash-consistent checkpointing and bit-exact resume.
//!
//! ```sh
//! cargo run --release -p crossbow --example checkpoint_tour
//! ```
//!
//! A training session checkpoints its *complete* state — central and
//! replica models, optimiser momentum, the divergence guard, the data
//! cursor and every RNG stream — to an on-disk store (temp file → fsync →
//! rename, checksummed). A session restarted after a host crash resumes
//! from the newest valid checkpoint and replays the identical
//! sample/update sequence, so the curve it produces is bit-identical to a
//! run that never crashed.

use crossbow::checkpoint::{CheckpointStore, RetentionPolicy};
use crossbow::engine::{RobustnessConfig, Session, SessionConfig};
use crossbow::CheckpointConfig;

fn main() {
    let dir = std::env::temp_dir().join(format!("crossbow-checkpoint-tour-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. The reference: an uninterrupted session.
    let config = SessionConfig::lenet_quick().with_seed(7);
    let uninterrupted = Session::new(config.clone())
        .run()
        .expect("checkpoint store");
    println!("-- uninterrupted run --");
    println!(
        "   {} iterations, final accuracy {:.3}\n",
        uninterrupted.curve.iterations, uninterrupted.curve.final_accuracy
    );

    // 2. The same session with durable checkpointing, killed by an
    //    injected host crash after 40 iterations.
    let robustness = RobustnessConfig {
        crash_after: Some(40),
        ..RobustnessConfig::default()
    };
    let checkpointing = CheckpointConfig::new(&dir).every(10);
    let crashed = Session::new(
        config
            .clone()
            .with_robustness(robustness)
            .with_checkpointing(checkpointing.clone()),
    )
    .run()
    .expect("checkpoint store");
    println!("-- crashed run (host crash at iteration 40) --");
    println!(
        "   stopped after {} iterations, {} epoch(s) finished",
        crashed.curve.iterations,
        crashed.curve.epochs()
    );
    let store = CheckpointStore::open(&dir, RetentionPolicy::default()).expect("store opens");
    for path in store.list().expect("store lists") {
        println!(
            "   on disk: {}",
            path.file_name().unwrap().to_string_lossy()
        );
    }
    println!();

    // 3. A restarted session finds the store, skips the auto-tuner in
    //    favour of the recorded learner count, resumes from the newest
    //    valid checkpoint, and finishes the run.
    let resumed = Session::new(config.with_checkpointing(checkpointing))
        .run()
        .expect("checkpoint store");
    println!("-- resumed run --");
    println!(
        "   {} iterations, final accuracy {:.3}",
        resumed.curve.iterations, resumed.curve.final_accuracy
    );
    println!(
        "   bit-identical to the uninterrupted curve: {}",
        resumed.curve == uninterrupted.curve
    );

    // 4. Corruption is detected, not restored: flip one bit in the newest
    //    checkpoint and the store falls back to the previous valid copy.
    let files = store.list().expect("store lists");
    let newest = files.last().expect("checkpoints exist").clone();
    let mut bytes = std::fs::read(&newest).expect("checkpoint reads");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&newest, &bytes).expect("checkpoint writes");
    let loaded = store
        .load_latest()
        .expect("store survives corruption")
        .expect("older copies remain");
    println!("\n-- one bit flipped in the newest checkpoint --");
    println!(
        "   skipped {} corrupt file(s), fell back to iteration {}",
        loaded.skipped.len(),
        loaded.state.iterations
    );

    let _ = std::fs::remove_dir_all(&dir);
}
