//! A tour of the on-disk data plane: pack, inspect, train from shards,
//! crash mid-shard, resume bit-exactly.
//!
//! ```sh
//! cargo run --release -p crossbow --example data_tour
//! ```
//!
//! The shard format preserves sample order and `f32` bit patterns, and
//! the trainer draws samples by global index — so the *same* run produces
//! the *same* curve whether the dataset lives in RAM or in a directory of
//! memory-mapped shard files, and a run that crashes with its data cursor
//! in the middle of a shard resumes from its checkpoint and finishes with
//! a curve bit-identical to one that never crashed.

use crossbow::comms::{demo_algo, demo_task};
use crossbow::data::SampleSource;
use crossbow::shard::{pack_source, PackConfig, ShardedDataset};
use crossbow::sync::{resume, train, CheckpointConfig, TrainerConfig};

fn main() {
    let scratch = std::env::temp_dir().join(format!("crossbow-data-tour-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let data_dir = scratch.join("data");
    let ckpt_dir = scratch.join("ckpt");
    std::fs::create_dir_all(&data_dir).expect("scratch dir");

    // 1. Pack: stream the in-memory demo dataset into sealed shard files,
    //    rotating every 100 samples so the 400-sample train set spans
    //    four shards.
    let (net, train_set, test_set) = demo_task();
    let cfg = PackConfig {
        samples_per_shard: 100,
        page_samples: 32,
        ..PackConfig::default()
    };
    let report = pack_source(&data_dir, &train_set, cfg).expect("pack");
    println!("-- pack --");
    println!(
        "   {} samples -> {} shards, {} bytes under {}\n",
        report.samples,
        report.shards,
        report.bytes,
        data_dir.display()
    );

    // 2. Inspect: open the directory back; every shard is validated
    //    (magic, version, page checksums, index bounds) before it is
    //    trusted, and valid shards are memory-mapped.
    let disk = ShardedDataset::open(&data_dir).expect("open shard set");
    println!("-- inspect --");
    println!(
        "   {} shards, {} samples, {} bytes on disk, mmap={}, skipped={}\n",
        disk.shard_count(),
        disk.len(),
        disk.total_file_bytes(),
        disk.fully_mmapped(),
        disk.skipped().len()
    );

    // 3. Train — once from RAM, once from the mmap-backed shard set, same
    //    seed and configuration. The curves must be bit-identical.
    let trainer = TrainerConfig::new(16, 4).with_seed(21);
    let mut algo = demo_algo(&net, 2, "sma", 3);
    let from_ram = train(&net, &train_set, &test_set, algo.as_mut(), &trainer);
    let mut algo = demo_algo(&net, 2, "sma", 3);
    let from_disk = train(&net, &disk, &test_set, algo.as_mut(), &trainer);
    println!("-- train: RAM vs shards --");
    println!(
        "   RAM:    {} iterations, final accuracy {:.3}",
        from_ram.iterations, from_ram.final_accuracy
    );
    println!(
        "   shards: {} iterations, final accuracy {:.3}",
        from_disk.iterations, from_disk.final_accuracy
    );
    println!("   bit-identical: {}\n", from_ram == from_disk);

    // 4. Crash mid-shard: checkpoint every 5 iterations and kill the run
    //    at iteration 17 — the data cursor is then partway through the
    //    second shard (one epoch is 12 iterations of 32 samples).
    let checkpointing = CheckpointConfig::new(&ckpt_dir).every(5);
    let crashing = trainer
        .clone()
        .with_checkpointing(checkpointing.clone())
        .with_crash_after(17);
    let mut algo = demo_algo(&net, 2, "sma", 3);
    let crashed = train(&net, &disk, &test_set, algo.as_mut(), &crashing);
    println!("-- crash (iteration 17, cursor mid-shard) --");
    println!(
        "   stopped after {} iterations, {} epoch(s) finished\n",
        crashed.iterations,
        crashed.epochs()
    );

    // 5. Resume: a fresh process opens the same shard directory and the
    //    same checkpoint store, replays the recorded RNG streams and data
    //    cursor, and finishes the run. The resulting curve matches the
    //    uninterrupted one bit for bit.
    let resuming = trainer.clone().with_checkpointing(checkpointing);
    let mut algo = demo_algo(&net, 2, "sma", 3);
    let resumed = resume(&net, &disk, &test_set, algo.as_mut(), &resuming).expect("resume");
    println!("-- resume --");
    println!(
        "   {} iterations, final accuracy {:.3}",
        resumed.iterations, resumed.final_accuracy
    );
    println!(
        "   bit-identical to the uninterrupted run: {}\n",
        resumed == from_disk
    );

    // 6. Corruption is contained: flip one byte inside a record page and
    //    that shard fails validation at open — the reader skips it with a
    //    typed reason instead of serving bad bytes.
    let victim = data_dir.join("shard-00001.cbws");
    let mut bytes = std::fs::read(&victim).expect("shard reads");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, &bytes).expect("shard writes");
    let damaged = ShardedDataset::open(&data_dir).expect("healthy shards remain");
    println!("-- one byte flipped in shard-00001 --");
    println!(
        "   {} of {} shards still serve ({} samples)",
        damaged.shard_count(),
        report.shards,
        damaged.len()
    );
    for (path, why) in damaged.skipped() {
        println!(
            "   skipped {}: {why}",
            path.file_name().unwrap().to_string_lossy()
        );
    }

    let _ = std::fs::remove_dir_all(&scratch);
}
