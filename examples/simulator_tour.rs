//! A tour of the GPU-server simulator: streams, events, SM sharing,
//! copy/compute overlap and the ring all-reduce.
//!
//! ```sh
//! cargo run --release -p crossbow --example simulator_tour
//! ```
//!
//! This is the substrate the CROSSBOW task engine runs on. Everything here
//! mirrors the CUDA concepts of paper §2.2: in-order streams, cross-stream
//! events, concurrent kernels on one device, copy engines, and a
//! NCCL-style collective.

use crossbow::gpu_sim::{CopyKind, KernelDesc, Machine, MachineConfig};

fn main() {
    let mut machine = Machine::new(MachineConfig::titan_x_server(4));
    println!("machine: {} GPUs, {} SMs each", machine.device_count(), 24);

    // 1. Two streams on GPU 0 share the SM pool: narrow kernels overlap.
    let s0 = machine.create_stream(machine.device(0));
    let s1 = machine.create_stream(machine.device(0));
    machine.submit_kernel(s0, KernelDesc::compute("conv-a", 2_000_000_000, 8));
    machine.submit_kernel(s1, KernelDesc::compute("conv-b", 2_000_000_000, 8));

    // 2. An event orders work across streams: "b2" cannot start before
    //    "conv-a" has finished.
    let ev = machine.create_event();
    machine.record_event(s0, ev);
    machine.wait_event(s1, ev);
    machine.submit_kernel(s1, KernelDesc::compute("b2-after-a", 500_000_000, 8));

    // 3. An input copy overlaps compute via the copy engine.
    let s2 = machine.create_stream(machine.device(0));
    machine.submit_copy(s2, CopyKind::HostToDevice, 64_000_000, "input-batch");

    // 4. A ring all-reduce across all four GPUs (100 MB model).
    let sync_streams: Vec<_> = (0..4)
        .map(|g| machine.create_stream(machine.device(g)))
        .collect();
    machine.all_reduce(&sync_streams, 100_000_000, "allreduce");
    machine.callback(sync_streams[0], 1);

    machine.run();

    println!("\ntimeline:");
    for record in machine.trace().records() {
        println!(
            "  [gpu{} stream{:>2}] {:<14} {:>12} .. {:>12}  ({}{})",
            record.device.index(),
            record.stream.index(),
            record.label,
            record.start.to_string(),
            record.end.to_string(),
            record.duration(),
            if record.sms > 0 {
                format!(", {} SMs", record.sms)
            } else {
                String::new()
            }
        );
    }

    let t = machine.trace();
    println!();
    println!(
        "conv-a overlaps conv-b:      {}",
        t.labels_overlap("conv-a", "conv-b")
    );
    println!(
        "input copy overlaps compute: {}",
        t.labels_overlap("input-batch", "conv-a")
    );
    println!(
        "GPU 0 utilisation:           {:.0}%",
        machine.utilisation(machine.device(0)) * 100.0
    );
}
