//! Quickstart: train a model with CROSSBOW and read the report.
//!
//! ```sh
//! cargo run --release -p crossbow --example quickstart
//! ```
//!
//! A [`Session`] bundles the paper's whole methodology: it auto-tunes the
//! number of learners per GPU on the simulated server, measures hardware
//! efficiency (throughput, epoch time) there, really trains the reduced
//! model on the synthetic dataset for statistical efficiency, and combines
//! both into time-to-accuracy.

use crossbow::engine::{Session, SessionConfig};

fn main() {
    // The LeNet benchmark on an MNIST-like task: small enough to train in
    // seconds on a laptop core.
    let config = SessionConfig::lenet_quick().with_gpus(2).with_seed(7);
    let session = Session::new(config);
    let report = session.run().expect("checkpointing disabled; cannot fail");

    println!("CROSSBOW quickstart");
    println!("-------------------");
    println!("benchmark          : {}", report.benchmark);
    println!("algorithm          : {:?}", report.algorithm);
    println!("GPUs               : {}", report.gpus);
    println!("learners per GPU   : {}", report.learners_per_gpu);
    println!("batch per learner  : {}", report.batch_per_learner);
    println!(
        "sim throughput     : {:.0} images/s ({:.0}% SM utilisation)",
        report.sim.throughput,
        report.sim.utilisation * 100.0
    );
    println!("full-scale epoch   : {}", report.epoch_time);
    println!(
        "accuracy per epoch : {:?}",
        report
            .curve
            .epoch_accuracy
            .iter()
            .map(|a| format!("{:.2}", a))
            .collect::<Vec<_>>()
    );
    match (report.curve.epochs_to_target, report.tta) {
        (Some(eta), Some(tta)) => {
            println!("epochs to target   : {eta}");
            println!("time-to-accuracy   : {tta}");
        }
        _ => println!("target not reached within the epoch budget"),
    }
    println!();
    println!("{}", report.summary());
}
