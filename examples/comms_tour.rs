//! A tour of the distributed training runtime: a coordinator and three
//! workers talking over real loopback TCP sockets, in both topologies,
//! with and without injected network faults.
//!
//! ```sh
//! cargo run --release -p crossbow --example comms_tour
//! ```
//!
//! The workers here are threads, but nothing about the wire knows that:
//! every byte crosses a real socket, every heartbeat is a real frame, and
//! the same binaries drive real multi-process clusters via
//! `crossbow dist-train --role coordinator|worker`.

use crossbow::comms::{
    checksum_params, demo_algo, demo_task, run_local_cluster, ClusterEvent, DistConfig,
    LocalClusterOptions, NetFaultPlan, RetryPolicy, Topology,
};
use crossbow::sync::{train, TrainerConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let trainer = TrainerConfig::new(8, 2).with_seed(11);

    // The single-process baseline every distributed run must reproduce
    // bit for bit: same model, same data, same algorithm, same seed.
    let (net, train_set, test_set) = demo_task();
    let mut algo = demo_algo(&net, 2, "sma", 3);
    let local = train(&net, &train_set, &test_set, algo.as_mut(), &trainer);
    println!("-- single-process baseline (the arithmetic to preserve) --");
    println!(
        "   {} epochs, final accuracy {:.4}, checksum {:016x}\n",
        local.epochs(),
        local.final_accuracy,
        checksum_params(algo.consensus()),
    );

    // 1. Parameter-server topology: the coordinator fans batches out to
    //    two workers and folds their gradients into the SMA step. The
    //    learning curve must match the baseline exactly — distribution
    //    changes where gradients are computed, never what they are.
    let ps = run_local_cluster(LocalClusterOptions {
        workers: 2,
        algo: "sma".into(),
        init_seed: 3,
        trainer: trainer.clone(),
        dist: DistConfig::new(Topology::Ps, 2),
        late_workers: Vec::new(),
        events: None,
        worker_data: None,
    });
    println!("-- parameter-server topology, 2 workers --");
    println!(
        "   final accuracy {:.4}, checksum {:016x}, bit-identical: {}",
        ps.report.curve.final_accuracy,
        ps.report.model_checksum,
        ps.report.curve == local,
    );
    println!(
        "   {} bytes sent, {} bytes received, 0 faults\n",
        ps.report.bytes_sent, ps.report.bytes_recv,
    );
    assert_eq!(ps.report.curve, local, "PS run must preserve the curve");

    // 2. Decentralized ring: workers all-gather replica blocks among
    //    themselves over worker-to-worker sockets; only the aggregate
    //    returns to the coordinator. Three workers, same invariant.
    let (net, train_set, test_set) = demo_task();
    let mut algo3 = demo_algo(&net, 3, "sma", 3);
    let local3 = train(&net, &train_set, &test_set, algo3.as_mut(), &trainer);
    let ring = run_local_cluster(LocalClusterOptions {
        workers: 3,
        algo: "sma".into(),
        init_seed: 3,
        trainer: trainer.clone(),
        dist: DistConfig::new(Topology::Ring, 3),
        late_workers: Vec::new(),
        events: None,
        worker_data: None,
    });
    println!("-- decentralized ring topology, 3 workers --");
    println!(
        "   final accuracy {:.4}, checksum {:016x}, bit-identical: {}\n",
        ring.report.curve.final_accuracy,
        ring.report.model_checksum,
        ring.report.curve == local3,
    );
    assert_eq!(
        ring.report.curve, local3,
        "ring run must preserve the curve"
    );

    // 3. A crash drill: a seeded fault plan severs both original links
    //    after a few frames (replacement links stay healthy), a spare
    //    worker arrives late, and the cluster heals — evictions, SMA
    //    renormalization over the survivors, and a checkpointed rejoin —
    //    while the run completes every epoch.
    let events: Arc<dyn Fn(ClusterEvent) + Send + Sync> = Arc::new(|ev| match ev {
        ClusterEvent::Joined { slot, rejoin } => {
            println!("   event: worker joined slot {slot} (rejoin: {rejoin})")
        }
        ClusterEvent::Evicted { slot, reason } => {
            println!("   event: worker {slot} evicted ({reason})")
        }
        ClusterEvent::Resent { iter, attempt } => {
            println!("   event: iteration {iter} resent (attempt {attempt})")
        }
        ClusterEvent::StandbyJoined { priority } => {
            println!("   event: standby registered (priority {priority})")
        }
    });
    let mut dist = DistConfig::new(Topology::Ps, 2)
        .with_fault(NetFaultPlan::seeded(5).disconnect_after(8).conns_below(2));
    dist.work_resend = Duration::from_millis(300);
    dist.retry = RetryPolicy {
        max_retries: 6,
        backoff_base: Duration::from_millis(25),
        backoff_cap: Duration::from_millis(100),
    };
    println!("-- crash drill: both links cut, one spare rejoins --");
    let drill = run_local_cluster(LocalClusterOptions {
        workers: 2,
        algo: "sma".into(),
        init_seed: 3,
        trainer: trainer.clone(),
        dist,
        worker_data: None,
        late_workers: vec![Duration::from_millis(800)],
        events: Some(events),
    });
    println!(
        "   {} eviction(s), {} rejoin(s), {} retransmission(s), {} fault(s) injected",
        drill.report.counters.evictions,
        drill.report.counters.rejoins,
        drill.report.counters.retries,
        drill.report.faults_injected,
    );
    println!(
        "   finished {} epochs with {} survivor(s), final accuracy {:.4}",
        drill.report.curve.epochs(),
        drill.report.workers,
        drill.report.curve.final_accuracy,
    );
    assert!(drill.report.counters.evictions > 0, "the drill must bite");
    assert_eq!(drill.report.curve.epochs(), 2, "every epoch completes");
}
