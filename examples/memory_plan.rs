//! Memory planning (paper §4.5): offline buffer reuse within a learning
//! task, online pool sharing across learners on one GPU — and the
//! *executable* plan that sizes each learner's arena and drives a real
//! training step with zero steady-state allocations.
//!
//! ```sh
//! cargo run --release -p crossbow --example memory_plan
//! ```

use crossbow::benchmark::Benchmark;
use crossbow::memory::{offline_plan, shared_plan, ExecMemoryPlan};
use crossbow::nn::graph::OpGraph;
use crossbow_tensor::Rng;

fn mb(bytes: usize) -> f64 {
    bytes as f64 / 1e6
}

fn main() {
    println!("Offline plan: reference-counted output-buffer reuse");
    println!();
    for benchmark in Benchmark::all() {
        let net = benchmark.network();
        let batch = benchmark.stat_batch;
        let graph = OpGraph::from_network(&net, batch);
        let plan = offline_plan(&graph);
        println!(
            "{:>10} (b = {batch:>3}): {:>7.2} MB without reuse -> {:>7.2} MB planned ({:.0}% saved), peak {:.2} MB",
            benchmark.name,
            mb(plan.bytes_without_reuse),
            mb(plan.bytes_allocated),
            plan.savings() * 100.0,
            mb(plan.peak_bytes),
        );
    }

    println!();
    println!("Online plan: m learners sharing one pool (ResNet-32 family)");
    println!();
    let bench = Benchmark::resnet32();
    let net = bench.network();
    let graph = OpGraph::from_network(&net, 16);
    let single = offline_plan(&graph);
    for m in [1usize, 2, 4] {
        // The task scheduler staggers learners; half a task apart is
        // typical steady state.
        let stagger = graph.ops.len() / 2;
        let shared = shared_plan(&graph, m, stagger);
        let private = m * single.peak_bytes;
        println!(
            "m = {m}: shared peak {:>7.2} MB vs {:>7.2} MB with private pools ({:.0}% saved)",
            mb(shared.peak_bytes),
            mb(private),
            (1.0 - shared.peak_bytes as f64 / private as f64) * 100.0,
        );
    }

    // The executable plan: size one arena per learner up front, then run
    // real training steps out of it. After the first (warm-up) step the
    // arena satisfies every checkout from its free lists — the allocation
    // counter stays flat, which is the property ci.sh asserts via
    // `membench --smoke`.
    println!();
    println!("Executable plan: 2 learners, real train steps from planned arenas");
    println!();
    let learners = 2usize;
    let batch = 16usize;
    let plan = ExecMemoryPlan::new(&net, batch, learners);
    println!(
        "planned arena: {:.2} MB per learner ({} learners)",
        mb(plan.arena_bytes_per_learner()),
        plan.learners(),
    );
    let mut scratches = plan.build_scratches(&net);
    let mut rng = Rng::new(42);
    let params = net.init_params(&mut rng);
    let mut grad = vec![0.0f32; net.param_len()];
    let (train, _) = bench.dataset(7);
    for step in 0..3 {
        for (l, scratch) in scratches.iter_mut().enumerate() {
            let base = (step * learners + l) * batch;
            let indices: Vec<usize> = (base..base + batch).map(|i| i % train.len()).collect();
            let (images, labels) = train.gather(&indices).expect("indices in range");
            let (loss, _) = net.loss_and_grad(&params, &images, &labels, &mut grad, scratch);
            let stats = scratch.workspace_stats();
            println!(
                "step {step} learner {l}: loss {loss:.4}, arena {:>5.2} MB high water, \
                 {} fresh allocs, {} reuse hits",
                mb(stats.high_water),
                stats.fresh_allocs,
                stats.reuse_hits,
            );
        }
    }
    println!();
    println!("fresh allocs stop growing after the warm-up step: the hot path");
    println!("runs entirely out of the planned arenas.");
}
