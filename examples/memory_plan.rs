//! Memory planning (paper §4.5): offline buffer reuse within a learning
//! task, and online pool sharing across learners on one GPU.
//!
//! ```sh
//! cargo run --release -p crossbow --example memory_plan
//! ```

use crossbow::benchmark::Benchmark;
use crossbow::memory::{offline_plan, shared_plan};
use crossbow::nn::graph::OpGraph;

fn mb(bytes: usize) -> f64 {
    bytes as f64 / 1e6
}

fn main() {
    println!("Offline plan: reference-counted output-buffer reuse");
    println!();
    for benchmark in Benchmark::all() {
        let net = benchmark.network();
        let batch = benchmark.stat_batch;
        let graph = OpGraph::from_network(&net, batch);
        let plan = offline_plan(&graph);
        println!(
            "{:>10} (b = {batch:>3}): {:>7.2} MB without reuse -> {:>7.2} MB planned ({:.0}% saved), peak {:.2} MB",
            benchmark.name,
            mb(plan.bytes_without_reuse),
            mb(plan.bytes_allocated),
            plan.savings() * 100.0,
            mb(plan.peak_bytes),
        );
    }

    println!();
    println!("Online plan: m learners sharing one pool (ResNet-32 family)");
    println!();
    let net = Benchmark::resnet32().network();
    let graph = OpGraph::from_network(&net, 16);
    let single = offline_plan(&graph);
    for m in [1usize, 2, 4] {
        // The task scheduler staggers learners; half a task apart is
        // typical steady state.
        let stagger = graph.ops.len() / 2;
        let shared = shared_plan(&graph, m, stagger);
        let private = m * single.peak_bytes;
        println!(
            "m = {m}: shared peak {:>7.2} MB vs {:>7.2} MB with private pools ({:.0}% saved)",
            mb(shared.peak_bytes),
            mb(private),
            (1.0 - shared.peak_bytes as f64 / private as f64) * 100.0,
        );
    }
}
