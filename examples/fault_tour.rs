//! A tour of the fault-injection subsystem and the self-healing drivers:
//! transient failures retried with backoff, straggler quarantine and
//! rejoin, and divergence rollback during real training.
//!
//! ```sh
//! cargo run --release -p crossbow --example fault_tour
//! ```
//!
//! Faults are *scheduled data* (a [`FaultPlan`]), so every run here is
//! deterministic: re-running prints the same report bit for bit.

use crossbow::engine::{RobustnessConfig, Session, SessionConfig};
use crossbow::exec_sim::{simulate, simulate_robust, RobustSimConfig, SimConfig};
use crossbow::gpu_sim::{FaultPlan, SimDuration, SimTime};
use crossbow::nn::ModelProfile;

fn main() {
    // 1. A transient collective failure: the third global all-reduce of a
    //    4-GPU ResNet-32 run fails after launch. The robust driver
    //    observes the failed callback, backs off, and resubmits.
    let sim = SimConfig::crossbow(ModelProfile::resnet32(), 4, 2, 64);
    let cfg = RobustSimConfig::new(sim.clone(), FaultPlan::none().transient_collective(2, 1));
    let report = simulate_robust(&cfg);
    println!("-- transient collective failure --");
    println!(
        "   injected {} fault(s), {} sync retr{}, {} dropped syncs",
        report.faults.injected.collective_faults,
        report.faults.sync_retries,
        if report.faults.sync_retries == 1 {
            "y"
        } else {
            "ies"
        },
        report.faults.dropped_syncs,
    );
    println!("   throughput {:.0} images/s\n", report.throughput);

    // 2. A straggler window: GPU 1 runs 3x slow for the middle quarter of
    //    the run. The driver compares per-GPU iteration spans against the
    //    healthy median, quarantines the laggard's learners out of the
    //    all-reduce group, and readmits them once the window passes.
    let mut slow_sim = SimConfig::crossbow(ModelProfile::resnet32(), 4, 1, 64);
    slow_sim.iterations = 32;
    let horizon = simulate(&slow_sim).total_time;
    let from = SimTime::ZERO + SimDuration::from_nanos(horizon.as_nanos() / 4);
    let until = SimTime::ZERO + SimDuration::from_nanos(horizon.as_nanos() / 2);
    let cfg = RobustSimConfig::new(slow_sim, FaultPlan::none().straggler(1, from, until, 3.0));
    let report = simulate_robust(&cfg);
    println!("-- straggler window on GPU 1 --");
    println!(
        "   {} stretched kernel(s), {} quarantine(s), {} rejoin(s)",
        report.faults.injected.straggler_kernels, report.faults.quarantines, report.faults.rejoins,
    );
    println!("   throughput {:.0} images/s\n", report.throughput);

    // 3. A whole self-healing session: a seeded fault plan on the
    //    hardware half, the divergence guard on the statistical half, and
    //    an injected NaN loss to exercise the rollback path.
    let robustness = RobustnessConfig {
        inject_nan_at: Some(30),
        ..RobustnessConfig::default()
    };
    let config = SessionConfig::lenet_quick()
        .with_epochs(10)
        .with_robustness(robustness);
    let report = Session::new(config)
        .run()
        .expect("checkpointing disabled; cannot fail");
    println!("-- self-healing session (seed-derived fault plan) --");
    println!("   sim faults: {:?}", report.sim.faults,);
    println!(
        "   {} rollback(s), final accuracy {:.3}",
        report.curve.rollbacks, report.curve.final_accuracy,
    );
    println!("   {}", report.summary());
}
