//! Tour of the serving fleet: three models behind one admission edge,
//! mixed-priority load with SLO-ordered shedding, a canary promotion,
//! and the Algorithm-2-style autoscaler.
//!
//! ```sh
//! cargo run --release -p crossbow --example fleet_tour
//! ```
//!
//! One `crossbow_serve::Server` runs one model; the fleet is what the
//! front door looks like when there are many. Each named model gets its
//! own SLO-ordered queue and elastic worker pool, idle pools steal
//! batches from spec-compatible peers, an open-loop flood forces the
//! admission edge to shed its lowest class (never silently), a canary
//! takes a deterministic fraction of one model's traffic before being
//! promoted, and the autoscaler probes tail latency and queue depth to
//! move pool sizes both ways.

use crossbow::fleet::{
    run_fleet_load, Arrival, AutoscalerConfig, CandidateMode, Fleet, FleetConfig, SloClass,
    StreamSpec,
};
use crossbow::nn::zoo::mlp;
use crossbow::serve::BatchConfig;
use crossbow::tensor::Rng;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    println!("CROSSBOW fleet tour");
    println!("===================");

    // -- 1. Three named models behind one admission edge -----------------
    // Same architecture (so work stealing applies), independent weights.
    let net = Arc::new(mlp(6, &[16], 4));
    let names = ["ranker", "spam", "ranker-eu"];
    let config = FleetConfig {
        batch: BatchConfig {
            max_batch: 4,
            max_delay: Duration::from_micros(500),
            queue_depth: 32,
        },
        initial_workers: 1,
        work_stealing: true,
        // A fixed synthetic service time stands in for a real model's
        // forward pass, so overload and scaling are observable.
        synthetic_delay: Some(Duration::from_millis(5)),
        autoscaler: Some(AutoscalerConfig {
            slo_p99: Duration::from_millis(25),
            queue_high_water: 8,
            shrink_margin: 0.5,
            cooldown_ticks: 0,
            ..AutoscalerConfig::default()
        }),
        telemetry: None,
    };
    let mut builder = Fleet::builder(config);
    for name in names {
        builder = builder.model(name, Arc::clone(&net));
    }
    let fleet = builder.start();
    let mut rng = Rng::new(7);
    for name in names {
        let registry = fleet.registry(name).expect("registered");
        registry
            .publish(net.init_params(&mut rng), 1)
            .expect("fresh registry accepts v1");
        println!("{name}: published v1");
    }
    let inputs: Vec<Vec<f32>> = (0..32)
        .map(|_| (0..6).map(|_| rng.uniform(-1.0, 1.0)).collect())
        .collect();
    let client = fleet.client();

    // -- 2. Mixed priorities under overload ------------------------------
    // An open-loop Batch flood past each pool's capacity, while closed
    // Interactive and Standard streams keep submitting. The SLO queue
    // serves (class, deadline) order and sheds only the lowest class —
    // every shed request is *answered* with a typed error.
    let mut specs = Vec::new();
    for name in names {
        specs.push(StreamSpec {
            model: name.into(),
            class: SloClass::Batch,
            arrival: Arrival::Open { rps: 1200.0 },
            requests: 120,
            deadline: Duration::from_millis(50),
        });
        for (class, deadline_ms) in [(SloClass::Interactive, 100), (SloClass::Standard, 200)] {
            specs.push(StreamSpec {
                model: name.into(),
                class,
                arrival: Arrival::Closed,
                requests: 30,
                deadline: Duration::from_millis(deadline_ms),
            });
        }
    }
    let overload = run_fleet_load(&client, &inputs, &specs, 7);
    let grew = fleet.tick();
    println!("\noverload round:");
    print!("{}", overload.summary());
    for class in [SloClass::Interactive, SloClass::Standard, SloClass::Batch] {
        println!(
            "  {class}: {} shed or rejected",
            overload.shed_for_class(class)
        );
    }
    assert_eq!(overload.shed_for_class(SloClass::Interactive), 0);
    assert_eq!(overload.shed_for_class(SloClass::Standard), 0);
    assert!(
        overload.shed_for_class(SloClass::Batch) > 0,
        "the flood must shed some Batch work"
    );
    for d in &grew {
        println!("  autoscaler: {d}");
    }

    // -- 3. A canary promotion -------------------------------------------
    // Stage fresh parameters on `ranker` as a 30% canary: a
    // deterministic-by-request-id fraction of its traffic is answered by
    // the candidate (flagged `canary`, still the primary's version).
    // Promotion publishes the candidate as v2 — no request is lost, and
    // closed clients observe versions only ever rising.
    fleet
        .stage_candidate(
            "ranker",
            net.init_params(&mut rng),
            CandidateMode::Canary { percent: 30 },
        )
        .expect("candidate fits the spec");
    let specs: Vec<StreamSpec> = names
        .iter()
        .map(|name| StreamSpec {
            model: (*name).into(),
            class: SloClass::Standard,
            arrival: Arrival::Closed,
            requests: 60,
            deadline: Duration::from_millis(100),
        })
        .collect();
    let canary_round = run_fleet_load(&client, &inputs, &specs, 8);
    let v2 = fleet.promote("ranker", 2).expect("model exists");
    fleet.tick();
    let canary_hits: u64 = canary_round.streams.iter().map(|s| s.canary).sum();
    println!("\ncanary round:");
    print!("{}", canary_round.summary());
    let v2 = v2.expect("a candidate was staged");
    println!("  {canary_hits} replies served by the canary; promoted to v{v2}");
    assert!(canary_round.versions_monotonic());

    // -- 4. Calm traffic shrinks the pools back --------------------------
    let specs: Vec<StreamSpec> = names
        .iter()
        .map(|name| StreamSpec {
            model: (*name).into(),
            class: SloClass::Standard,
            arrival: Arrival::Closed,
            requests: 15,
            deadline: Duration::from_millis(200),
        })
        .collect();
    let calm = run_fleet_load(&client, &inputs, &specs, 9);
    fleet.tick();
    println!(
        "\ncalm round: {} ok, all versions >= v2 on ranker",
        calm.total_ok()
    );

    // -- 5. Drain and report ---------------------------------------------
    let report = fleet.shutdown();
    println!("\nfinal report:");
    print!("{}", report.summary());
    assert!(report.scaled_both_ways(), "pools must grow and shrink");
    assert_eq!(report.model("ranker").map(|m| m.max_version), Some(2));
    println!("\nfleet tour complete.");
}
