//! Integration tests for the serving subsystem: micro-batching beats
//! per-request dispatch, hot swaps lose nothing, and a live trainer can
//! feed a live server.

use crossbow::data::synth::gaussian_mixture;
use crossbow::nn::zoo::mlp;
use crossbow::nn::Network;
use crossbow::serve::{
    run_load, train_and_serve, BatchConfig, LoadConfig, LoadMode, ModelSpec, ServeConfig, Server,
    SnapshotRegistry, TrainAndServeConfig,
};
use crossbow::sync::sma::{Sma, SmaConfig};
use crossbow::sync::TrainerConfig;
use crossbow::tensor::{Precision, Rng};
use std::sync::Arc;
use std::time::Duration;

fn served_mlp(seed: u64) -> (Arc<Network>, Arc<SnapshotRegistry>, Vec<Vec<f32>>) {
    let net = Arc::new(mlp(64, &[256, 256], 10));
    let registry = Arc::new(SnapshotRegistry::new(ModelSpec::of(&net)));
    let mut rng = Rng::new(seed);
    registry
        .publish(net.init_params(&mut rng), 0)
        .expect("params fit the spec");
    let inputs: Vec<Vec<f32>> = (0..32)
        .map(|_| (0..64).map(|_| rng.normal()).collect())
        .collect();
    (net, registry, inputs)
}

/// Coalescing eight concurrent callers into one forward pass must beat
/// dispatching them one at a time. A fixed synthetic per-batch cost makes
/// the comparison deterministic: with one worker and a 2 ms charge per
/// batch, per-request dispatch pays the charge 320 times while an
/// 8-deep micro-batch pays it roughly 40 times.
#[test]
fn micro_batching_beats_per_request_dispatch() {
    let load = LoadConfig {
        mode: LoadMode::Closed {
            clients: 8,
            requests_per_client: 40,
        },
        seed: 9,
        panic_client: None,
    };
    let run = |batch: BatchConfig| {
        let (net, registry, inputs) = served_mlp(7);
        let config = ServeConfig {
            workers: 1,
            batch,
            synthetic_delay: Some(Duration::from_millis(2)),
            telemetry: None,
        };
        let server = Server::start(net, registry, config);
        let result = run_load(&server.client(), &inputs, &load);
        let report = server.shutdown();
        assert_eq!(result.failed, 0, "no request may fail");
        assert_eq!(result.rejected, 0, "queue is deep enough for 8 callers");
        assert_eq!(result.ok, 320);
        (result, report)
    };

    let (unbatched, unbatched_report) = run(BatchConfig::unbatched());
    let batched_config = BatchConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(1),
        ..BatchConfig::default()
    };
    let (batched, batched_report) = run(batched_config);

    assert!((unbatched_report.mean_batch - 1.0).abs() < 1e-9);
    assert!(
        batched_report.mean_batch > 2.0,
        "coalescing happened: mean batch {:.2}",
        batched_report.mean_batch
    );
    assert!(
        batched.throughput > unbatched.throughput,
        "micro-batching must beat batch=1: {:.0} vs {:.0} req/s",
        batched.throughput,
        unbatched.throughput
    );
}

/// Publishing fresh snapshots in the middle of a load run must be
/// invisible to clients except as rising versions: nothing drops,
/// nothing fails, and no closed-loop caller ever sees a version regress.
#[test]
fn hot_swap_mid_load_loses_nothing() {
    let (net, registry, inputs) = served_mlp(11);
    let fresh = {
        let mut rng = Rng::new(99);
        net.init_params(&mut rng)
    };
    let config = ServeConfig {
        workers: 2,
        batch: BatchConfig::default(),
        synthetic_delay: Some(Duration::from_micros(500)),
        telemetry: None,
    };
    let server = Server::start(Arc::clone(&net), Arc::clone(&registry), config);
    let client = server.client();

    let load = LoadConfig {
        mode: LoadMode::Closed {
            clients: 4,
            requests_per_client: 100,
        },
        seed: 3,
        panic_client: None,
    };
    let result = std::thread::scope(|scope| {
        let publisher = scope.spawn(|| {
            for publication in 0..5 {
                std::thread::sleep(Duration::from_millis(10));
                registry
                    .publish(fresh.clone(), 10 * (publication + 1))
                    .expect("same shape republished");
            }
        });
        let result = run_load(&client, &inputs, &load);
        publisher.join().expect("publisher panicked");
        result
    });

    assert_eq!(result.submitted, 400);
    assert_eq!(result.ok, 400, "zero dropped requests across hot swaps");
    assert_eq!(result.failed, 0);
    assert_eq!(result.rejected, 0);
    assert!(result.versions_monotonic, "versions regressed mid-load");
    assert!(
        result.max_version > result.min_version,
        "the load must actually straddle a swap: saw only version {}",
        result.max_version
    );

    // After every publication, a fresh request is answered by the newest
    // snapshot.
    let latest = client.call(inputs[0].clone()).expect("serving still up");
    assert_eq!(latest.version, registry.version());
    assert_eq!(registry.version(), 6);
    let report = server.shutdown();
    assert_eq!(report.completed, 401);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.max_version, 6);
}

/// The combined run: a background trainer keeps publishing the central
/// average model `z` while load runs in the foreground. Readers observe
/// monotonically increasing versions and zero dropped requests.
#[test]
fn train_and_serve_publishes_fresh_models_under_load() {
    // Big enough that training genuinely overlaps the load: the first
    // load round must complete requests while early versions are still
    // current, or the mid-load straddle below would be vacuous.
    let net = Arc::new(mlp(64, &[256, 256], 10));
    let (train_set, test_set) = gaussian_mixture(10, 64, 2176, 0.3, 5)
        .split_at(2048)
        .expect("split in range");
    let mut rng = Rng::new(5);
    let mut algo = Sma::new(net.init_params(&mut rng), 4, SmaConfig::default());

    let config = TrainAndServeConfig {
        trainer: TrainerConfig::new(16, 4).with_seed(5),
        publish_every: 2,
        serve: ServeConfig::new(2),
        load: LoadConfig {
            mode: LoadMode::Closed {
                clients: 2,
                requests_per_client: 25,
            },
            seed: 13,
            panic_client: None,
        },
        precision: Precision::F32,
    };
    let report = train_and_serve(&net, &train_set, &test_set, &mut algo, &config);

    assert!(report.curve.iterations > 0, "the trainer ran");
    assert_eq!(report.load.failed, 0, "zero failed requests");
    assert_eq!(report.load.rejected, 0, "zero rejected requests");
    assert!(report.load.ok >= 50, "at least one full round completed");
    assert!(
        report.load.versions_monotonic,
        "a client saw a version regress"
    );
    assert!(
        report.load.max_version > report.load.min_version,
        "training published fresh snapshots mid-load: versions {}..{}",
        report.load.min_version,
        report.load.max_version
    );
    assert_eq!(report.serve.rejected, 0);
    assert_eq!(report.serve.completed, report.load.ok);
    assert!(report.serve.max_version >= report.load.max_version);
}
