//! Integration tests for the telemetry subsystem against the real
//! runtimes: the concurrent CPU engine really pipelines sync(N) under
//! learning(N+1), its span counts are deterministic, the throughput it
//! reports agrees with its own spans, and an exported trace round-trips
//! through the Chrome Trace Event parser.

use crossbow::data::synth::gaussian_mixture;
use crossbow::data::Dataset;
use crossbow::nn::zoo::mlp;
use crossbow::nn::Network;
use crossbow::telemetry::{chrome, json::Json, SpanKind, Telemetry, HOST_DEVICE};
use crossbow::{train_concurrent, CpuEngineConfig};

fn setup() -> (Network, Dataset, Dataset) {
    let net = mlp(6, &[32, 16], 4);
    let data = gaussian_mixture(4, 6, 480, 0.35, 7);
    let (train_set, test_set) = data.split_at(400).expect("split in range");
    (net, train_set, test_set)
}

fn traced_run(epochs: usize) -> (Telemetry, crossbow::CpuEngineReport) {
    let (net, train_set, test_set) = setup();
    let telemetry = Telemetry::wall();
    let mut cfg = CpuEngineConfig::new(4, 8);
    cfg.max_epochs = epochs;
    cfg.telemetry = Some(telemetry.clone());
    let report = train_concurrent(&net, &train_set, &test_set, &cfg).expect("run");
    (telemetry, report)
}

/// Figure 8's pipelining, observed on the real concurrent runtime: the
/// manager's global synchronisation of iteration N runs while some
/// learner is already inside a learning task of a later iteration.
///
/// The learning tasks here are deliberately heavy (wide MLP, large
/// batch), so after the last learner hands in its correction for N and
/// moves on to learn(N+1), the manager has a milliseconds-wide window
/// to land sync(N) inside it even when the host is busy; retries absorb
/// pathological scheduling (a fully loaded box can delay the manager
/// past the window every single iteration).
#[test]
fn concurrent_runtime_overlaps_sync_with_next_learning() {
    let run = || {
        let net = mlp(6, &[256, 128], 4);
        let data = gaussian_mixture(4, 6, 480, 0.35, 7);
        let (train_set, test_set) = data.split_at(400).expect("split in range");
        let telemetry = Telemetry::wall();
        let mut cfg = CpuEngineConfig::new(2, 64);
        cfg.max_epochs = 12;
        cfg.telemetry = Some(telemetry.clone());
        let report = train_concurrent(&net, &train_set, &test_set, &cfg).expect("run");
        let timeline = telemetry.recorder.timeline();
        assert!(report.iterations > 0);
        assert!(timeline.count(SpanKind::GlobalSync) > 0);
        assert!(timeline.count(SpanKind::Learn) > 0);
        timeline.pipeline_overlaps()
    };
    let mut pairs = 0;
    for _ in 0..3 {
        pairs = run();
        if pairs >= 1 {
            break;
        }
    }
    assert!(pairs >= 1, "no sync(N)/learn(N+1) pair ever overlapped");
}

/// Span *counts* are a pure function of the configuration — the thread
/// schedule moves spans around in time but cannot create or lose one.
#[test]
fn span_counts_are_deterministic_under_a_fixed_seed() {
    let (a, _) = traced_run(3);
    let (b, _) = traced_run(3);
    let (a, b) = (a.recorder.timeline(), b.recorder.timeline());
    assert!(!a.is_empty());
    for kind in SpanKind::ALL {
        assert_eq!(
            a.count(kind),
            b.count(kind),
            "span count for {} differs between identical runs",
            kind.name()
        );
    }
}

/// The report's throughput and the recorded spans come from the same
/// clock, so throughput re-derived from the timeline extent must agree
/// with the reported value. The extent excludes thread spawn/join, so
/// the derived figure is an upper bound.
#[test]
fn span_derived_throughput_matches_the_report() {
    let (telemetry, report) = traced_run(6);
    let timeline = telemetry.recorder.timeline();
    let (start, end) = timeline.extent_ns().expect("spans were recorded");
    let samples = report.iterations * 4 * 8; // k learners x batch, per sync
    let derived = samples as f64 / ((end - start) as f64 / 1e9);
    assert!(
        derived >= report.throughput * 0.999,
        "span extent cannot exceed the engine's own elapsed time: \
         derived {derived:.0}, reported {:.0}",
        report.throughput
    );
    assert!(
        derived <= report.throughput * 1.25,
        "derived throughput strayed too far from the report: \
         derived {derived:.0}, reported {:.0}",
        report.throughput
    );
}

/// An exported trace is valid Chrome Trace Event JSON: it parses with
/// the crate's own parser, every event carries the required fields, and
/// the learner/manager lanes show up as distinct tids.
#[test]
fn exported_trace_round_trips_through_the_parser() {
    let (telemetry, _) = traced_run(2);
    let timeline = telemetry.recorder.timeline();
    let json = chrome::to_chrome_json(timeline.spans(), &[(HOST_DEVICE, "host")]);
    let parsed = Json::parse(&json).expect("exporter emits valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("top-level traceEvents array");
    let complete: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert_eq!(complete.len(), timeline.len());
    let mut tids = std::collections::BTreeSet::new();
    for e in &complete {
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("ts").and_then(Json::as_f64).is_some());
        assert!(e.get("dur").and_then(Json::as_f64).is_some());
        assert_eq!(
            e.get("pid").and_then(Json::as_f64),
            Some(f64::from(HOST_DEVICE))
        );
        tids.insert(e.get("tid").and_then(Json::as_f64).unwrap() as u32);
    }
    // 4 learner lanes plus the manager's.
    assert_eq!(tids.len(), 5, "lanes seen: {tids:?}");
}
