//! End-to-end integration tests: every training algorithm really learns
//! the synthetic benchmarks through the public `Session` API, and the
//! combined TTA pipeline behaves like the paper's methodology.

use crossbow::benchmark::Benchmark;
use crossbow::engine::{AlgorithmKind, Session, SessionConfig};

/// A LeNet session small enough for debug-mode CI.
fn quick(algorithm: AlgorithmKind) -> SessionConfig {
    SessionConfig::new(Benchmark::lenet())
        .with_gpus(2)
        .with_learners_per_gpu(match algorithm {
            AlgorithmKind::SSgd => 1,
            _ => 2,
        })
        .with_algorithm(algorithm)
        .with_epochs(6)
        .with_target(0.55)
        .with_seed(3)
}

#[test]
fn sma_session_learns_end_to_end() {
    let report = Session::new(quick(AlgorithmKind::Sma { tau: 1 }))
        .run()
        .expect("run");
    assert!(
        report.curve.final_accuracy > 0.5,
        "accuracy {}",
        report.curve.final_accuracy
    );
    assert!(report.sim.throughput > 0.0);
    assert!(report.curve.epochs_to_target.is_some());
    assert!(report.tta.is_some());
}

#[test]
fn hierarchical_sma_session_learns_end_to_end() {
    let report = Session::new(quick(AlgorithmKind::HierarchicalSma))
        .run()
        .expect("run");
    assert!(
        report.curve.final_accuracy > 0.5,
        "accuracy {}",
        report.curve.final_accuracy
    );
}

#[test]
fn ssgd_session_learns_end_to_end() {
    let report = Session::new(quick(AlgorithmKind::SSgd)).run().expect("run");
    assert!(
        report.curve.final_accuracy > 0.5,
        "accuracy {}",
        report.curve.final_accuracy
    );
    assert_eq!(report.learners_per_gpu, 1);
}

#[test]
fn easgd_session_learns_end_to_end() {
    let report = Session::new(quick(AlgorithmKind::EaSgd { tau: 2 }))
        .run()
        .expect("run");
    assert!(
        report.curve.final_accuracy > 0.5,
        "accuracy {}",
        report.curve.final_accuracy
    );
}

#[test]
fn flat_and_hierarchical_sma_converge_similarly() {
    // §3.3's two-level scheme is an implementation of the same algorithm;
    // its accuracy trajectory must track flat SMA closely.
    let flat = Session::new(quick(AlgorithmKind::Sma { tau: 1 }))
        .run()
        .expect("run");
    let hier = Session::new(quick(AlgorithmKind::HierarchicalSma))
        .run()
        .expect("run");
    let diff = (flat.curve.final_accuracy - hier.curve.final_accuracy).abs();
    assert!(
        diff < 0.2,
        "flat {} vs hierarchical {}",
        flat.curve.final_accuracy,
        hier.curve.final_accuracy
    );
}

#[test]
fn more_gpus_shorten_the_simulated_epoch() {
    let epoch_time = |gpus: usize| {
        let cfg = SessionConfig::new(Benchmark::resnet32())
            .with_gpus(gpus)
            .with_learners_per_gpu(1)
            .with_batch(64);
        let session = Session::new(cfg);
        let (_, sim) = session.plan_hardware();
        sim.epoch_time(Benchmark::resnet32().profile.train_samples)
            .as_secs_f64()
    };
    let t1 = epoch_time(1);
    let t8 = epoch_time(8);
    assert!(
        t8 < t1 / 4.0,
        "8 GPUs should cut the epoch well below 1 GPU: {t1} vs {t8}"
    );
}

#[test]
fn crossbow_engine_beats_baseline_on_lenet_hardware() {
    // Figure 10d: sub-millisecond learning tasks expose the baseline's
    // scheduling overhead even with one learner.
    let cb = Session::new(SessionConfig::new(Benchmark::lenet()).with_learners_per_gpu(1));
    let tf =
        Session::new(SessionConfig::new(Benchmark::lenet()).with_algorithm(AlgorithmKind::SSgd));
    let (_, cb_sim) = cb.plan_hardware();
    let (_, tf_sim) = tf.plan_hardware();
    assert!(
        cb_sim.throughput > tf_sim.throughput,
        "crossbow {} vs baseline {}",
        cb_sim.throughput,
        tf_sim.throughput
    );
}

#[test]
fn batch_size_is_decoupled_from_gpu_count() {
    // The paper's core premise: CROSSBOW keeps the per-learner batch
    // constant while scaling GPUs; aggregate batch grows only through
    // learner count.
    let cfg = SessionConfig::new(Benchmark::resnet32())
        .with_gpus(4)
        .with_learners_per_gpu(2)
        .with_batch(16);
    let session = Session::new(cfg);
    let (m, sim) = session.plan_hardware();
    assert_eq!(m, 2);
    assert_eq!(sim.aggregate_batch, 4 * 2 * 16);
}
