//! Integration tests for the serving fleet: SLO-ordered shedding under
//! overload, lossless canary promotion mid-load, an autoscaler that
//! moves both ways, and a live trainer feeding one model of a fleet.

use crossbow::data::synth::gaussian_mixture;
use crossbow::fleet::{
    run_fleet_load, train_into_fleet, Arrival, AutoscalerConfig, CandidateMode, Fleet, FleetConfig,
    FleetLoadReport, FleetTrainConfig, SloClass, StreamSpec,
};
use crossbow::nn::zoo::mlp;
use crossbow::nn::Network;
use crossbow::serve::BatchConfig;
use crossbow::sync::sma::{Sma, SmaConfig};
use crossbow::sync::TrainerConfig;
use crossbow::telemetry::Telemetry;
use crossbow::tensor::{Precision, Rng, Shape, Tensor};
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 6;

/// A fleet of `n` spec-compatible mlps, each with its own published v1.
fn fleet_of(n: usize, config: FleetConfig) -> (Fleet, Arc<Network>, Vec<String>) {
    let net = Arc::new(mlp(DIM, &[16], 4));
    let names: Vec<String> = (0..n).map(|i| format!("model-{i}")).collect();
    let mut builder = Fleet::builder(config);
    for name in &names {
        builder = builder.model(name, Arc::clone(&net));
    }
    let fleet = builder.start();
    let mut rng = Rng::new(7);
    for name in &names {
        fleet
            .registry(name)
            .expect("just registered")
            .publish(net.init_params(&mut rng), 1)
            .expect("fresh registry accepts v1");
    }
    (fleet, net, names)
}

fn inputs(seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Rng::new(seed);
    (0..32)
        .map(|_| (0..DIM).map(|_| rng.uniform(-1.0, 1.0)).collect())
        .collect()
}

/// Every stream got a terminal answer for every submission, and nothing
/// admitted was silently dropped.
fn all_answered(report: &FleetLoadReport) -> bool {
    report
        .streams
        .iter()
        .all(|s| s.failed == 0 && s.ok + s.shed + s.rejected == s.submitted)
}

fn closed(model: &str, class: SloClass, requests: usize, deadline_ms: u64) -> StreamSpec {
    StreamSpec {
        model: model.to_string(),
        class,
        arrival: Arrival::Closed,
        requests,
        deadline: Duration::from_millis(deadline_ms),
    }
}

/// A single-worker config with a fixed synthetic service time and a
/// small queue, so open-loop floods genuinely overload the pools.
fn tight_config() -> FleetConfig {
    FleetConfig {
        batch: BatchConfig {
            max_batch: 4,
            max_delay: Duration::from_micros(500),
            queue_depth: 16,
        },
        initial_workers: 1,
        work_stealing: false,
        synthetic_delay: Some(Duration::from_millis(5)),
        autoscaler: None,
        telemetry: None,
    }
}

/// (a) + (b): under an open-loop Batch flood, every admitted request is
/// still answered, only the lowest class is shed or rejected, and the
/// higher classes keep the goodput they get from an unloaded fleet.
#[test]
fn overload_sheds_only_the_lowest_class_and_answers_everything() {
    let interactive = 20usize;
    let standard = 20usize;

    // Unloaded baseline: the same closed streams against an idle fleet.
    let (fleet, _, names) = fleet_of(2, tight_config());
    let specs: Vec<StreamSpec> = names
        .iter()
        .flat_map(|m| {
            [
                closed(m, SloClass::Interactive, interactive, 150),
                closed(m, SloClass::Standard, standard, 300),
            ]
        })
        .collect();
    let baseline = run_fleet_load(&fleet.client(), &inputs(3), &specs, 3);
    fleet.shutdown();
    assert!(all_answered(&baseline));

    // Overload: add a Batch flood past each single worker's capacity.
    let (fleet, _, names) = fleet_of(2, tight_config());
    let mut specs: Vec<StreamSpec> = Vec::new();
    for m in &names {
        specs.push(StreamSpec {
            model: m.clone(),
            class: SloClass::Batch,
            arrival: Arrival::Open { rps: 1500.0 },
            requests: 150,
            deadline: Duration::from_millis(50),
        });
        specs.push(closed(m, SloClass::Interactive, interactive, 150));
        specs.push(closed(m, SloClass::Standard, standard, 300));
    }
    let overload = run_fleet_load(&fleet.client(), &inputs(3), &specs, 3);
    let report = fleet.shutdown();

    assert!(all_answered(&overload), "{}", overload.summary());
    assert_eq!(
        overload.shed_for_class(SloClass::Interactive),
        0,
        "interactive is never shed"
    );
    assert_eq!(
        overload.shed_for_class(SloClass::Standard),
        0,
        "standard is never shed"
    );
    assert!(
        overload.shed_for_class(SloClass::Batch) > 0,
        "the flood must overflow the queue: {}",
        overload.summary()
    );
    assert!(
        report.total_shed() > 0,
        "shed events reach the fleet report"
    );
    for m in &names {
        for (class, unloaded) in [
            (
                SloClass::Interactive,
                baseline.goodput(m, SloClass::Interactive),
            ),
            (SloClass::Standard, baseline.goodput(m, SloClass::Standard)),
        ] {
            assert!(
                overload.goodput(m, class) >= unloaded,
                "{m}/{class} goodput fell under overload: {} < {unloaded}",
                overload.goodput(m, class)
            );
        }
    }
}

/// (c): a canary staged and promoted while closed streams run loses no
/// requests, and every client's observed versions stay monotone across
/// the promotion.
#[test]
fn canary_promotion_mid_load_is_lossless_and_monotone() {
    let config = FleetConfig {
        synthetic_delay: Some(Duration::from_millis(2)),
        ..FleetConfig::default()
    };
    let (fleet, net, names) = fleet_of(1, config);
    let model = names[0].clone();
    let specs = [
        closed(&model, SloClass::Standard, 120, 500),
        closed(&model, SloClass::Interactive, 120, 500),
    ];
    let client = fleet.client();
    let payload = inputs(5);
    let load = std::thread::scope(|scope| {
        let load = scope.spawn(|| run_fleet_load(&client, &payload, &specs, 5));
        // Stage mid-load, let the split serve for a while, then promote.
        std::thread::sleep(Duration::from_millis(60));
        let mut rng = Rng::new(99);
        fleet
            .stage_candidate(
                &model,
                net.init_params(&mut rng),
                CandidateMode::Canary { percent: 40 },
            )
            .expect("candidate fits the spec");
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(fleet.promote(&model, 2).expect("model exists"), Some(2));
        load.join().expect("load thread panicked")
    });
    let report = fleet.shutdown();

    for s in &load.streams {
        assert_eq!(s.ok, s.submitted, "no request lost across the promotion");
        assert!(s.versions_monotonic, "versions went backwards: {s:?}");
    }
    let m = report.model(&model).expect("registered");
    assert_eq!(m.completed, 240);
    assert_eq!(m.shed + m.rejected + m.no_model, 0);
    assert_eq!(m.max_version, 2, "the promotion was observed");
}

/// (d): the autoscaler grows the pool under load and shrinks it again
/// under headroom, and both movements are visible in the report's
/// decision history and in the `fleet.*` metrics.
#[test]
fn autoscaler_scales_both_ways_visibly() {
    let telemetry = Telemetry::disabled();
    let config = FleetConfig {
        batch: BatchConfig {
            max_batch: 4,
            max_delay: Duration::ZERO,
            queue_depth: 256,
        },
        work_stealing: false,
        synthetic_delay: Some(Duration::from_millis(4)),
        autoscaler: Some(AutoscalerConfig {
            slo_p99: Duration::from_millis(10),
            queue_high_water: 4,
            shrink_margin: 0.9,
            min_workers: 1,
            max_workers: 3,
            cooldown_ticks: 0,
            interval: None,
        }),
        telemetry: Some(telemetry.clone()),
        ..FleetConfig::default()
    };
    let (fleet, _, names) = fleet_of(1, config);
    let model = names[0].clone();
    let client = fleet.client();

    // Overloaded interval: the flood blows the SLO and the queue.
    let flood = [StreamSpec {
        model: model.clone(),
        class: SloClass::Batch,
        arrival: Arrival::Open { rps: 2000.0 },
        requests: 64,
        deadline: Duration::from_millis(50),
    }];
    run_fleet_load(&client, &inputs(11), &flood, 11);
    let up = fleet.tick();
    assert_eq!(up.len(), 1, "overload grows the pool: {up:?}");
    assert!(up[0].to > up[0].from);

    // Calm-but-sampled interval: cheap closed traffic, empty queue.
    let calm = [closed(&model, SloClass::Standard, 8, 300)];
    run_fleet_load(&client, &inputs(11), &calm, 12);
    let down = fleet.tick();
    assert_eq!(down.len(), 1, "headroom shrinks the pool: {down:?}");
    assert!(down[0].to < down[0].from);

    let report = fleet.shutdown();
    assert!(report.scaled_both_ways());
    let m = report.model(&model).expect("registered");
    assert!(m.max_workers > 1 && m.final_workers == 1);

    // The same movements, through the metrics registry.
    let metrics = &telemetry.metrics;
    assert!(metrics.counter("fleet.scale_up").get() >= 1);
    assert!(metrics.counter("fleet.scale_down").get() >= 1);
    assert!(metrics.gauge(format!("fleet.{model}.workers")).max() >= 2);
    assert!(metrics.counter(format!("fleet.{model}.completed")).get() >= 72);
}

/// The train-and-serve path of the fleet: a live trainer publishes into
/// one model mid-load while a static sibling serves undisturbed; closed
/// clients must see strictly rising versions and lose nothing.
#[test]
fn a_live_trainer_feeds_one_fleet_model_mid_load() {
    let net = Arc::new(mlp(DIM, &[16], 4));
    let (train_set, test_set) = gaussian_mixture(4, DIM, 1280, 0.25, 21)
        .split_at(1024)
        .expect("split in range");
    let fleet = Fleet::builder(FleetConfig::default())
        .model("live", Arc::clone(&net))
        .model("static", Arc::clone(&net))
        .start();
    let mut rng = Rng::new(21);
    fleet
        .registry("static")
        .expect("registered")
        .publish(net.init_params(&mut rng), 1)
        .expect("fresh registry accepts v1");
    let mut algo = Sma::new(net.init_params(&mut rng), 2, SmaConfig::default());
    let config = FleetTrainConfig {
        live_model: "live".into(),
        trainer: TrainerConfig::new(16, 2).with_seed(21),
        publish_every: 10,
        load: vec![
            closed("live", SloClass::Standard, 25, 500),
            closed("static", SloClass::Standard, 25, 500),
        ],
        seed: 21,
    };
    let report = train_into_fleet(fleet, &net, &train_set, &test_set, &mut algo, &config);

    assert!(all_answered(&report.load), "{}", report.load.summary());
    assert!(report.load.versions_monotonic());
    let live = report.fleet.model("live").expect("registered");
    assert!(
        live.max_version > 1,
        "the trainer published mid-load: {live:?}"
    );
    let st = report.fleet.model("static").expect("registered");
    assert_eq!(
        (st.min_version, st.max_version),
        (1, 1),
        "the static sibling is undisturbed"
    );
    assert!(report.curve.iterations > 0);
}

/// An int8 candidate staged at 100% canary answers every request with
/// the exact-integer forward (bit-identical to a direct
/// `predict_quant`), and promotion turns it into a quantized primary
/// that keeps serving the same classes with its precision label.
#[test]
fn quantized_canary_serves_exactly_and_survives_promotion() {
    let (fleet, net, names) = fleet_of(1, FleetConfig::default());
    let model = names[0].clone();
    let params = fleet
        .registry(&model)
        .expect("registered")
        .current()
        .expect("published")
        .params
        .clone();
    let quant = Arc::new(net.quantize(&params, Precision::Int8));
    fleet
        .stage_quantized_candidate(
            &model,
            Arc::clone(&quant),
            Some(-0.005),
            CandidateMode::Canary { percent: 100 },
        )
        .expect("candidate fits the spec");

    let client = fleet.client();
    let mut scratch = net.scratch();
    for input in inputs(11) {
        let served = client
            .submit(
                &model,
                input.clone(),
                SloClass::Standard,
                Duration::from_secs(5),
            )
            .expect("admitted")
            .wait()
            .expect("answered");
        assert!(served.canary, "100% canary routes every request");
        let direct = net.predict_quant(
            &quant,
            &Tensor::from_vec(Shape::new(&[1, DIM]), input),
            &mut scratch,
        );
        assert_eq!(served.class, direct[0], "canary serves the int8 forward");
    }

    assert_eq!(fleet.promote(&model, 5).expect("model exists"), Some(2));
    let current = fleet
        .registry(&model)
        .expect("registered")
        .current()
        .expect("published");
    assert_eq!(current.precision, Precision::Int8);
    assert_eq!(current.accuracy_delta, Some(-0.005));
    assert!(current.quant.is_some());
    for input in inputs(12) {
        let served = client
            .submit(
                &model,
                input.clone(),
                SloClass::Standard,
                Duration::from_secs(5),
            )
            .expect("admitted")
            .wait()
            .expect("answered");
        assert!(!served.canary, "promoted model is the primary now");
        assert_eq!(served.version, 2);
        let direct = net.predict_quant(
            &quant,
            &Tensor::from_vec(Shape::new(&[1, DIM]), input),
            &mut scratch,
        );
        assert_eq!(served.class, direct[0], "primary serves the int8 forward");
    }
    let report = fleet.shutdown();
    let m = report.model(&model).expect("registered");
    assert_eq!(m.canary_served, 32, "exactly the pre-promotion requests");
}
