//! Property-based tests of cross-crate invariants.

use crossbow::memory::{offline_plan, shared_plan};
use crossbow::nn::graph::OpGraph;
use crossbow::nn::zoo::mlp;
use crossbow::sync::algorithm::SyncAlgorithm;
use crossbow::sync::sma::{Sma, SmaConfig};
use crossbow::sync::ssgd::SSgd;
use crossbow::sync::optimizer::SgdConfig;
use crossbow::gpu_sim::collective::ring_all_reduce_duration;
use crossbow::gpu_sim::SimDuration;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SMA's central model stays finite and within the convex hull's scale
    /// under arbitrary bounded gradients.
    #[test]
    fn sma_center_stays_bounded(
        seed in 0u64..1000,
        k in 1usize..6,
        steps in 1usize..30,
        lr in 0.001f32..0.3,
    ) {
        let mut rng = crossbow::tensor::Rng::new(seed);
        let dim = 8;
        let init: Vec<f32> = (0..dim).map(|_| rng.normal()).collect();
        let mut sma = Sma::new(init, k, SmaConfig::default());
        for _ in 0..steps {
            let grads: Vec<Vec<f32>> = (0..k)
                .map(|_| (0..dim).map(|_| rng.normal()).collect())
                .collect();
            sma.step(&grads, lr);
        }
        prop_assert!(sma.consensus().iter().all(|v| v.is_finite()));
        for j in 0..k {
            prop_assert!(sma.replica(j).iter().all(|v| v.is_finite()));
        }
    }

    /// With zero gradients and no momentum, the centre converges to the
    /// replica mean and replicas contract toward it (the model-averaging
    /// fixed point).
    #[test]
    fn sma_contracts_to_the_replica_mean(
        seed in 0u64..1000,
        k in 2usize..6,
    ) {
        let mut rng = crossbow::tensor::Rng::new(seed);
        let dim = 4;
        let mut sma = Sma::new(vec![0.0; dim], k, SmaConfig {
            momentum: 0.0,
            alpha: None,
            tau: 1,
        });
        // Scatter replicas, remember their mean.
        let mut mean = vec![0.0f64; dim];
        for j in 0..k {
            let vals: Vec<f32> = (0..dim).map(|_| rng.normal() * 3.0).collect();
            for (m, &v) in mean.iter_mut().zip(&vals) {
                *m += f64::from(v) / k as f64;
            }
            // Seed via add/remove dance: rebuild with direct construction.
            let _ = j;
            let _ = vals;
        }
        // Direct scatter is not part of the public API; emulate by one
        // gradient step that moves each replica to a random point.
        let targets: Vec<Vec<f32>> = (0..k)
            .map(|_| (0..dim).map(|_| rng.normal() * 3.0).collect())
            .collect();
        // gradient = (w - target)/lr moves w to target - c; close enough
        // for a contraction test: run several zero-gradient steps after.
        let lr = 1.0f32;
        let grads: Vec<Vec<f32>> = targets
            .iter()
            .map(|t| t.iter().map(|&tv| -tv).collect())
            .collect();
        sma.step(&grads, lr);
        let spread_before = crossbow::sync::algorithm::replica_spread(&sma);
        for _ in 0..50 {
            sma.step(&vec![vec![0.0; dim]; k], 0.0);
        }
        let spread_after = crossbow::sync::algorithm::replica_spread(&sma);
        prop_assert!(spread_after <= spread_before * 0.05 + 1e-6,
            "spread {spread_before} -> {spread_after}");
    }

    /// S-SGD replicas remain identical whatever the gradients are.
    #[test]
    fn ssgd_replicas_never_diverge(
        seed in 0u64..1000,
        k in 1usize..6,
        steps in 1usize..20,
    ) {
        let mut rng = crossbow::tensor::Rng::new(seed);
        let dim = 6;
        let init: Vec<f32> = (0..dim).map(|_| rng.normal()).collect();
        let mut algo = SSgd::new(init, k, SgdConfig::paper_default());
        for _ in 0..steps {
            let grads: Vec<Vec<f32>> = (0..k)
                .map(|_| (0..dim).map(|_| rng.normal()).collect())
                .collect();
            algo.step(&grads, 0.05);
        }
        prop_assert_eq!(crossbow::sync::algorithm::replica_spread(&algo), 0.0);
    }

    /// Ring all-reduce duration is monotone in bytes and participants.
    #[test]
    fn all_reduce_duration_is_monotone(
        bytes in 1u64..1_000_000_000,
        k in 2usize..16,
    ) {
        let lat = SimDuration::from_micros(20);
        let d = ring_all_reduce_duration(bytes, k, 12e9, lat);
        let d_more_bytes = ring_all_reduce_duration(bytes * 2, k, 12e9, lat);
        let d_more_peers = ring_all_reduce_duration(bytes, k + 1, 12e9, lat);
        let d_faster_link = ring_all_reduce_duration(bytes, k, 24e9, lat);
        prop_assert!(d_more_bytes >= d);
        prop_assert!(d_more_peers >= d);
        prop_assert!(d_faster_link <= d);
    }

    /// The memory planner never allocates more than the no-reuse
    /// footprint, and peak usage never exceeds allocation.
    #[test]
    fn memory_plan_bounds_hold(
        hidden1 in 1usize..64,
        hidden2 in 1usize..64,
        batch in 1usize..32,
    ) {
        let net = mlp(12, &[hidden1, hidden2], 5);
        let graph = OpGraph::from_network(&net, batch);
        let plan = offline_plan(&graph);
        prop_assert!(plan.bytes_allocated <= plan.bytes_without_reuse);
        prop_assert!(plan.peak_bytes <= plan.bytes_allocated);
        prop_assert!(plan.savings() >= 0.0);
    }

    /// Shared pools never beat physics: peak of m learners is at least a
    /// single learner's peak and at most m times it.
    #[test]
    fn shared_plan_peak_is_sandwiched(
        m in 1usize..5,
        stagger in 0usize..20,
    ) {
        let net = mlp(10, &[16, 8], 4);
        let graph = OpGraph::from_network(&net, 4);
        let single = offline_plan(&graph);
        let shared = shared_plan(&graph, m, stagger);
        prop_assert!(shared.peak_bytes >= single.peak_bytes);
        prop_assert!(shared.peak_bytes <= m * single.peak_bytes);
    }

    /// Batch samplers partition each epoch exactly (drop_last), whatever
    /// the sizes.
    #[test]
    fn sampler_partitions_epochs(
        n in 2usize..200,
        batch in 1usize..50,
        seed in 0u64..100,
    ) {
        prop_assume!(batch <= n);
        let mut sampler = crossbow::data::BatchSampler::new(n, batch, true, seed);
        let per_epoch = sampler.batches_per_epoch();
        let mut seen = vec![0usize; n];
        for _ in 0..per_epoch {
            let (indices, epoch) = sampler.next_batch();
            prop_assert_eq!(epoch, 0);
            for i in indices {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c <= 1), "no duplicates within an epoch");
        let covered = seen.iter().filter(|&&c| c == 1).count();
        prop_assert_eq!(covered, per_epoch * batch);
    }
}
