//! Randomised tests of cross-crate invariants.
//!
//! These used to be `proptest` properties; the tier-1 build now runs
//! without registry access, so each property is exercised over a fixed
//! budget of seeded random cases drawn from the in-repo
//! [`crossbow::tensor::Rng`]. Failures print the offending case, which —
//! the generator being deterministic — is immediately reproducible.

use crossbow::gpu_sim::collective::ring_all_reduce_duration;
use crossbow::gpu_sim::SimDuration;
use crossbow::memory::{offline_plan, shared_plan};
use crossbow::nn::graph::OpGraph;
use crossbow::nn::zoo::mlp;
use crossbow::sync::algorithm::SyncAlgorithm;
use crossbow::sync::optimizer::SgdConfig;
use crossbow::sync::sma::{Sma, SmaConfig};
use crossbow::sync::ssgd::SSgd;
use crossbow::tensor::Rng;

const CASES: u64 = 64;

/// Uniform integer in `[lo, hi)` from the repo Rng.
fn pick(rng: &mut Rng, lo: usize, hi: usize) -> usize {
    lo + (rng.next_u64() % (hi - lo) as u64) as usize
}

/// SMA's central model stays finite under arbitrary bounded gradients.
#[test]
fn sma_center_stays_bounded() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xA11CE ^ case);
        let k = pick(&mut rng, 1, 6);
        let steps = pick(&mut rng, 1, 30);
        let lr = rng.uniform(0.001, 0.3);
        let dim = 8;
        let init: Vec<f32> = (0..dim).map(|_| rng.normal()).collect();
        let mut sma = Sma::new(init, k, SmaConfig::default());
        for _ in 0..steps {
            let grads: Vec<Vec<f32>> = (0..k)
                .map(|_| (0..dim).map(|_| rng.normal()).collect())
                .collect();
            sma.step(&grads, lr);
        }
        assert!(
            sma.consensus().iter().all(|v| v.is_finite()),
            "case {case}: k={k} steps={steps} lr={lr}"
        );
        for j in 0..k {
            assert!(
                sma.replica(j).iter().all(|v| v.is_finite()),
                "case {case}: replica {j}"
            );
        }
    }
}

/// With zero gradients and no momentum, the centre converges to the
/// replica mean and replicas contract toward it (the model-averaging
/// fixed point).
#[test]
fn sma_contracts_to_the_replica_mean() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xC0111DE ^ case);
        let k = pick(&mut rng, 2, 6);
        let dim = 4;
        let mut sma = Sma::new(
            vec![0.0; dim],
            k,
            SmaConfig {
                momentum: 0.0,
                alpha: None,
                tau: 1,
            },
        );
        // Scatter replicas with one unit-lr gradient step, then run
        // zero-gradient steps: the spread must contract essentially to 0.
        let targets: Vec<Vec<f32>> = (0..k)
            .map(|_| (0..dim).map(|_| rng.normal() * 3.0).collect())
            .collect();
        let grads: Vec<Vec<f32>> = targets
            .iter()
            .map(|t| t.iter().map(|&tv| -tv).collect())
            .collect();
        sma.step(&grads, 1.0);
        let spread_before = crossbow::sync::algorithm::replica_spread(&sma);
        for _ in 0..50 {
            sma.step(&vec![vec![0.0; dim]; k], 0.0);
        }
        let spread_after = crossbow::sync::algorithm::replica_spread(&sma);
        assert!(
            spread_after <= spread_before * 0.05 + 1e-6,
            "case {case}: spread {spread_before} -> {spread_after}"
        );
    }
}

/// S-SGD replicas remain identical whatever the gradients are.
#[test]
fn ssgd_replicas_never_diverge() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x55D6 ^ case);
        let k = pick(&mut rng, 1, 6);
        let steps = pick(&mut rng, 1, 20);
        let dim = 6;
        let init: Vec<f32> = (0..dim).map(|_| rng.normal()).collect();
        let mut algo = SSgd::new(init, k, SgdConfig::paper_default());
        for _ in 0..steps {
            let grads: Vec<Vec<f32>> = (0..k)
                .map(|_| (0..dim).map(|_| rng.normal()).collect())
                .collect();
            algo.step(&grads, 0.05);
        }
        assert_eq!(
            crossbow::sync::algorithm::replica_spread(&algo),
            0.0,
            "case {case}: k={k} steps={steps}"
        );
    }
}

/// Ring all-reduce duration is monotone in bytes and participants.
#[test]
fn all_reduce_duration_is_monotone() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xA117 ^ case);
        let bytes = 1 + rng.next_u64() % 1_000_000_000;
        let k = pick(&mut rng, 2, 16);
        let lat = SimDuration::from_micros(20);
        let d = ring_all_reduce_duration(bytes, k, 12e9, lat);
        let d_more_bytes = ring_all_reduce_duration(bytes * 2, k, 12e9, lat);
        let d_more_peers = ring_all_reduce_duration(bytes, k + 1, 12e9, lat);
        let d_faster_link = ring_all_reduce_duration(bytes, k, 24e9, lat);
        assert!(d_more_bytes >= d, "case {case}: bytes={bytes} k={k}");
        assert!(d_more_peers >= d, "case {case}: bytes={bytes} k={k}");
        assert!(d_faster_link <= d, "case {case}: bytes={bytes} k={k}");
    }
}

/// The memory planner never allocates more than the no-reuse footprint,
/// and peak usage never exceeds allocation.
#[test]
fn memory_plan_bounds_hold() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x3E3 ^ case);
        let hidden1 = pick(&mut rng, 1, 64);
        let hidden2 = pick(&mut rng, 1, 64);
        let batch = pick(&mut rng, 1, 32);
        let net = mlp(12, &[hidden1, hidden2], 5);
        let graph = OpGraph::from_network(&net, batch);
        let plan = offline_plan(&graph);
        assert!(
            plan.bytes_allocated <= plan.bytes_without_reuse,
            "case {case}: h=({hidden1},{hidden2}) b={batch}"
        );
        assert!(plan.peak_bytes <= plan.bytes_allocated, "case {case}");
        assert!(plan.savings() >= 0.0, "case {case}");
    }
}

/// Shared pools never beat physics: peak of m learners is at least a
/// single learner's peak and at most m times it.
#[test]
fn shared_plan_peak_is_sandwiched() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5A4ED ^ case);
        let m = pick(&mut rng, 1, 5);
        let stagger = pick(&mut rng, 0, 20);
        let net = mlp(10, &[16, 8], 4);
        let graph = OpGraph::from_network(&net, 4);
        let single = offline_plan(&graph);
        let shared = shared_plan(&graph, m, stagger);
        assert!(
            shared.peak_bytes >= single.peak_bytes,
            "case {case}: m={m} stagger={stagger}"
        );
        assert!(
            shared.peak_bytes <= m * single.peak_bytes,
            "case {case}: m={m} stagger={stagger}"
        );
    }
}

/// Batch samplers partition each epoch exactly (drop_last), whatever the
/// sizes.
#[test]
fn sampler_partitions_epochs() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xBA7C4 ^ case);
        let n = pick(&mut rng, 2, 200);
        let batch = pick(&mut rng, 1, 50.min(n + 1));
        let seed = rng.next_u64() % 100;
        let mut sampler = crossbow::data::BatchSampler::new(n, batch, true, seed);
        let per_epoch = sampler.batches_per_epoch();
        let mut seen = vec![0usize; n];
        for _ in 0..per_epoch {
            let (indices, epoch) = sampler.next_batch();
            assert_eq!(epoch, 0, "case {case}: n={n} batch={batch}");
            for i in indices {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c <= 1),
            "case {case}: duplicates within an epoch (n={n} batch={batch})"
        );
        let covered = seen.iter().filter(|&&c| c == 1).count();
        assert_eq!(
            covered,
            per_epoch * batch,
            "case {case}: n={n} batch={batch}"
        );
    }
}

/// A random `LoadResult` with self-consistent counts and version range.
fn random_load_result(rng: &mut Rng) -> crossbow::serve::LoadResult {
    use std::time::Duration;
    let ok = rng.next_u64() % 100;
    let rejected = rng.next_u64() % 20;
    let failed = rng.next_u64() % 10;
    let (min_version, max_version) = if ok == 0 {
        (u64::MAX, 0)
    } else {
        let lo = 1 + rng.next_u64() % 8;
        (lo, lo + rng.next_u64() % 8)
    };
    crossbow::serve::LoadResult {
        submitted: ok + rejected + failed,
        ok,
        rejected,
        failed,
        client_panics: rng.next_u64() % 2,
        versions_monotonic: rng.bernoulli(0.8),
        min_version,
        max_version,
        wall: Duration::from_millis(1 + rng.next_u64() % 500),
        throughput: 0.0,
    }
}

/// Merging load rounds is associative and commutative for every count,
/// for the observed version range, and for the total wall clock (the
/// monotonicity verdict is deliberately order-sensitive: it checks the
/// version boundary between an earlier and a later round).
#[test]
fn load_result_merge_counts_are_associative_and_commutative() {
    let counts = |r: &crossbow::serve::LoadResult| {
        (
            r.submitted,
            r.ok,
            r.rejected,
            r.failed,
            r.client_panics,
            r.min_version,
            r.max_version,
            r.wall,
        )
    };
    for case in 0..CASES {
        let mut rng = Rng::new(0x10AD ^ case);
        let a = random_load_result(&mut rng);
        let b = random_load_result(&mut rng);
        let c = random_load_result(&mut rng);
        assert_eq!(
            counts(&a.merged_with(&b)),
            counts(&b.merged_with(&a)),
            "case {case}: commutativity"
        );
        assert_eq!(
            counts(&a.merged_with(&b).merged_with(&c)),
            counts(&a.merged_with(&b.merged_with(&c))),
            "case {case}: associativity"
        );
        // The monotonicity verdict is associative too: both groupings
        // check the same pairwise version boundaries.
        assert_eq!(
            a.merged_with(&b).merged_with(&c).versions_monotonic,
            a.merged_with(&b.merged_with(&c)).versions_monotonic,
            "case {case}: verdict associativity"
        );
    }
}

/// Merging two latency histograms keeps every reported quantile within
/// the bucket bounds of its inputs: the merged p50/p95/p99 can never
/// fall below both inputs' value or rise above both (a mixture's
/// quantile is bracketed by its components').
#[test]
fn merged_histograms_preserve_quantile_bucket_bounds() {
    use crossbow::serve::Histogram;
    use std::time::Duration;
    for case in 0..CASES {
        let mut rng = Rng::new(0x4157 ^ case);
        let fill = |rng: &mut Rng| {
            let mut h = Histogram::new();
            for _ in 0..pick(rng, 1, 200) {
                h.record(Duration::from_micros(1 + rng.next_u64() % 100_000));
            }
            h
        };
        let a = fill(&mut rng);
        let b = fill(&mut rng);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.total(), a.total() + b.total(), "case {case}");
        for q in [0.5, 0.95, 0.99] {
            let qa = a.quantile(q).expect("a is non-empty");
            let qb = b.quantile(q).expect("b is non-empty");
            let qm = merged.quantile(q).expect("merged is non-empty");
            assert!(
                qm >= qa.min(qb) && qm <= qa.max(qb),
                "case {case}: q={q} merged {qm:?} outside [{:?}, {:?}]",
                qa.min(qb),
                qa.max(qb)
            );
        }
        // Merging an empty histogram is the identity for quantiles.
        let mut with_empty = a.clone();
        with_empty.merge(&Histogram::new());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(with_empty.quantile(q), a.quantile(q), "case {case}");
        }
    }
}
