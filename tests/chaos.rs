//! The chaos harness, driven the way CI drives it: through the real
//! `crossbow chaos` CLI, as a child process.
//!
//! Two properties matter end to end:
//!
//! 1. **Replayability** — the same `--seed` produces a byte-identical
//!    `CHAOS-REPORT` marker, twice in a row. The marker carries the
//!    fault schedule and every invariant verdict, so equality here means
//!    the whole scenario — injection points included — is a pure
//!    function of the seed.
//! 2. **Recovery** — the scenario passes: every layer's invariant holds
//!    and the process exits zero.

use std::process::Command;

/// Runs one chaos scenario through the CLI, returning (exit-ok, marker).
fn run_scenario(scenario: &str, seed: &str) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_crossbow"))
        .args(["chaos", "--scenario", scenario, "--seed", seed])
        .output()
        .expect("spawn crossbow chaos");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let marker = stdout
        .lines()
        .find(|l| l.starts_with("CHAOS-REPORT "))
        .unwrap_or_else(|| panic!("no CHAOS-REPORT in output:\n{stdout}"))
        .to_string();
    (out.status.success(), marker)
}

#[test]
fn partition_heal_replays_byte_identically_and_passes() {
    let (ok_a, marker_a) = run_scenario("partition-heal", "7");
    let (ok_b, marker_b) = run_scenario("partition-heal", "7");
    assert!(ok_a && ok_b, "scenario must pass: {marker_a}");
    assert_eq!(marker_a, marker_b, "same seed must replay identically");
    assert!(marker_a.ends_with("pass=true"));
    // A different seed moves the fault window: the schedule — and only
    // the schedule — changes; the invariant still holds.
    let (ok_c, marker_c) = run_scenario("partition-heal", "8");
    assert!(ok_c, "reseeded scenario must still pass: {marker_c}");
    assert_ne!(marker_a, marker_c, "the seed must steer the schedule");
    assert!(marker_c.ends_with("pass=true"));
}

#[test]
fn cascade_composes_every_fault_layer_and_passes() {
    let (ok_a, marker_a) = run_scenario("cascade", "7");
    let (ok_b, marker_b) = run_scenario("cascade", "7");
    assert!(ok_a && ok_b, "scenario must pass: {marker_a}");
    assert_eq!(marker_a, marker_b, "same seed must replay identically");
    // The cascade must genuinely touch all three layers.
    for check in [
        "sim_recovered:ok",
        "original_workers_evicted:ok",
        "failover_checksum_matches:ok",
    ] {
        assert!(marker_a.contains(check), "missing {check} in {marker_a}");
    }
}

#[test]
fn unknown_scenario_is_rejected_with_the_catalog_hint() {
    let out = Command::new(env!("CARGO_BIN_EXE_crossbow"))
        .args(["chaos", "--scenario", "totally-fine"])
        .output()
        .expect("spawn crossbow chaos");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown scenario"),
        "should name the problem, got {stderr}"
    );
}
