//! End-to-end tests for the on-disk data plane: the trainer must be
//! agnostic to whether its samples come from RAM or from mmap-backed
//! shard files, crashes mid-shard must resume bit-exactly, and a dataset
//! larger than the configured in-memory budget must train from disk.

use crossbow::comms::{demo_algo, demo_task};
use crossbow::data::synth::gaussian_mixture;
use crossbow::data::SampleSource;
use crossbow::shard::{pack_source, PackConfig, ShardedDataset};
use crossbow::sync::{resume, train, CheckpointConfig, TrainerConfig};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("crossbow-data-plane-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Packs `source` into shards under a fresh scratch dir and opens it
/// back as an mmap-backed dataset.
fn packed(tag: &str, source: &dyn SampleSource, samples_per_shard: usize) -> ShardedDataset {
    let dir = scratch_dir(tag);
    let cfg = PackConfig {
        samples_per_shard,
        page_samples: 32,
        ..PackConfig::default()
    };
    pack_source(&dir, source, cfg).expect("pack");
    ShardedDataset::open(&dir).expect("open shard set")
}

/// Bit-identity (a): the training curve from the mmap shard set equals
/// the curve from the in-memory dataset, bit for bit.
#[test]
fn mmap_shard_curve_matches_in_memory() {
    let (net, train_set, test_set) = demo_task();
    let disk = packed("identity", &train_set, 100);
    assert_eq!(disk.len(), train_set.len());

    let trainer = TrainerConfig::new(16, 3).with_seed(33);
    let mut algo = demo_algo(&net, 2, "sma", 5);
    let from_ram = train(&net, &train_set, &test_set, algo.as_mut(), &trainer);
    let mut algo = demo_algo(&net, 2, "sma", 5);
    let from_disk = train(&net, &disk, &test_set, algo.as_mut(), &trainer);
    assert_eq!(
        from_ram, from_disk,
        "shard-backed training must not change the arithmetic"
    );
}

/// Bit-identity (b): a run that crashes with its data cursor in the
/// middle of a shard resumes from the checkpoint store and produces a
/// curve bit-identical to a run that never crashed.
#[test]
fn resume_mid_shard_is_bit_exact() {
    let (net, train_set, test_set) = demo_task();
    // 100-sample shards, 32 samples per iteration: iteration 17 leaves
    // the cursor partway through the second shard of the second epoch.
    let disk = packed("resume", &train_set, 100);
    let ckpt = scratch_dir("resume-ckpt");
    let trainer = TrainerConfig::new(16, 4).with_seed(21);

    let mut algo = demo_algo(&net, 2, "sma", 3);
    let uninterrupted = train(&net, &disk, &test_set, algo.as_mut(), &trainer);

    let checkpointing = CheckpointConfig::new(&ckpt).every(5);
    let crashing = trainer
        .clone()
        .with_checkpointing(checkpointing.clone())
        .with_crash_after(17);
    let mut algo = demo_algo(&net, 2, "sma", 3);
    let crashed = train(&net, &disk, &test_set, algo.as_mut(), &crashing);
    assert_eq!(crashed.iterations, 17, "crash fired at the wrong point");

    let resuming = trainer.clone().with_checkpointing(checkpointing);
    let mut algo = demo_algo(&net, 2, "sma", 3);
    let resumed = resume(&net, &disk, &test_set, algo.as_mut(), &resuming).expect("resume");
    assert!(
        resumed.iterations > 17,
        "resume must continue past the crash point"
    );
    assert_eq!(
        resumed, uninterrupted,
        "mid-shard resume must replay the identical sample/update stream"
    );
}

/// A dataset whose on-disk footprint exceeds the configured in-memory
/// budget still trains — from disk, through the mmap, without ever
/// materialising the full dataset in RAM.
#[test]
fn dataset_larger_than_memory_budget_trains_from_disk() {
    // ~4 MB of samples against a 1 MB in-memory budget.
    let full = gaussian_mixture(4, 128, 8192, 0.35, 17);
    let (train_set, test_set) = full.split_at(8000).expect("split in range");
    let disk = packed("budget", &train_set, 1024);

    let ram_budget_bytes: u64 = 1 << 20;
    assert!(
        disk.total_file_bytes() > ram_budget_bytes,
        "dataset ({} bytes) must exceed the {} byte budget for this test to mean anything",
        disk.total_file_bytes(),
        ram_budget_bytes
    );
    assert!(disk.fully_mmapped(), "large set should be mmap-backed");

    let trainer = TrainerConfig::new(32, 1).with_seed(9);
    let mut algo = demo_algo(&net_for(&disk), 2, "sma", 11);
    let curve = train(&net_for(&disk), &disk, &test_set, algo.as_mut(), &trainer);
    assert!(curve.iterations > 0, "training from disk made no progress");
    assert_eq!(curve.epochs(), 1);
}

/// An MLP sized to a shard set's sample shape.
fn net_for(set: &ShardedDataset) -> crossbow::nn::Network {
    crossbow::nn::zoo::mlp(set.sample_len(), &[16], set.classes())
}
