//! Fault-tolerant distributed training, end to end.
//!
//! Three layers of proof:
//!
//! 1. **Wire discipline** — odd-shaped payloads round-trip exactly;
//!    truncation and corruption are detected errors, never garbage.
//! 2. **Bit-identity** — with fault injection off, a distributed run
//!    (threads as processes over loopback TCP) produces a
//!    `TrainingCurve` *equal* to the single-process trainer; with
//!    seeded fault injection on, two runs are identical to each other
//!    AND to the clean curve — recovery changes timing, not arithmetic.
//! 3. **Crash recovery** — injected disconnects evict workers and a
//!    late joiner rebuilds the cluster in-process; a real `SIGKILL`
//!    against a worker *process* is detected by heartbeat, the run
//!    degrades to the survivors, and a restarted worker rejoins from
//!    the latest checkpoint (multi-process, real sockets, real signal).

use crossbow::comms::wire::{frame, FrameReader, WireError};
use crossbow::comms::{
    checksum_params, demo_algo, demo_task, run_local_cluster, DistConfig, LocalClusterOptions, Msg,
    NetFaultPlan, RetryPolicy, Topology,
};
use crossbow::sync::{train, TrainerConfig};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::mpsc::{self, Receiver};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Wire discipline
// ---------------------------------------------------------------------

/// One frame through the incremental parser.
fn through_the_wire(msg: &Msg) -> Msg {
    let bytes = frame(&msg.encode());
    let mut reader = FrameReader::new();
    let payload = reader.read_frame(&mut &bytes[..]).expect("parses");
    Msg::decode(&payload).expect("decodes")
}

#[test]
fn odd_tensor_shapes_round_trip_exactly() {
    // Shapes chosen to stress every length-prefix path: empty, scalarish,
    // non-square, deep, and one per-dimension mismatch with the data len
    // (the codec ships bytes; shape validation is the receiver's job).
    let cases: Vec<(Vec<u64>, usize, usize)> = vec![
        (vec![1, 1], 1, 1),
        (vec![3, 7], 21, 3),
        (vec![2, 3, 5], 30, 2),
        (vec![1, 6], 6, 1),
        (vec![5, 1, 1, 1], 5, 5),
    ];
    for (dims, data_len, labels) in cases {
        let msg = Msg::Work {
            iter: 9,
            slot: 2,
            params: (0..7).map(|i| i as f32 * 0.37 - 1.0).collect(),
            dims: dims.clone(),
            images: (0..data_len).map(|i| (i as f32).sin()).collect(),
            labels: (0..labels as u64).collect(),
        };
        let back = through_the_wire(&msg);
        assert_eq!(back.encode(), msg.encode(), "dims {dims:?} must survive");
    }
    // Float payloads must be bit-exact, including the awkward ones.
    let awkward = Msg::Grad {
        iter: 1,
        slot: 0,
        loss: f32::MIN_POSITIVE,
        grad: vec![f32::NAN, -0.0, f32::INFINITY, 1e-38],
    };
    assert_eq!(through_the_wire(&awkward).encode(), awkward.encode());
}

#[test]
fn truncated_stream_is_a_disconnect_not_garbage() {
    let bytes = frame(&Msg::Ping { slot: 4 }.encode());
    for cut in 0..bytes.len() {
        let mut reader = FrameReader::new();
        match reader.read_frame(&mut &bytes[..cut]) {
            Err(WireError::Disconnected) => {}
            other => panic!("truncation at {cut} must read as disconnect, got {other:?}"),
        }
    }
}

#[test]
fn corrupted_payload_is_rejected_by_checksum() {
    let clean = frame(
        &Msg::Grad {
            iter: 3,
            slot: 1,
            loss: 0.25,
            grad: vec![1.0; 16],
        }
        .encode(),
    );
    // Flip one bit in every payload byte position in turn.
    for pos in 16..clean.len() {
        let mut bytes = clean.clone();
        bytes[pos] ^= 0x01;
        let mut reader = FrameReader::new();
        match reader.read_frame(&mut &bytes[..]) {
            Err(WireError::Corrupt(_)) => {}
            other => panic!("bit flip at {pos} must be caught, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Bit-identity
// ---------------------------------------------------------------------

#[test]
fn distributed_ssgd_matches_local_training_bit_for_bit() {
    let trainer = TrainerConfig::new(8, 2).with_seed(11);
    let out = run_local_cluster(LocalClusterOptions {
        workers: 2,
        algo: "ssgd".into(),
        init_seed: 3,
        trainer: trainer.clone(),
        dist: DistConfig::new(Topology::Ps, 2),
        late_workers: Vec::new(),
        events: None,
        worker_data: None,
    });
    let (net, train_set, test_set) = demo_task();
    let mut algo = demo_algo(&net, 2, "ssgd", 3);
    let local = train(&net, &train_set, &test_set, algo.as_mut(), &trainer);
    assert_eq!(out.report.curve, local);
    assert!(out.workers.iter().all(|w| w.is_ok()));
}

#[test]
fn seeded_drops_are_deterministic_and_curve_preserving() {
    let trainer = TrainerConfig::new(8, 2).with_seed(11);
    let mut dist = DistConfig::new(Topology::Ps, 2);
    // Faster resends keep the test quick; determinism comes from the
    // seeded schedule, not the timing.
    dist.work_resend = Duration::from_millis(500);
    dist.retry = RetryPolicy {
        max_retries: 6,
        backoff_base: Duration::from_millis(25),
        backoff_cap: Duration::from_millis(100),
    };
    let run = |fault: Option<NetFaultPlan>| {
        let mut dist = dist.clone();
        dist.fault = fault;
        run_local_cluster(LocalClusterOptions {
            workers: 2,
            algo: "sma".into(),
            init_seed: 3,
            trainer: trainer.clone(),
            dist,
            late_workers: Vec::new(),
            events: None,
            worker_data: None,
        })
    };
    let plan = NetFaultPlan::seeded(17).drop(0.04);
    let clean = run(None);
    let faulty_a = run(Some(plan.clone()));
    let faulty_b = run(Some(plan));

    // Same seed, same faults, same everything.
    assert_eq!(faulty_a.report.curve, faulty_b.report.curve);
    assert_eq!(faulty_a.report.counters, faulty_b.report.counters);
    assert_eq!(
        faulty_a.report.faults_injected,
        faulty_b.report.faults_injected
    );
    assert_eq!(
        faulty_a.report.model_checksum,
        faulty_b.report.model_checksum
    );
    // Dropped frames were recovered by resend, so the arithmetic — and
    // therefore the curve and the final model — is the clean run's.
    assert_eq!(faulty_a.report.curve, clean.report.curve);
    assert_eq!(faulty_a.report.model_checksum, clean.report.model_checksum);
    assert!(
        faulty_a.report.faults_injected > 0,
        "the seed must actually fire faults for this test to mean anything"
    );
    assert!(
        faulty_a.report.counters.retries > 0,
        "drops must force resends"
    );
    assert_eq!(clean.report.counters.retries, 0);
}

// ---------------------------------------------------------------------
// Crash recovery, in-process
// ---------------------------------------------------------------------

#[test]
fn injected_disconnects_evict_workers_and_a_late_joiner_rebuilds() {
    let trainer = TrainerConfig::new(8, 4).with_seed(11);
    let mut dist = DistConfig::new(Topology::Ps, 2);
    dist.work_resend = Duration::from_millis(300);
    // Both original worker links die at their 8th frame (the replacement
    // link is healthy); the run must degrade to an empty cluster, then
    // rebuild around the late joiner.
    dist.fault = Some(NetFaultPlan::seeded(5).disconnect_after(8).conns_below(2));
    let out = run_local_cluster(LocalClusterOptions {
        workers: 2,
        algo: "sma".into(),
        init_seed: 3,
        trainer,
        dist,
        late_workers: vec![Duration::from_millis(800)],
        events: None,
        worker_data: None,
    });
    assert_eq!(
        out.report.counters.evictions, 2,
        "both original workers evicted"
    );
    assert_eq!(
        out.report.counters.rejoins, 1,
        "the late joiner was admitted mid-run"
    );
    assert_eq!(
        out.report.workers, 1,
        "the cluster ends as the lone rejoiner"
    );
    assert_eq!(
        out.report.curve.epoch_accuracy.len(),
        4,
        "the run must complete every epoch despite losing the whole cluster"
    );
    // The original two workers died to injected disconnects…
    assert!(out.workers[0].is_err());
    assert!(out.workers[1].is_err());
    // …and the rejoiner served the rest of the run, admitted mid-stream.
    let rejoiner = out.workers[2]
        .as_ref()
        .expect("rejoiner runs to completion");
    assert!(rejoiner.rounds > 0);
    assert!(
        rejoiner.joined_at_iteration > 0,
        "admission state must reflect mid-run progress, not a fresh start"
    );
}

// ---------------------------------------------------------------------
// Crash recovery, multi-process (real SIGKILL)
// ---------------------------------------------------------------------

/// Kills the child on drop so a failing test never leaks processes.
struct Reaped(Child);

impl Drop for Reaped {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn line_channel(out: ChildStdout) -> Receiver<String> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(out).lines().map_while(Result::ok) {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    rx
}

/// Waits for a line matching `pred`, panicking past `timeout`.
fn wait_for(
    rx: &Receiver<String>,
    what: &str,
    timeout: Duration,
    pred: impl Fn(&str) -> bool,
) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        assert!(!left.is_zero(), "timed out waiting for {what}");
        match rx.recv_timeout(left) {
            Ok(line) => {
                if pred(&line) {
                    return line;
                }
            }
            Err(_) => panic!("coordinator exited or timed out waiting for {what}"),
        }
    }
}

/// Pulls `key=value` out of a marker line.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|t| t.strip_prefix('=')))
        .unwrap_or_else(|| panic!("no {key}= in {line:?}"))
}

fn spawn_worker(bin: &str, addr: &str, rejoin: bool) -> Reaped {
    let mut cmd = Command::new(bin);
    cmd.args(["dist-train", "--role", "worker", "--connect", addr]);
    if rejoin {
        cmd.args(["--rejoin", "1"]);
    }
    Reaped(
        cmd.stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn worker"),
    )
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crossbow-dist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sigkill_worker_is_evicted_and_a_restarted_one_rejoins() {
    let bin = env!("CARGO_BIN_EXE_crossbow");
    let ckpt = scratch("sigkill");
    let mut coord = Command::new(bin)
        .args([
            "dist-train",
            "--role",
            "coordinator",
            "--workers",
            "3",
            "--epochs",
            "20",
            "--batch",
            "8",
            "--seed",
            "11",
            "--init-seed",
            "3",
            "--bind",
            "127.0.0.1:0",
            "--progress-every",
            "5",
            "--checkpoint-dir",
        ])
        .arg(&ckpt)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn coordinator");
    let lines = line_channel(coord.stdout.take().expect("piped stdout"));
    let mut coord = Reaped(coord);

    let listening = wait_for(&lines, "LISTENING", Duration::from_secs(30), |l| {
        l.starts_with("LISTENING ")
    });
    let addr = listening
        .trim_start_matches("LISTENING ")
        .trim()
        .to_string();

    let mut workers: Vec<Reaped> = (0..3).map(|_| spawn_worker(bin, &addr, false)).collect();
    wait_for(&lines, "training progress", Duration::from_secs(60), |l| {
        l.strip_prefix("PROGRESS iter=")
            .and_then(|v| v.parse::<u64>().ok())
            .is_some_and(|iter| iter >= 10)
    });

    // SIGKILL one worker mid-run: no goodbye, no flush, nothing.
    let victim = workers.pop().expect("three workers");
    drop(victim);

    let evicted = wait_for(&lines, "EVICTED", Duration::from_secs(60), |l| {
        l.starts_with("EVICTED ")
    });
    assert!(
        evicted.contains("heartbeat timeout") || evicted.contains("connection lost"),
        "eviction reason should be failure detection, got {evicted:?}"
    );

    // A replacement process rejoins against the live run.
    workers.push(spawn_worker(bin, &addr, true));
    wait_for(&lines, "rejoin JOINED", Duration::from_secs(60), |l| {
        l.starts_with("JOINED") && l.contains("rejoin=true")
    });

    let report = wait_for(&lines, "REPORT", Duration::from_secs(300), |l| {
        l.starts_with("REPORT ")
    });
    let status = coord.0.wait().expect("coordinator exit status");
    assert!(status.success(), "coordinator must exit cleanly");

    assert_eq!(field(&report, "evictions"), "1");
    assert_eq!(field(&report, "rejoins"), "1");
    assert_eq!(field(&report, "workers"), "3", "2 survivors + 1 rejoiner");
    let final_acc: f64 = field(&report, "final_acc").parse().expect("final_acc");
    assert!(
        final_acc > 0.8,
        "survivors must keep converging through the crash, got {final_acc}"
    );
    let retries: u64 = field(&report, "retries").parse().expect("retries");
    let iterations: u64 = field(&report, "iterations").parse().expect("iterations");
    assert!(iterations > 10, "the run must continue past the crash");
    // Retries may or may not fire depending on where the kill landed;
    // the counter just has to parse. Checksums likewise.
    let _ = retries;
    u64::from_str_radix(field(&report, "checksum"), 16).expect("checksum is hex");

    drop(workers);
    let _ = std::fs::remove_dir_all(&ckpt);
}

// ---------------------------------------------------------------------
// Coordinator failover, multi-process (real SIGKILL against the primary)
// ---------------------------------------------------------------------

/// SIGKILLs the primary coordinator mid-run and asserts the warm
/// standby finishes the run with a curve and model checksum
/// bit-identical to an undisturbed single-process reference.
fn sigkill_primary_fails_over(topology: &str) {
    let bin = env!("CARGO_BIN_EXE_crossbow");

    // The undisturbed reference: same task, same seeds, no network.
    let trainer = TrainerConfig::new(8, 20).with_seed(11);
    let (net, train_set, test_set) = demo_task();
    let mut algo = demo_algo(&net, 2, "sma", 3);
    let reference = train(&net, &train_set, &test_set, algo.as_mut(), &trainer);
    let ref_checksum = checksum_params(algo.consensus());

    let shape: &[&str] = &[
        "--workers",
        "2",
        "--topology",
        topology,
        "--epochs",
        "20",
        "--batch",
        "8",
        "--seed",
        "11",
        "--init-seed",
        "3",
        "--lease-interval-ms",
        "100",
        "--lease-timeout-ms",
        "500",
    ];
    let mut primary = Command::new(bin)
        .args([
            "dist-train",
            "--role",
            "coordinator",
            "--bind",
            "127.0.0.1:0",
            "--progress-every",
            "1",
        ])
        .args(shape)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn primary");
    let primary_lines = line_channel(primary.stdout.take().expect("piped stdout"));
    let primary = Reaped(primary);
    let listening = wait_for(&primary_lines, "LISTENING", Duration::from_secs(60), |l| {
        l.starts_with("LISTENING ")
    });
    let addr = listening
        .trim_start_matches("LISTENING ")
        .trim()
        .to_string();

    let mut standby = Command::new(bin)
        .args([
            "dist-train",
            "--role",
            "standby",
            "--connect",
            &addr,
            "--bind",
            "127.0.0.1:0",
            "--priority",
            "1",
        ])
        .args(shape)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn standby");
    let standby_lines = line_channel(standby.stdout.take().expect("piped stdout"));
    let mut standby = Reaped(standby);
    let standby_listening = wait_for(
        &standby_lines,
        "STANDBY LISTENING",
        Duration::from_secs(60),
        |l| l.starts_with("STANDBY LISTENING "),
    );
    let standby_addr = standby_listening
        .trim_start_matches("STANDBY LISTENING ")
        .trim()
        .to_string();
    wait_for(
        &standby_lines,
        "STANDBY REGISTERED",
        Duration::from_secs(60),
        |l| l.starts_with("STANDBY REGISTERED"),
    );

    // Workers dial the primary first and fail over to the standby.
    let connect = format!("{addr},{standby_addr}");
    let workers: Vec<Reaped> = (0..2)
        .map(|i| {
            let jitter = (i + 1).to_string();
            Reaped(
                Command::new(bin)
                    .args([
                        "dist-train",
                        "--role",
                        "worker",
                        "--connect",
                        &connect,
                        "--failover-retries",
                        "10",
                        "--jitter-seed",
                        &jitter,
                    ])
                    .stdout(Stdio::null())
                    .stderr(Stdio::null())
                    .spawn()
                    .expect("spawn worker"),
            )
        })
        .collect();

    // Let real training progress replicate to the standby, then kill the
    // primary with no goodbye — SIGKILL, not shutdown.
    wait_for(
        &primary_lines,
        "training progress",
        Duration::from_secs(120),
        |l| {
            l.strip_prefix("PROGRESS iter=")
                .and_then(|v| v.parse::<u64>().ok())
                .is_some_and(|iter| iter >= 10)
        },
    );
    drop(primary);

    let takeover = wait_for(
        &standby_lines,
        "STANDBY TAKEOVER",
        Duration::from_secs(60),
        |l| l.starts_with("STANDBY TAKEOVER"),
    );
    assert_eq!(field(&takeover, "term"), "1", "first failover is term 1");

    let report = wait_for(&standby_lines, "REPORT", Duration::from_secs(300), |l| {
        l.starts_with("REPORT ")
    });
    let status = standby.0.wait().expect("standby exit status");
    assert!(status.success(), "standby must exit cleanly after takeover");

    assert_eq!(field(&report, "term"), "1");
    assert_eq!(field(&report, "workers"), "2", "both workers re-Hello'd");
    let iterations: u64 = field(&report, "iterations").parse().expect("iterations");
    assert_eq!(
        iterations, reference.iterations,
        "the resumed run must finish the full schedule"
    );
    let checksum = u64::from_str_radix(field(&report, "checksum"), 16).expect("checksum is hex");
    assert_eq!(
        checksum, ref_checksum,
        "failover must not perturb the model: the takeover's final \
         parameters must be bit-identical to the undisturbed reference"
    );
    let final_acc: f64 = field(&report, "final_acc").parse().expect("final_acc");
    assert!(
        (final_acc - reference.final_accuracy).abs() < 1e-6,
        "accuracy must match the reference, got {final_acc} vs {}",
        reference.final_accuracy
    );
    drop(workers);
}

#[test]
fn sigkill_primary_fails_over_bit_identically_ps() {
    sigkill_primary_fails_over("ps");
}

#[test]
fn sigkill_primary_fails_over_bit_identically_ring() {
    sigkill_primary_fails_over("ring");
}
