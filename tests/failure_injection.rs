//! Failure injection: stragglers, stalled pipelines and degenerate
//! configurations must degrade gracefully, not deadlock or corrupt state.

use crossbow::autotuner::tune_to_convergence;
use crossbow::data::prefetch::{PrefetchConfig, Prefetcher};
use crossbow::data::synth::gaussian_mixture;
use crossbow::data::augment::Augment;
use crossbow::gpu_sim::{KernelDesc, Machine, MachineConfig, SimDuration};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn straggler_gpu_delays_but_does_not_deadlock_the_collective() {
    // One GPU is busy with a long kernel before joining the all-reduce;
    // the rendezvous must simply wait for it (paper §2.3 motivates
    // synchronous training's straggler sensitivity).
    let mut machine = Machine::new(MachineConfig::titan_x_server(4));
    let streams: Vec<_> = (0..4)
        .map(|g| machine.create_stream(machine.device(g)))
        .collect();
    let cfg = crossbow::gpu_sim::DeviceConfig::titan_x_pascal();
    let slow_flops = (cfg.effective_flops(cfg.sm_total) * 0.5) as u64; // 500 ms
    machine.submit_kernel(streams[2], KernelDesc::compute("straggler", slow_flops, 24));
    machine.all_reduce(&streams, 1_000_000, "ar");
    for (i, &s) in streams.iter().enumerate() {
        machine.callback(s, i as u64);
    }
    let done = machine.run();
    assert_eq!(done.len(), 4, "everyone completes");
    assert!(
        done[0].time > crossbow::gpu_sim::SimTime::from_nanos(400_000_000),
        "the collective waited for the straggler"
    );
}

#[test]
fn slow_preprocessors_stall_but_recover() {
    // §4.5: "when the pre-processors stall the pipeline because it takes
    // more time to prepare the data on the CPU than to process it on a
    // GPU" — consumers must block-and-recover, not fail.
    let dataset = Arc::new(gaussian_mixture(4, 8, 64, 0.3, 1));
    let prefetcher = Prefetcher::spawn(
        dataset,
        PrefetchConfig {
            batch_size: 8,
            threads: 1,
            capacity: 2,
            augment: Augment::none(),
            slowdown: Duration::from_millis(100),
        },
        9,
    );
    // Demand batches faster than they are produced.
    let mut got = 0;
    for _ in 0..5 {
        if prefetcher
            .next_timeout(Duration::from_secs(10))
            .is_some()
        {
            got += 1;
        }
    }
    assert_eq!(got, 5, "every request eventually served");
}

#[test]
fn prefetcher_shutdown_under_backpressure_is_clean() {
    // Producers blocked on a full buffer must notice shutdown.
    let dataset = Arc::new(gaussian_mixture(4, 8, 64, 0.3, 1));
    let prefetcher = Prefetcher::spawn(
        dataset,
        PrefetchConfig {
            batch_size: 8,
            threads: 3,
            capacity: 1,
            augment: Augment::standard(),
            slowdown: Duration::ZERO,
        },
        9,
    );
    std::thread::sleep(Duration::from_millis(50)); // let the buffer fill
    drop(prefetcher); // must not hang
}

#[test]
fn autotuner_survives_a_pathological_throughput_oracle() {
    // A noisy, non-monotonic oracle: the tuner must terminate at a valid
    // learner count without oscillating forever.
    let chaotic = |m: usize| match m % 3 {
        0 => 900.0,
        1 => 1000.0,
        _ => 800.0,
    };
    let (m, obs) = tune_to_convergence(10.0, 8, chaotic);
    assert!((1..=8).contains(&m), "chose {m}, observations {obs:?}");
    assert!(obs.len() <= 10, "terminates promptly");
}

#[test]
fn zero_work_machine_stays_quiescent_under_polling() {
    let mut machine = Machine::new(MachineConfig::titan_x_server(1));
    assert!(machine.run_until_callback().is_none());
    assert!(machine.poll_completion().is_none());
    assert!(machine.is_quiescent());
}

#[test]
fn delay_only_streams_complete() {
    // Host stalls with no device work behind them still retire.
    let mut machine = Machine::new(MachineConfig::titan_x_server(1));
    let s = machine.create_stream(machine.device(0));
    for _ in 0..100 {
        machine.delay(s, SimDuration::from_micros(10), "stall");
    }
    machine.callback(s, 7);
    let done = machine.run();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].time.as_nanos(), 100 * 10_000);
}
