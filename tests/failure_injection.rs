//! Failure injection: stragglers, stalled pipelines and degenerate
//! configurations must degrade gracefully, not deadlock or corrupt state.

use crossbow::autotuner::tune_to_convergence;
use crossbow::data::augment::Augment;
use crossbow::data::prefetch::{PrefetchConfig, Prefetcher};
use crossbow::data::synth::gaussian_mixture;
use crossbow::engine::{RobustnessConfig, Session, SessionConfig};
use crossbow::exec_sim::{simulate, simulate_robust, RobustSimConfig, SimConfig};
use crossbow::gpu_sim::{FaultPlan, KernelDesc, Machine, MachineConfig, SimDuration, SimTime};
use crossbow::nn::ModelProfile;
use crossbow::Benchmark;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn straggler_gpu_delays_but_does_not_deadlock_the_collective() {
    // One GPU is busy with a long kernel before joining the all-reduce;
    // the rendezvous must simply wait for it (paper §2.3 motivates
    // synchronous training's straggler sensitivity).
    let mut machine = Machine::new(MachineConfig::titan_x_server(4));
    let streams: Vec<_> = (0..4)
        .map(|g| machine.create_stream(machine.device(g)))
        .collect();
    let cfg = crossbow::gpu_sim::DeviceConfig::titan_x_pascal();
    let slow_flops = (cfg.effective_flops(cfg.sm_total) * 0.5) as u64; // 500 ms
    machine.submit_kernel(streams[2], KernelDesc::compute("straggler", slow_flops, 24));
    machine.all_reduce(&streams, 1_000_000, "ar");
    for (i, &s) in streams.iter().enumerate() {
        machine.callback(s, i as u64);
    }
    let done = machine.run();
    assert_eq!(done.len(), 4, "everyone completes");
    assert!(
        done[0].time > crossbow::gpu_sim::SimTime::from_nanos(400_000_000),
        "the collective waited for the straggler"
    );
}

#[test]
fn slow_preprocessors_stall_but_recover() {
    // §4.5: "when the pre-processors stall the pipeline because it takes
    // more time to prepare the data on the CPU than to process it on a
    // GPU" — consumers must block-and-recover, not fail.
    let dataset = Arc::new(gaussian_mixture(4, 8, 64, 0.3, 1));
    let prefetcher = Prefetcher::spawn(
        dataset,
        PrefetchConfig {
            batch_size: 8,
            threads: 1,
            capacity: 2,
            augment: Augment::none(),
            slowdown: Duration::from_millis(100),
            panic_after: None,
            start: None,
        },
        9,
    );
    // Demand batches faster than they are produced.
    let mut got = 0;
    for _ in 0..5 {
        if prefetcher.next_timeout(Duration::from_secs(10)).is_ok() {
            got += 1;
        }
    }
    assert_eq!(got, 5, "every request eventually served");
}

#[test]
fn prefetcher_shutdown_under_backpressure_is_clean() {
    // Producers blocked on a full buffer must notice shutdown.
    let dataset = Arc::new(gaussian_mixture(4, 8, 64, 0.3, 1));
    let prefetcher = Prefetcher::spawn(
        dataset,
        PrefetchConfig {
            batch_size: 8,
            threads: 3,
            capacity: 1,
            augment: Augment::standard(),
            slowdown: Duration::ZERO,
            panic_after: None,
            start: None,
        },
        9,
    );
    std::thread::sleep(Duration::from_millis(50)); // let the buffer fill
    drop(prefetcher); // must not hang
}

#[test]
fn autotuner_survives_a_pathological_throughput_oracle() {
    // A noisy, non-monotonic oracle: the tuner must terminate at a valid
    // learner count without oscillating forever.
    let chaotic = |m: usize| match m % 3 {
        0 => 900.0,
        1 => 1000.0,
        _ => 800.0,
    };
    let (m, obs) = tune_to_convergence(10.0, 8, chaotic);
    assert!((1..=8).contains(&m), "chose {m}, observations {obs:?}");
    assert!(obs.len() <= 10, "terminates promptly");
}

#[test]
fn zero_work_machine_stays_quiescent_under_polling() {
    let mut machine = Machine::new(MachineConfig::titan_x_server(1));
    assert!(machine.run_until_callback().is_none());
    assert!(machine.poll_completion().is_none());
    assert!(machine.is_quiescent());
}

#[test]
fn delay_only_streams_complete() {
    // Host stalls with no device work behind them still retire.
    let mut machine = Machine::new(MachineConfig::titan_x_server(1));
    let s = machine.create_stream(machine.device(0));
    for _ in 0..100 {
        machine.delay(s, SimDuration::from_micros(10), "stall");
    }
    machine.callback(s, 7);
    let done = machine.run();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].time.as_nanos(), 100 * 10_000);
}

#[test]
fn transient_collective_failure_is_retried_to_success() {
    // A failed all-reduce must be resubmitted (with backoff) and succeed
    // on the retry — not deadlock, and not silently drop the sync.
    let cfg = RobustSimConfig::new(
        SimConfig::crossbow(ModelProfile::resnet32(), 4, 2, 64),
        FaultPlan::none().transient_collective(2, 1),
    );
    let report = simulate_robust(&cfg);
    assert!(report.faults.sync_retries >= 1, "{:?}", report.faults);
    assert_eq!(report.faults.dropped_syncs, 0, "retry must succeed");
    assert_eq!(report.faults.injected.collective_faults, 1);
    assert!(report.throughput > 0.0);
}

#[test]
fn quarantine_shrinks_then_restores_the_sync_group() {
    // A 3x straggler window on GPU 0: its learners leave the all-reduce
    // group while it lags and rejoin once the window passes.
    let mut sim = SimConfig::crossbow(ModelProfile::resnet32(), 4, 1, 64);
    sim.iterations = 32;
    let horizon = simulate(&sim).total_time;
    let from = SimTime::ZERO + SimDuration::from_nanos(horizon.as_nanos() / 4);
    let until = SimTime::ZERO + SimDuration::from_nanos(horizon.as_nanos() / 2);
    let cfg = RobustSimConfig::new(sim, FaultPlan::none().straggler(0, from, until, 3.0));
    let report = simulate_robust(&cfg);
    assert!(report.faults.quarantines >= 1, "{:?}", report.faults);
    assert!(report.faults.rejoins >= 1, "{:?}", report.faults);
}

#[test]
fn host_crash_inside_a_quarantine_window_resumes_cleanly() {
    // Composed faults: the host dies while a straggler has the sync group
    // quarantined. The crashed report must stay consistent (the crash and
    // the quarantine both recorded), and a fresh process resuming past the
    // crash point — the straggler window still in its plan — must
    // quarantine, rejoin and finish, with no phantom crash recorded.
    let mut sim = SimConfig::crossbow(ModelProfile::resnet32(), 4, 1, 64);
    sim.iterations = 32;
    let horizon = simulate(&sim).total_time;
    let from = SimTime::ZERO + SimDuration::from_nanos(horizon.as_nanos() / 4);
    let until = SimTime::ZERO + SimDuration::from_nanos(horizon.as_nanos() / 2);
    let crash_at = SimTime::ZERO + SimDuration::from_nanos(horizon.as_nanos() * 2 / 5);

    let crashed = simulate_robust(&RobustSimConfig::new(
        sim.clone(),
        FaultPlan::none()
            .straggler(0, from, until, 3.0)
            .host_crash(crash_at),
    ));
    assert_eq!(crashed.faults.host_crashes, 1, "{:?}", crashed.faults);
    assert!(
        crashed.faults.quarantines >= 1,
        "the crash landed inside an active quarantine window: {:?}",
        crashed.faults
    );

    let resumed = simulate_robust(
        &RobustSimConfig::new(sim, FaultPlan::none().straggler(0, from, until, 3.0))
            .with_start_iter(16),
    );
    assert_eq!(resumed.faults.host_crashes, 0, "{:?}", resumed.faults);
    assert!(resumed.faults.quarantines >= 1, "{:?}", resumed.faults);
    assert!(resumed.faults.rejoins >= 1, "{:?}", resumed.faults);
    assert!(resumed.throughput > 0.0, "the resumed run makes progress");
}

#[test]
fn nan_loss_rolls_back_and_still_reaches_target() {
    // Poisoned losses mid-run: the divergence guard restores the last
    // checkpoint, restarts averaging and the session still converges.
    let robustness = RobustnessConfig {
        fault_plan: Some(FaultPlan::none()), // statistical half only
        inject_nan_at: Some(30),
        ..RobustnessConfig::default()
    };
    let config = SessionConfig::lenet_quick()
        .with_epochs(12)
        .with_target(0.9)
        .with_robustness(robustness);
    let report = Session::new(config).run().expect("run");
    assert!(report.curve.rollbacks >= 1, "rollback must have happened");
    assert!(
        report.curve.epochs_to_target.is_some(),
        "still reaches the target: final accuracy {}",
        report.curve.final_accuracy
    );
}

#[test]
fn eight_gpu_resnet32_session_survives_collective_failure_and_straggler() {
    // The issue's acceptance scenario: an 8-GPU ResNet-32 session with one
    // transient collective failure and one 2x straggler window completes
    // without deadlock, records at least one retry and one quarantine, and
    // stays within 2 accuracy points of the fault-free run at the same
    // seed.
    let base = SessionConfig::new(Benchmark::resnet32())
        .with_gpus(8)
        .with_learners_per_gpu(2)
        .with_batch(64)
        .with_epochs(4)
        .with_seed(11);

    let fault_free = Session::new(base.clone()).run().expect("run");

    // The plan needs sim-time coordinates; probe the fault-free horizon
    // the same way the engine builds its simulator configuration.
    let horizon = simulate(&SimConfig::crossbow(ModelProfile::resnet32(), 8, 2, 64)).total_time;
    let from = SimTime::ZERO + SimDuration::from_nanos(horizon.as_nanos() / 4);
    let until = SimTime::ZERO + SimDuration::from_nanos(horizon.as_nanos() / 2);
    let robustness = RobustnessConfig {
        fault_plan: Some(
            FaultPlan::none()
                .transient_collective(1, 1)
                .straggler(3, from, until, 2.0),
        ),
        ..RobustnessConfig::default()
    };
    let robust = Session::new(base.with_robustness(robustness))
        .run()
        .expect("run");

    let faults = robust.sim.faults;
    assert!(faults.sync_retries >= 1, "at least one retry: {faults:?}");
    assert!(
        faults.quarantines >= 1,
        "at least one quarantine: {faults:?}"
    );
    assert_eq!(faults.injected.collective_faults, 1);
    assert!(faults.injected.straggler_kernels > 0);
    assert!(robust.sim.throughput > 0.0, "no deadlock, forward progress");
    let gap = (robust.curve.final_accuracy - fault_free.curve.final_accuracy).abs();
    assert!(
        gap < 0.02,
        "faulty run within 2 points of fault-free: {} vs {}",
        robust.curve.final_accuracy,
        fault_free.curve.final_accuracy
    );
}
