//! Kill-and-resume: a run interrupted by a (simulated) host crash must
//! continue from its durable checkpoints and produce a `TrainingCurve`
//! bit-identical to an uninterrupted run under the same seed — including
//! crashes inside a τ-gated synchronisation phase, inside an epoch whose
//! learning rate just changed, and after a divergence rollback. Corrupt
//! checkpoints must be detected and skipped in favour of older valid ones.

use crossbow::checkpoint::{CheckpointStore, RetentionPolicy};
use crossbow::data::synth::gaussian_mixture;
use crossbow::data::Dataset;
use crossbow::nn::zoo::mlp;
use crossbow::nn::Network;
use crossbow::sync::{
    resume, train, CheckpointConfig, GuardConfig, LrSchedule, SSgd, SgdConfig, Sma, SmaConfig,
    TrainerConfig,
};
use crossbow::tensor::Rng;
use std::path::PathBuf;

fn setup() -> (Network, Dataset, Dataset) {
    let net = mlp(6, &[16], 4);
    let data = gaussian_mixture(4, 6, 480, 0.35, 7);
    let (train_set, test_set) = data.split_at(400).expect("split in range");
    (net, train_set, test_set)
}

/// A per-test scratch directory (removed on entry, best-effort on exit).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crossbow-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// With 400 training samples, batch 8 and k = 2 learners, one epoch is
// 400 / (8 * 2) = 25 synchronisation iterations. The crash points below
// are chosen relative to that.

#[test]
fn crash_inside_a_tau_sync_phase_resumes_bit_exactly() {
    let (net, train_set, test_set) = setup();
    let dir = scratch("tau");
    // τ = 4: corrections apply every 4th iteration, so the phase counter
    // is live state a checkpoint must carry.
    let fresh_algo = || {
        Sma::new(
            net.init_params(&mut Rng::new(3)),
            2,
            SmaConfig {
                tau: 4,
                ..SmaConfig::default()
            },
        )
    };
    let base = TrainerConfig::new(8, 4).with_seed(11);
    let mut algo = fresh_algo();
    let uninterrupted = train(&net, &train_set, &test_set, &mut algo, &base);

    // Checkpoints at 6, 12, 18, 24, 25 (epoch), 30; the crash at 31
    // leaves iteration 30 — mid-phase, 30 % 4 != 0 — as the newest.
    let checkpointed = || {
        base.clone()
            .with_checkpointing(CheckpointConfig::new(&dir).every(6))
    };
    let mut algo = fresh_algo();
    let crashed = train(
        &net,
        &train_set,
        &test_set,
        &mut algo,
        &checkpointed().with_crash_after(31),
    );
    assert_eq!(crashed.iterations, 31, "the crash cut the run short");

    let mut algo = fresh_algo();
    let resumed = resume(&net, &train_set, &test_set, &mut algo, &checkpointed())
        .expect("checkpoint directory readable");
    assert_eq!(
        resumed, uninterrupted,
        "resume across a τ phase must be bit-exact"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_around_an_lr_change_resumes_bit_exactly() {
    let (net, train_set, test_set) = setup();
    // The LR halves after epochs 2 and 4, triggering the §3.2 restart
    // (replicas re-seeded from the average model). Crash once *before*
    // the epoch-2 boundary (iteration 45: the resumed run must perform
    // the restart itself) and once *after* it (iteration 55: the restart
    // is part of the restored state).
    let schedule = || LrSchedule::StepDecay {
        base: 0.1,
        boundaries: vec![2, 4],
        factor: 0.5,
    };
    let base = TrainerConfig::new(8, 6)
        .with_seed(5)
        .with_schedule(schedule());
    let fresh_algo = || Sma::new(net.init_params(&mut Rng::new(3)), 2, SmaConfig::default());
    let mut algo = fresh_algo();
    let uninterrupted = train(&net, &train_set, &test_set, &mut algo, &base);

    for crash_at in [45u64, 55] {
        let dir = scratch(&format!("lr-{crash_at}"));
        let checkpointed = || {
            base.clone()
                .with_checkpointing(CheckpointConfig::new(&dir).every(10))
        };
        let mut algo = fresh_algo();
        let crashed = train(
            &net,
            &train_set,
            &test_set,
            &mut algo,
            &checkpointed().with_crash_after(crash_at),
        );
        assert_eq!(crashed.iterations, crash_at);

        let mut algo = fresh_algo();
        let resumed = resume(&net, &train_set, &test_set, &mut algo, &checkpointed())
            .expect("checkpoint directory readable");
        assert_eq!(
            resumed, uninterrupted,
            "resume around the LR change (crash at {crash_at}) must be bit-exact"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn ssgd_momentum_survives_resume() {
    let (net, train_set, test_set) = setup();
    let dir = scratch("ssgd");
    // S-SGD's live state is the single model plus the optimiser's
    // velocity buffer; losing the latter would silently change the
    // trajectory without failing any shape check.
    let fresh_algo = || {
        SSgd::new(
            net.init_params(&mut Rng::new(3)),
            2,
            SgdConfig::paper_default(),
        )
    };
    let base = TrainerConfig::new(8, 4).with_seed(21);
    let mut algo = fresh_algo();
    let uninterrupted = train(&net, &train_set, &test_set, &mut algo, &base);

    let checkpointed = || {
        base.clone()
            .with_checkpointing(CheckpointConfig::new(&dir).every(10))
    };
    let mut algo = fresh_algo();
    let crashed = train(
        &net,
        &train_set,
        &test_set,
        &mut algo,
        &checkpointed().with_crash_after(35),
    );
    assert!(crashed.epochs() < 4);

    let mut algo = fresh_algo();
    let resumed = resume(&net, &train_set, &test_set, &mut algo, &checkpointed())
        .expect("checkpoint directory readable");
    assert_eq!(resumed, uninterrupted, "S-SGD resume must restore momentum");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn divergence_guard_and_nan_injection_survive_resume() {
    let (net, train_set, test_set) = setup();
    let dir = scratch("guard");
    // A NaN is injected at attempt 20 and rolled back by the guard; the
    // crash lands after the rollback. The checkpoint carries both the
    // guard's snapshot and the attempt counter, so the resumed run (same
    // config, same hook) neither re-injects nor desynchronises.
    let base = TrainerConfig::new(8, 5)
        .with_seed(11)
        .with_guard(GuardConfig::default());
    let with_nan = |mut cfg: TrainerConfig| {
        cfg.inject_nan_at = Some(20);
        cfg
    };
    let fresh_algo = || Sma::new(net.init_params(&mut Rng::new(3)), 2, SmaConfig::default());
    let mut algo = fresh_algo();
    let uninterrupted = train(
        &net,
        &train_set,
        &test_set,
        &mut algo,
        &with_nan(base.clone()),
    );
    assert_eq!(uninterrupted.rollbacks, 1, "the injected NaN rolled back");

    let checkpointed =
        || with_nan(base.clone()).with_checkpointing(CheckpointConfig::new(&dir).every(10));
    let mut algo = fresh_algo();
    let crashed = train(
        &net,
        &train_set,
        &test_set,
        &mut algo,
        &checkpointed().with_crash_after(40),
    );
    assert_eq!(crashed.rollbacks, 1);

    let mut algo = fresh_algo();
    let resumed = resume(&net, &train_set, &test_set, &mut algo, &checkpointed())
        .expect("checkpoint directory readable");
    assert_eq!(resumed, uninterrupted, "guard state must survive resume");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoints_fall_back_to_the_newest_valid_one() {
    let (net, train_set, test_set) = setup();
    let dir = scratch("corrupt");
    let fresh_algo = || Sma::new(net.init_params(&mut Rng::new(3)), 2, SmaConfig::default());
    let base = TrainerConfig::new(8, 4).with_seed(11);
    let mut algo = fresh_algo();
    let uninterrupted = train(&net, &train_set, &test_set, &mut algo, &base);

    let checkpointed = || {
        base.clone()
            .with_checkpointing(CheckpointConfig::new(&dir).every(10))
    };
    let mut algo = fresh_algo();
    let _ = train(
        &net,
        &train_set,
        &test_set,
        &mut algo,
        &checkpointed().with_crash_after(40),
    );

    let store = CheckpointStore::open(&dir, RetentionPolicy::default()).unwrap();
    let files = store.list().unwrap();
    assert!(
        files.len() >= 3,
        "expected several checkpoints, got {files:?}"
    );

    // Bit-flip the middle of the newest checkpoint: the checksum catches
    // it and `load_latest` falls back to the previous file.
    let newest = files.last().unwrap().clone();
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&newest, &bytes).unwrap();
    let loaded = store.load_latest().unwrap().expect("older copies remain");
    assert_eq!(loaded.skipped, vec![newest.clone()]);
    assert!(loaded.state.iterations < 40);

    // Truncate the fallback too; detection must walk further back.
    let second = loaded.path.clone();
    let len = std::fs::metadata(&second).unwrap().len();
    let bytes = std::fs::read(&second).unwrap();
    std::fs::write(&second, &bytes[..len as usize / 3]).unwrap();
    let loaded = store.load_latest().unwrap().expect("older copies remain");
    assert_eq!(loaded.skipped, vec![newest, second]);

    // Resume replays from the older valid checkpoint and still lands on
    // the bit-identical curve.
    let mut algo = fresh_algo();
    let resumed = resume(&net, &train_set, &test_set, &mut algo, &checkpointed())
        .expect("checkpoint directory readable");
    assert_eq!(resumed, uninterrupted, "fallback resume must be bit-exact");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_fully_corrupt_store_starts_fresh_and_still_matches() {
    let (net, train_set, test_set) = setup();
    let dir = scratch("all-corrupt");
    let fresh_algo = || Sma::new(net.init_params(&mut Rng::new(3)), 2, SmaConfig::default());
    let base = TrainerConfig::new(8, 3).with_seed(11);
    let mut algo = fresh_algo();
    let uninterrupted = train(&net, &train_set, &test_set, &mut algo, &base);

    let checkpointed = || {
        base.clone()
            .with_checkpointing(CheckpointConfig::new(&dir).every(10))
    };
    let mut algo = fresh_algo();
    let _ = train(
        &net,
        &train_set,
        &test_set,
        &mut algo,
        &checkpointed().with_crash_after(30),
    );

    // Destroy every copy: resume must degrade to a fresh deterministic
    // run rather than crash or restore garbage.
    let store = CheckpointStore::open(&dir, RetentionPolicy::default()).unwrap();
    for path in store.list().unwrap() {
        std::fs::write(&path, b"not a checkpoint").unwrap();
    }
    let mut algo = fresh_algo();
    let resumed = resume(&net, &train_set, &test_set, &mut algo, &checkpointed())
        .expect("checkpoint directory readable");
    assert_eq!(resumed, uninterrupted);
    let _ = std::fs::remove_dir_all(&dir);
}
