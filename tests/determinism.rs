//! Reproducibility: every layer of the stack is a deterministic function
//! of its seed — datasets, initialisation, batch order, the simulator and
//! whole sessions.

use crossbow::benchmark::Benchmark;
use crossbow::data::synth::gaussian_mixture;
use crossbow::engine::{AlgorithmKind, RobustnessConfig, Session, SessionConfig};
use crossbow::exec_sim::{simulate, simulate_robust, RobustSimConfig, SimConfig};
use crossbow::gpu_sim::{FaultPlan, SimDuration};
use crossbow::nn::zoo::{mlp, resnet_small};
use crossbow::nn::ModelProfile;
use crossbow::sync::{train, Sma, SmaConfig, SyncAlgorithm, TrainerConfig};
use crossbow::tensor::{Rng, Shape, Tensor};

fn quick_session(seed: u64) -> SessionConfig {
    SessionConfig::new(Benchmark::lenet())
        .with_gpus(1)
        .with_learners_per_gpu(2)
        .with_epochs(3)
        .with_seed(seed)
}

#[test]
fn sessions_replay_bit_identically() {
    let a = Session::new(quick_session(5)).run().expect("run");
    let b = Session::new(quick_session(5)).run().expect("run");
    assert_eq!(a.curve.epoch_accuracy, b.curve.epoch_accuracy);
    assert_eq!(a.curve.iterations, b.curve.iterations);
    assert_eq!(a.sim.throughput, b.sim.throughput);
    assert_eq!(a.learners_per_gpu, b.learners_per_gpu);
}

#[test]
fn different_seeds_differ() {
    let a = Session::new(quick_session(5)).run().expect("run");
    let b = Session::new(quick_session(6)).run().expect("run");
    assert_ne!(
        a.curve.epoch_accuracy, b.curve.epoch_accuracy,
        "different seeds must explore differently"
    );
}

#[test]
fn simulator_runs_replay_bit_identically() {
    for kind in ["crossbow", "baseline"] {
        let cfg = match kind {
            "crossbow" => SimConfig::crossbow(ModelProfile::vgg16(), 4, 2, 256),
            _ => SimConfig::baseline(ModelProfile::vgg16(), 4, 256),
        };
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        assert_eq!(a.throughput, b.throughput, "{kind}");
        assert_eq!(a.total_time, b.total_time, "{kind}");
        assert_eq!(a.iteration_time, b.iteration_time, "{kind}");
    }
}

#[test]
fn fault_plans_are_pure_functions_of_seed() {
    let horizon = SimDuration::from_millis(500);
    let a = FaultPlan::from_seed(13, 8, horizon);
    let b = FaultPlan::from_seed(13, 8, horizon);
    assert_eq!(a, b, "same seed, same plan");
    assert!(!a.is_empty());
    let c = FaultPlan::from_seed(14, 8, horizon);
    assert_ne!(a, c, "different seeds must schedule different faults");
}

#[test]
fn robust_runs_replay_bit_identically_under_faults() {
    // Injected faults, retries, quarantines and rejoins are all part of
    // the deterministic event order: two runs of the same seeded plan
    // must agree on every counter and every measurement.
    let sim = SimConfig::crossbow(ModelProfile::resnet32(), 4, 2, 64);
    let horizon = SimDuration::from_nanos(simulate(&sim).total_time.as_nanos());
    let cfg = RobustSimConfig::new(sim, FaultPlan::from_seed(21, 4, horizon));
    let a = simulate_robust(&cfg);
    let b = simulate_robust(&cfg);
    assert_eq!(a.throughput, b.throughput);
    assert_eq!(a.total_time, b.total_time);
    assert_eq!(a.iteration_time, b.iteration_time);
    assert_eq!(a.faults, b.faults);
}

#[test]
fn robust_sessions_replay_bit_identically() {
    // The whole self-healing session — seed-derived fault plan, divergence
    // guard, rollback — is still a pure function of the seed.
    let config = || {
        let robustness = RobustnessConfig {
            inject_nan_at: Some(20),
            ..RobustnessConfig::default()
        };
        quick_session(31).with_robustness(robustness)
    };
    let a = Session::new(config()).run().expect("run");
    let b = Session::new(config()).run().expect("run");
    assert_eq!(a.curve.epoch_accuracy, b.curve.epoch_accuracy);
    assert_eq!(a.curve.rollbacks, b.curve.rollbacks);
    assert_eq!(a.sim.faults, b.sim.faults);
    assert_eq!(a.sim.throughput, b.sim.throughput);
}

#[test]
fn training_curves_survive_gradient_thread_count_changes() {
    // The learner pool distributes gradient work across threads and hands
    // the idle cores to `gemm_parallel`. Both are bit-deterministic, so a
    // curve must not depend on how many gradient threads computed it:
    // `threads = 1` leaves every core to the parallel GEMM while
    // `threads = k` splits them — the numbers have to match exactly.
    let net = mlp(6, &[16], 4);
    let data = gaussian_mixture(4, 6, 480, 0.35, 7);
    let (train_set, test_set) = data.split_at(400).expect("split in range");
    let run = |threads: usize| {
        let mut algo = Sma::new(net.init_params(&mut Rng::new(3)), 2, SmaConfig::default());
        let mut cfg = TrainerConfig::new(8, 3).with_seed(11);
        cfg.threads = threads;
        let curve = train(&net, &train_set, &test_set, &mut algo, &cfg);
        (curve, algo.consensus().to_vec())
    };
    let (curve1, z1) = run(1);
    let (curve2, z2) = run(2);
    assert_eq!(curve1.epoch_accuracy, curve2.epoch_accuracy);
    assert_eq!(curve1.epoch_loss, curve2.epoch_loss);
    assert_eq!(z1, z2, "consensus models must agree bit-for-bit");
}

#[test]
fn workspace_and_parallel_gemm_leave_gradients_bit_identical() {
    // Full matrix: {cold workspace, plan-pre-warmed workspace} x
    // {serial GEMM, parallel GEMM} — four training steps on a conv/residual
    // net must produce the same losses and gradients to the last bit.
    let net = resnet_small(1, 8, 4);
    let batch = 4;
    let mut rng = Rng::new(17);
    let params = net.init_params(&mut rng);
    let mut dims = vec![batch];
    dims.extend_from_slice(net.input_shape().dims());
    let images = Tensor::randn(Shape::new(&dims), 1.0, &mut rng);
    let labels: Vec<usize> = (0..batch).map(|i| i % 4).collect();
    let run = |prewarmed: bool, gemm_threads: usize| {
        let mut scratch = if prewarmed {
            net.scratch_with_plan(&net.plan(batch))
        } else {
            net.scratch()
        };
        scratch.set_parallelism(gemm_threads);
        let mut grad = vec![0.0f32; net.param_len()];
        let mut losses = Vec::new();
        for _ in 0..2 {
            let (loss, _) = net.loss_and_grad(&params, &images, &labels, &mut grad, &mut scratch);
            losses.push(loss);
        }
        (losses, grad)
    };
    let baseline = run(false, 1);
    for (prewarmed, threads) in [(false, 4), (true, 1), (true, 4)] {
        let other = run(prewarmed, threads);
        assert_eq!(
            baseline, other,
            "prewarmed={prewarmed} gemm_threads={threads} diverged"
        );
    }
}

#[test]
fn datasets_are_pure_functions_of_seed() {
    for bench in Benchmark::all() {
        let (tr1, te1) = bench.dataset(9);
        let (tr2, te2) = bench.dataset(9);
        assert_eq!(tr1.labels(), tr2.labels(), "{}", bench.name);
        assert_eq!(tr1.image(7), tr2.image(7), "{}", bench.name);
        assert_eq!(te1.labels(), te2.labels(), "{}", bench.name);
        assert_eq!(te2.image(0), te1.image(0), "{}", bench.name);
    }
}

#[test]
fn algorithms_share_identical_initial_models() {
    // §5.1: both systems are configured with the same model variable
    // initialisation. The session derives it from the seed, so two
    // algorithms at one seed must start identically — checked indirectly:
    // their first-epoch accuracy from the same init is equal when the
    // algorithm degenerates to the same update (single learner, tau 1).
    let sma = Session::new(quick_session(8).with_algorithm(AlgorithmKind::Sma { tau: 1 }))
        .train_statistics(1)
        .expect("run");
    let sma2 = Session::new(quick_session(8).with_algorithm(AlgorithmKind::Sma { tau: 1 }))
        .train_statistics(1)
        .expect("run");
    assert_eq!(sma.epoch_accuracy, sma2.epoch_accuracy);
}
