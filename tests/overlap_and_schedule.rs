//! Trace-level integration tests of the task engine's scheduling
//! semantics (paper §4.2–4.3, Figure 8).

use crossbow::exec_sim::{simulate_with_machine, SimConfig};
use crossbow::gpu_sim::TraceKind;
use crossbow::nn::ModelProfile;

fn crossbow_trace(gpus: usize, m: usize, tau: Option<usize>) -> crossbow::gpu_sim::Machine {
    let mut cfg = SimConfig::crossbow(ModelProfile::resnet32(), gpus, m, 64).with_trace();
    cfg.tau = tau;
    cfg.iterations = 10;
    cfg.warmup = 2;
    simulate_with_machine(&cfg).1
}

#[test]
fn figure8_sync_overlaps_next_iterations_learning() {
    let machine = crossbow_trace(2, 2, Some(1));
    let trace = machine.trace();
    assert!(
        trace.labels_overlap("allreduce", "learn"),
        "global sync must overlap learning tasks (Figure 8, point f)"
    );
    assert!(
        trace.labels_overlap("apply-average", "learn"),
        "average-model update overlaps learning too"
    );
}

#[test]
fn local_sync_waits_for_previous_global_sync() {
    // Figure 8, point d: a local sync of iteration N needs the average
    // model updated by iteration N-1's global sync on the same GPU.
    let machine = crossbow_trace(2, 1, Some(1));
    let trace = machine.trace();
    let applies: Vec<_> = trace.with_label(|l| l == "apply-average").collect();
    let locals: Vec<_> = trace.with_label(|l| l == "local-sync").collect();
    assert!(!applies.is_empty() && locals.len() >= 2);
    // For each device, the i-th apply must finish before the (i+1)-th
    // local sync starts.
    for device in 0..2 {
        let mut dev_applies: Vec<_> = applies
            .iter()
            .filter(|r| r.device.index() == device)
            .collect();
        let mut dev_locals: Vec<_> = locals
            .iter()
            .filter(|r| r.device.index() == device)
            .collect();
        dev_applies.sort_by_key(|r| r.start);
        dev_locals.sort_by_key(|r| r.start);
        for (apply, next_local) in dev_applies.iter().zip(dev_locals.iter().skip(1)) {
            assert!(
                next_local.start >= apply.end,
                "local sync at {} started before average update finished at {}",
                next_local.start,
                apply.end
            );
        }
    }
}

#[test]
fn tau_controls_collective_count() {
    let count_allreduce = |tau: Option<usize>| {
        let machine = crossbow_trace(2, 1, tau);
        machine
            .trace()
            .records()
            .iter()
            .filter(|r| r.kind == TraceKind::Collective)
            .count()
    };
    let every = count_allreduce(Some(1));
    let half = count_allreduce(Some(2));
    let never = count_allreduce(None);
    // 10 iterations, 2 participating streams per collective.
    assert_eq!(every, 10 * 2);
    assert_eq!(half, 5 * 2);
    assert_eq!(never, 0);
}

#[test]
fn learner_streams_on_one_gpu_overlap() {
    let machine = crossbow_trace(1, 2, Some(1));
    let trace = machine.trace();
    // Find two learn kernels on different streams of device 0 overlapping.
    let learns: Vec<_> = trace.with_label(|l| l == "learn").collect();
    let overlapping = learns
        .iter()
        .any(|a| learns.iter().any(|b| a.stream != b.stream && a.overlaps(b)));
    assert!(
        overlapping,
        "co-located learners must share the GPU in time"
    );
}

#[test]
fn baseline_serialises_iterations() {
    let mut cfg = SimConfig::baseline(ModelProfile::resnet32(), 2, 64).with_trace();
    cfg.iterations = 6;
    cfg.warmup = 1;
    let (_, machine) = simulate_with_machine(&cfg);
    let trace = machine.trace();
    assert!(
        !trace.labels_overlap("grad-allreduce", "learn"),
        "the baseline's barrier forbids sync/learn overlap"
    );
    // Collectives themselves never overlap one another.
    let collectives: Vec<_> = trace
        .records()
        .iter()
        .filter(|r| r.kind == TraceKind::Collective)
        .collect();
    for (i, a) in collectives.iter().enumerate() {
        for b in &collectives[i + 1..] {
            if a.stream == b.stream {
                assert!(!a.overlaps(b), "iterations must serialise");
            }
        }
    }
}

#[test]
fn input_copies_overlap_compute() {
    // §2.2/§4.5: DMA copies run on the copy engine concurrently with
    // kernels.
    let machine = crossbow_trace(1, 2, Some(1));
    assert!(
        machine.trace().labels_overlap("input", "learn"),
        "H2D input copies must hide behind compute"
    );
}

#[test]
fn more_gpus_lengthen_the_collective() {
    let collective_time = |gpus: usize| {
        let machine = crossbow_trace(gpus, 1, Some(1));
        let trace = machine.trace();
        let r = trace
            .records()
            .iter()
            .find(|r| r.kind == TraceKind::Collective)
            .expect("has collectives");
        r.duration()
    };
    assert!(
        collective_time(8) > collective_time(2),
        "ring all-reduce grows with participants"
    );
}
