//! Canary and shadow routing between snapshot versions.
//!
//! A model's traffic normally goes to its *primary* registry snapshot.
//! A **candidate** parameter set can be staged next to it in one of two
//! modes:
//!
//! * **Canary** — a fixed percentage of requests, chosen
//!   *deterministically by request id*, is answered by the candidate.
//!   A given id always routes the same way, so retries are stable and
//!   test runs are reproducible. Canary replies are flagged but carry
//!   the primary's version (the candidate has no version until
//!   promotion), so per-client version sequences stay monotone through
//!   a promotion or an abort.
//! * **Shadow** — every request is answered by the primary, and the
//!   candidate *also* runs on the same inputs; divergence (different
//!   argmax) and shadow latency are recorded without ever affecting a
//!   reply.
//!
//! `promote` publishes the candidate into the primary registry (the
//! next version), `abort` discards it; both are atomic with respect to
//! in-flight batches, which finish on whichever plan they already took.

use crossbow_nn::QuantizedModel;
use crossbow_serve::{ModelSnapshot, PublishError, SnapshotRegistry};
use std::sync::{Arc, Mutex};

/// How a staged candidate receives traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidateMode {
    /// Serve `percent`% of requests (by id) from the candidate.
    Canary {
        /// Percentage of traffic routed to the candidate (clamped 0–100).
        percent: u8,
    },
    /// Mirror every request to the candidate; replies always come from
    /// the primary.
    Shadow,
}

#[derive(Clone, Debug)]
struct Candidate {
    params: Arc<Vec<f32>>,
    /// Quantized serving form of the candidate (`None` = plain f32).
    quant: Option<Arc<QuantizedModel>>,
    /// Accuracy delta vs f32 measured at staging time, carried into the
    /// primary snapshot on promotion.
    accuracy_delta: Option<f32>,
    mode: CandidateMode,
}

/// One side of a batch's routing plan: what answers (or mirrors) the
/// candidate's share of traffic.
#[derive(Clone, Debug)]
pub(crate) struct CandidateRoute {
    pub params: Arc<Vec<f32>>,
    pub quant: Option<Arc<QuantizedModel>>,
    pub mode: CandidateMode,
}

/// A batch's routing plan, taken once per batch so every job in it sees
/// a consistent primary/candidate pair.
#[derive(Clone, Debug)]
pub(crate) struct RoutePlan {
    pub primary: Arc<ModelSnapshot>,
    pub candidate: Option<CandidateRoute>,
}

/// Primary registry plus an optional staged candidate.
#[derive(Debug)]
pub struct ModelRouter {
    primary: Arc<SnapshotRegistry>,
    candidate: Mutex<Option<Candidate>>,
}

impl ModelRouter {
    /// A router over an existing primary registry.
    pub fn new(primary: Arc<SnapshotRegistry>) -> Self {
        ModelRouter {
            primary,
            candidate: Mutex::new(None),
        }
    }

    /// The primary registry (live-publishable, e.g. by a trainer hook).
    pub fn primary(&self) -> &Arc<SnapshotRegistry> {
        &self.primary
    }

    /// Stages candidate parameters in the given mode, replacing any
    /// previously staged candidate.
    ///
    /// # Errors
    /// [`PublishError::ShapeMismatch`] when `params` does not fit the
    /// primary's spec.
    pub fn stage(&self, params: Vec<f32>, mode: CandidateMode) -> Result<(), PublishError> {
        let expected = self.primary.spec().param_len;
        if params.len() != expected {
            return Err(PublishError::ShapeMismatch {
                expected,
                got: params.len(),
            });
        }
        *self.candidate.lock().expect("router lock poisoned") = Some(Candidate {
            params: Arc::new(params),
            quant: None,
            accuracy_delta: None,
            mode,
        });
        Ok(())
    }

    /// Stages a quantized candidate — the staged-rollout path for a
    /// reduced-precision model: canary (or shadow) it against the f32
    /// primary, then promote or abort on the observed divergence. The
    /// accuracy delta measured at quantization time travels with the
    /// candidate into the primary snapshot on promotion.
    ///
    /// # Errors
    /// [`PublishError::ShapeMismatch`] when the model does not fit the
    /// primary's spec.
    pub fn stage_quantized(
        &self,
        quant: Arc<QuantizedModel>,
        accuracy_delta: Option<f32>,
        mode: CandidateMode,
    ) -> Result<(), PublishError> {
        let expected = self.primary.spec().param_len;
        if quant.params().len() != expected {
            return Err(PublishError::ShapeMismatch {
                expected,
                got: quant.params().len(),
            });
        }
        *self.candidate.lock().expect("router lock poisoned") = Some(Candidate {
            params: Arc::new(quant.params().to_vec()),
            quant: Some(quant),
            accuracy_delta,
            mode,
        });
        Ok(())
    }

    /// Promotes the staged candidate into the primary registry.
    ///
    /// Returns the new primary version, or `None` when nothing was
    /// staged. After promotion there is no candidate; all traffic goes
    /// to the (new) primary. A quantized candidate is published as a
    /// quantized primary, so its serving path (and precision label)
    /// survives promotion.
    pub fn promote(&self, iteration: u64) -> Option<u64> {
        let candidate = self
            .candidate
            .lock()
            .expect("router lock poisoned")
            .take()?;
        let version = match candidate.quant {
            Some(quant) => self
                .primary
                .publish_quantized(quant, iteration, candidate.accuracy_delta)
                .expect("staged candidate already validated against the spec"),
            None => self
                .primary
                .publish(candidate.params.as_ref().clone(), iteration)
                .expect("staged candidate already validated against the spec"),
        };
        Some(version)
    }

    /// Discards the staged candidate, if any. Returns whether one was
    /// staged.
    pub fn abort(&self) -> bool {
        self.candidate
            .lock()
            .expect("router lock poisoned")
            .take()
            .is_some()
    }

    /// True when a candidate is currently staged.
    pub fn has_candidate(&self) -> bool {
        self.candidate
            .lock()
            .expect("router lock poisoned")
            .is_some()
    }

    /// The routing plan for one batch, or `None` before the first
    /// primary publication (candidates never serve a model that has no
    /// primary — there would be no baseline to diverge from).
    pub(crate) fn plan(&self) -> Option<RoutePlan> {
        let primary = self.primary.current()?;
        let candidate = self
            .candidate
            .lock()
            .expect("router lock poisoned")
            .as_ref()
            .map(|c| CandidateRoute {
                params: Arc::clone(&c.params),
                quant: c.quant.as_ref().map(Arc::clone),
                mode: c.mode,
            });
        Some(RoutePlan { primary, candidate })
    }
}

/// Whether request `id` routes to a canary at `percent`% traffic.
///
/// SplitMix64 over the id: uniform, stateless and stable — the same id
/// always lands on the same side of the split, on every worker.
pub fn routes_to_canary(id: u64, percent: u8) -> bool {
    let mut z = id.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % 100) < u64::from(percent.min(100))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbow_serve::ModelSpec;

    fn registry(n: usize) -> Arc<SnapshotRegistry> {
        Arc::new(SnapshotRegistry::new(ModelSpec {
            input_shape: vec![n],
            classes: 2,
            param_len: n,
        }))
    }

    #[test]
    fn canary_split_is_deterministic_and_roughly_fractional() {
        let hits: usize = (0..10_000).filter(|&id| routes_to_canary(id, 20)).count();
        assert!((1500..2500).contains(&hits), "≈20% of ids: {hits}");
        for id in [0u64, 1, 42, 9999] {
            assert_eq!(routes_to_canary(id, 20), routes_to_canary(id, 20));
        }
        assert!(!routes_to_canary(123, 0), "0% routes nothing");
        assert!(routes_to_canary(123, 100), "100% routes everything");
    }

    #[test]
    fn staging_validates_against_the_primary_spec() {
        let router = ModelRouter::new(registry(3));
        assert!(router.stage(vec![0.0; 4], CandidateMode::Shadow).is_err());
        assert!(!router.has_candidate());
        router
            .stage(vec![0.5; 3], CandidateMode::Canary { percent: 25 })
            .unwrap();
        assert!(router.has_candidate());
    }

    #[test]
    fn plan_requires_a_primary() {
        let router = ModelRouter::new(registry(2));
        router.stage(vec![0.0; 2], CandidateMode::Shadow).unwrap();
        assert!(router.plan().is_none(), "no baseline, no plan");
        router.primary().publish(vec![1.0; 2], 1).unwrap();
        let plan = router.plan().unwrap();
        assert_eq!(plan.primary.version, 1);
        assert!(plan.candidate.is_some());
    }

    #[test]
    fn promote_publishes_the_candidate_as_the_next_version() {
        let router = ModelRouter::new(registry(2));
        router.primary().publish(vec![1.0; 2], 1).unwrap();
        router
            .stage(vec![2.0; 2], CandidateMode::Canary { percent: 50 })
            .unwrap();
        assert_eq!(router.promote(7), Some(2));
        assert!(!router.has_candidate());
        let current = router.primary().current().unwrap();
        assert_eq!(current.params, vec![2.0; 2]);
        assert_eq!(current.iteration, 7);
        assert_eq!(router.promote(8), None, "nothing left to promote");
    }

    #[test]
    fn a_quantized_candidate_promotes_to_a_quantized_primary() {
        use crossbow_nn::zoo::mlp;
        use crossbow_tensor::{Precision, Rng};
        let net = mlp(4, &[6], 3);
        let registry = Arc::new(SnapshotRegistry::new(ModelSpec::of(&net)));
        let router = ModelRouter::new(Arc::clone(&registry));
        let params = net.init_params(&mut Rng::new(3));
        registry.publish(params.clone(), 1).unwrap();

        let model = Arc::new(net.quantize(&params, Precision::Int8));
        router
            .stage_quantized(
                Arc::clone(&model),
                Some(-0.02),
                CandidateMode::Canary { percent: 30 },
            )
            .unwrap();
        let plan = router.plan().unwrap();
        let route = plan.candidate.as_ref().unwrap();
        assert!(route.quant.is_some(), "candidate carries the quant model");
        assert_eq!(route.params.as_slice(), model.params());

        assert_eq!(router.promote(9), Some(2));
        let current = registry.current().unwrap();
        assert_eq!(current.precision, Precision::Int8);
        assert_eq!(current.accuracy_delta, Some(-0.02));
        assert!(current.quant.is_some(), "promotion keeps the quant path");
        assert_eq!(current.params.as_slice(), model.params());
    }

    #[test]
    fn a_mis_sized_quantized_candidate_is_refused() {
        use crossbow_nn::zoo::mlp;
        use crossbow_tensor::{Precision, Rng};
        let net = mlp(4, &[6], 3);
        let router = ModelRouter::new(registry(net.param_len() + 1));
        let params = net.init_params(&mut Rng::new(4));
        let model = Arc::new(net.quantize(&params, Precision::Bf16));
        assert!(router
            .stage_quantized(model, None, CandidateMode::Shadow)
            .is_err());
        assert!(!router.has_candidate());
    }

    #[test]
    fn abort_discards_without_touching_the_primary() {
        let router = ModelRouter::new(registry(2));
        router.primary().publish(vec![1.0; 2], 1).unwrap();
        router
            .stage(vec![9.0; 2], CandidateMode::Canary { percent: 50 })
            .unwrap();
        assert!(router.abort());
        assert!(!router.abort(), "already gone");
        assert_eq!(router.primary().version(), 1);
        assert_eq!(router.primary().current().unwrap().params, vec![1.0; 2]);
    }
}
