//! The Algorithm-2-style serving autoscaler.
//!
//! The paper's tuner probes training throughput and adds or removes
//! learners when the trend justifies it. The serving analogue probes
//! each pool's tail latency and queue backlog over a fixed interval and
//! grows or shrinks the pool's worker target:
//!
//! * **grow** when interval p99 exceeds the SLO, or the queue's
//!   high-water mark crossed its threshold — the pool is falling
//!   behind;
//! * **shrink** when p99 sits below `shrink_margin × SLO` *and* the
//!   queue stayed calm (high-water well below the grow threshold) —
//!   headroom the pool does not need;
//! * otherwise **hold**.
//!
//! Hysteresis comes from three places: the grow and shrink conditions
//! do not share a boundary (the dead band between `shrink_margin × SLO`
//! and the SLO itself holds steady), a `cooldown_ticks` refractory
//! period follows every change so one burst cannot thrash the pool, and
//! an interval with no samples never shrinks (silence is not evidence
//! of headroom — the pool may be wedged, not idle).
//!
//! This module is pure decision logic over an [`Observation`]; the
//! fleet applies decisions (spawning and retiring workers) and records
//! them as [`ScaleDecision`]s, `fleet.*` metrics and `autoscale` spans.

use std::time::Duration;

/// Autoscaler parameters for one fleet.
#[derive(Clone, Debug)]
pub struct AutoscalerConfig {
    /// The tail-latency objective: grow when interval p99 exceeds it.
    pub slo_p99: Duration,
    /// Grow when the interval's queue high-water mark reaches this.
    pub queue_high_water: u64,
    /// Shrink only when p99 < `shrink_margin × slo_p99` (0–1); the gap
    /// up to the SLO is the hysteresis dead band.
    pub shrink_margin: f64,
    /// Pool floor; never shrinks below (and at least 1, so a queue
    /// always has a worker to drain it).
    pub min_workers: usize,
    /// Pool ceiling; never grows above.
    pub max_workers: usize,
    /// Ticks to hold after any change before changing again.
    pub cooldown_ticks: u64,
    /// Background probe interval; `None` means manual
    /// [`Fleet::tick`](crate::Fleet::tick) only (deterministic tests).
    pub interval: Option<Duration>,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            slo_p99: Duration::from_millis(50),
            queue_high_water: 16,
            shrink_margin: 0.25,
            min_workers: 1,
            max_workers: 8,
            cooldown_ticks: 2,
            interval: None,
        }
    }
}

/// What one pool looked like over the last probe interval.
#[derive(Clone, Copy, Debug)]
pub struct Observation {
    /// Interval p99 request latency, `None` when nothing completed.
    pub p99: Option<Duration>,
    /// Deepest queue backlog seen during the interval.
    pub queue_high_water: u64,
    /// Current worker target.
    pub workers: usize,
    /// Ticks since this pool last changed size (`u64::MAX` = never).
    pub ticks_since_change: u64,
}

/// Why the autoscaler moved a pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleReason {
    /// Interval p99 exceeded the SLO.
    LatencyAboveSlo,
    /// The queue's high-water mark crossed its threshold.
    QueueBacklog,
    /// Latency and backlog both showed sustained headroom.
    Headroom,
}

impl ScaleReason {
    /// Stable lowercase name, used in reports and span labels.
    pub fn name(self) -> &'static str {
        match self {
            ScaleReason::LatencyAboveSlo => "latency-above-slo",
            ScaleReason::QueueBacklog => "queue-backlog",
            ScaleReason::Headroom => "headroom",
        }
    }
}

/// One applied resize, as kept in the fleet's decision history.
#[derive(Clone, Debug)]
pub struct ScaleDecision {
    /// The pool that moved.
    pub model: String,
    /// Probe tick (monotone per fleet) at which it moved.
    pub tick: u64,
    /// Worker target before.
    pub from: usize,
    /// Worker target after.
    pub to: usize,
    /// Interval p99 that informed the decision (zero when no samples).
    pub p99: Duration,
    /// Interval queue high-water mark that informed the decision.
    pub queue_high_water: u64,
    /// Why.
    pub reason: ScaleReason,
}

impl std::fmt::Display for ScaleDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tick {}: {} {} -> {} workers ({}, p99 {:?}, queue hw {})",
            self.tick,
            self.model,
            self.from,
            self.to,
            self.reason.name(),
            self.p99,
            self.queue_high_water,
        )
    }
}

/// Decides a pool's next worker target, or `None` to hold.
pub fn decide(config: &AutoscalerConfig, obs: &Observation) -> Option<(usize, ScaleReason)> {
    if obs.ticks_since_change < config.cooldown_ticks {
        return None;
    }
    let over_slo = obs.p99.is_some_and(|p99| p99 > config.slo_p99);
    let backlog = obs.queue_high_water >= config.queue_high_water.max(1);
    if (over_slo || backlog) && obs.workers < config.max_workers {
        let reason = if backlog {
            ScaleReason::QueueBacklog
        } else {
            ScaleReason::LatencyAboveSlo
        };
        return Some((obs.workers + 1, reason));
    }
    let calm_latency = obs
        .p99
        .is_some_and(|p99| p99.as_secs_f64() < config.slo_p99.as_secs_f64() * config.shrink_margin);
    // A transient depth of 1 is just a request being admitted; "calm"
    // means well below the grow threshold, not literally empty.
    let calm_queue = obs.queue_high_water <= config.queue_high_water / 4;
    if calm_latency && calm_queue && obs.workers > config.min_workers.max(1) {
        return Some((obs.workers - 1, ScaleReason::Headroom));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AutoscalerConfig {
        AutoscalerConfig {
            slo_p99: Duration::from_millis(100),
            queue_high_water: 8,
            shrink_margin: 0.25,
            min_workers: 1,
            max_workers: 4,
            cooldown_ticks: 2,
            interval: None,
        }
    }

    fn obs(p99_ms: Option<u64>, hw: u64, workers: usize, since: u64) -> Observation {
        Observation {
            p99: p99_ms.map(Duration::from_millis),
            queue_high_water: hw,
            workers,
            ticks_since_change: since,
        }
    }

    #[test]
    fn grows_on_slo_violation_and_on_backlog() {
        let c = config();
        assert_eq!(
            decide(&c, &obs(Some(150), 0, 1, 10)),
            Some((2, ScaleReason::LatencyAboveSlo))
        );
        assert_eq!(
            decide(&c, &obs(Some(10), 20, 2, 10)),
            Some((3, ScaleReason::QueueBacklog))
        );
    }

    #[test]
    fn shrinks_only_on_sustained_headroom() {
        let c = config();
        assert_eq!(
            decide(&c, &obs(Some(10), 0, 3, 10)),
            Some((2, ScaleReason::Headroom))
        );
        // In the dead band (above margin, below SLO): hold.
        assert_eq!(decide(&c, &obs(Some(60), 0, 3, 10)), None);
        // Calm latency but a nonzero backlog: hold.
        assert_eq!(decide(&c, &obs(Some(10), 3, 3, 10)), None);
        // No samples is not evidence of headroom: hold.
        assert_eq!(decide(&c, &obs(None, 0, 3, 10)), None);
    }

    #[test]
    fn respects_bounds_and_cooldown() {
        let c = config();
        assert_eq!(decide(&c, &obs(Some(500), 99, 4, 10)), None, "at ceiling");
        assert_eq!(decide(&c, &obs(Some(1), 0, 1, 10)), None, "at floor");
        assert_eq!(decide(&c, &obs(Some(500), 99, 1, 1)), None, "cooling down");
        assert_eq!(
            decide(&c, &obs(Some(500), 99, 1, 2)),
            Some((2, ScaleReason::QueueBacklog)),
            "cooldown elapsed"
        );
    }
}
