//! The fleet: named model pools, elastic workers, work stealing and the
//! autoscaler loop.
//!
//! A [`Fleet`] owns one [`SloQueue`] and one elastic worker pool per
//! registered model. Workers serve their *home* queue first; when it is
//! empty and work stealing is on, they take batches from peer queues
//! whose [`ModelSpec`] matches, serving the
//! stolen work against the *owning* model's router (the spec contract
//! makes the forward pass shape-safe; the parameters are always the
//! owner's). Pool sizes move: each pool has a worker *target*; the
//! autoscaler raises it (spawning threads) or lowers it (workers retire
//! themselves at a safe point) based on interval tail latency and queue
//! backlog — the serving analogue of the paper's Algorithm 2.
//!
//! Shutdown reuses the serving drain discipline: admission closes,
//! every queued request is answered (predictions for what drains, a
//! typed error for nothing), workers join, and per-model stats merge
//! into a [`FleetReport`].

use crate::autoscaler::{decide, AutoscalerConfig, Observation, ScaleDecision};
use crate::queue::{Admission, SloQueue};
use crate::report::{FleetReport, ModelReport};
use crate::request::{FleetError, FleetJob, FleetPrediction, FleetTicket, SloClass};
use crate::router::{routes_to_canary, CandidateMode, ModelRouter};
use crossbow_nn::{Network, QuantizedModel, Scratch};
use crossbow_serve::{BatchConfig, ModelSpec, SnapshotRegistry};
use crossbow_telemetry::{
    Counter, Gauge, Histogram, HistogramCell, SpanKind, Telemetry, HOST_DEVICE,
};
use crossbow_tensor::{Shape, Tensor};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often a parked worker re-checks for work and retirement.
const POLL: Duration = Duration::from_millis(10);

/// Fleet-wide parameters.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Micro-batching parameters; `queue_depth` bounds each model's
    /// admission queue.
    pub batch: BatchConfig,
    /// Worker threads each pool starts with.
    pub initial_workers: usize,
    /// Whether idle workers take batches from spec-compatible peers.
    pub work_stealing: bool,
    /// Load-testing knob: sleep this long inside every forward pass so
    /// overload, shedding and scaling can be exercised deterministically
    /// with tiny models (`None` = off).
    pub synthetic_delay: Option<Duration>,
    /// Autoscaler; `None` pins every pool at `initial_workers`.
    pub autoscaler: Option<AutoscalerConfig>,
    /// Tracing + metrics sink; `None` keeps metrics on a private
    /// registry and drops spans.
    pub telemetry: Option<Telemetry>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            batch: BatchConfig::default(),
            initial_workers: 1,
            work_stealing: true,
            synthetic_delay: None,
            autoscaler: None,
            telemetry: None,
        }
    }
}

/// One model's pool: routing, queue, elastic worker state and shared
/// instruments.
struct ModelRuntime {
    name: String,
    net: Arc<Network>,
    router: ModelRouter,
    queue: SloQueue,
    /// Desired worker count; the scaler writes, workers read.
    target: AtomicUsize,
    /// Workers currently running; retirement decrements via CAS.
    live: AtomicUsize,
    /// Ticks since this pool last changed size (cooldown clock).
    ticks_since_change: AtomicU64,
    /// Interval latency window; the scaler takes it each tick.
    window_hist: Mutex<Histogram>,
    /// Interval queue high-water mark; the scaler swaps it to 0.
    window_queue_hw: AtomicU64,
    completed: Arc<Counter>,
    shed: Arc<Counter>,
    rejected: Arc<Counter>,
    no_model: Arc<Counter>,
    batches: Arc<Counter>,
    stolen: Arc<Counter>,
    canary_served: Arc<Counter>,
    shadow_divergence: Arc<Counter>,
    workers_gauge: Arc<Gauge>,
    queue_gauge: Arc<Gauge>,
    latency: Arc<HistogramCell>,
    shadow_latency: Arc<HistogramCell>,
    min_version: AtomicU64,
    max_version: AtomicU64,
}

impl ModelRuntime {
    fn sample_queue_depth(&self) {
        let depth = self.queue.len() as u64;
        self.queue_gauge.set(depth);
        self.window_queue_hw.fetch_max(depth, Ordering::Relaxed);
    }

    fn observe_version(&self, version: u64) {
        self.min_version.fetch_min(version, Ordering::Relaxed);
        self.max_version.fetch_max(version, Ordering::Relaxed);
    }

    fn observe_latency(&self, latency: Duration) {
        self.latency.record(latency);
        self.window_hist
            .lock()
            .expect("window lock poisoned")
            .record(latency);
    }
}

struct Inner {
    models: Vec<Arc<ModelRuntime>>,
    by_name: HashMap<String, usize>,
    /// Per model: indices of spec-compatible peers, in steal order.
    peers: Vec<Vec<usize>>,
    config: FleetConfig,
    telemetry: Telemetry,
    stopping: AtomicBool,
    next_request_id: AtomicU64,
    next_worker_id: AtomicU64,
    handles: Mutex<Vec<JoinHandle<()>>>,
    decisions: Mutex<Vec<ScaleDecision>>,
    ticks: AtomicU64,
    scale_up: Arc<Counter>,
    scale_down: Arc<Counter>,
}

/// A submission handle; clone one per caller thread.
#[derive(Clone)]
pub struct FleetClient {
    inner: Arc<Inner>,
}

impl FleetClient {
    /// Submits one request to the named model without blocking for the
    /// answer.
    ///
    /// `deadline` is relative to now; the reply's `met_deadline` records
    /// whether it was honoured. Admission may shed a queued
    /// strictly-lower-class request to make room (that request is
    /// answered [`FleetError::Shed`]).
    ///
    /// # Errors
    /// [`FleetError::UnknownModel`], [`FleetError::ShuttingDown`],
    /// [`FleetError::BadRequest`] on a shape mismatch, or
    /// [`FleetError::Overloaded`] when the queue is full and nothing in
    /// it is strictly lower-class.
    pub fn submit(
        &self,
        model: &str,
        input: Vec<f32>,
        class: SloClass,
        deadline: Duration,
    ) -> Result<FleetTicket, FleetError> {
        let inner = &self.inner;
        let Some(&idx) = inner.by_name.get(model) else {
            return Err(FleetError::UnknownModel);
        };
        if inner.stopping.load(Ordering::Acquire) {
            return Err(FleetError::ShuttingDown);
        }
        let rt = &inner.models[idx];
        let expected = rt.router.primary().spec().sample_len();
        if input.len() != expected {
            return Err(FleetError::BadRequest {
                expected,
                got: input.len(),
            });
        }
        let (resp, ticket) = mpsc::channel();
        let now = Instant::now();
        let job = FleetJob {
            id: inner.next_request_id.fetch_add(1, Ordering::Relaxed),
            input,
            class,
            enqueued: now,
            deadline: now + deadline,
            resp,
        };
        match rt.queue.push(job) {
            Ok(admission) => {
                if let Admission::QueuedAfterShedding(_) = admission {
                    rt.shed.inc();
                }
                rt.sample_queue_depth();
                Ok(FleetTicket(ticket))
            }
            Err(e) => {
                if e == FleetError::Overloaded {
                    rt.rejected.inc();
                }
                Err(e)
            }
        }
    }

    /// Submits and blocks until the deadline for the answer.
    ///
    /// # Errors
    /// Everything [`FleetClient::submit`] returns, plus whatever the
    /// worker answers and [`FleetError::Deadline`] past the bound.
    pub fn call(
        &self,
        model: &str,
        input: Vec<f32>,
        class: SloClass,
        deadline: Duration,
    ) -> Result<FleetPrediction, FleetError> {
        // Wait past the SLO deadline (the reply still reports a missed
        // deadline via `met_deadline`) but never unboundedly.
        let wait = deadline.max(Duration::from_secs(1)).saturating_mul(64);
        self.submit(model, input, class, deadline)?
            .wait_deadline(wait)
    }

    /// The registered model names, in registration order.
    pub fn model_names(&self) -> Vec<String> {
        self.inner.models.iter().map(|m| m.name.clone()).collect()
    }
}

/// Registers models before the pools start.
pub struct FleetBuilder {
    config: FleetConfig,
    models: Vec<(String, Arc<Network>, Arc<SnapshotRegistry>)>,
}

impl FleetBuilder {
    /// Adds a model with a fresh, empty registry (publish via
    /// [`Fleet::registry`] or a router stage/promote).
    pub fn model(self, name: &str, net: Arc<Network>) -> Self {
        let registry = Arc::new(SnapshotRegistry::new(ModelSpec::of(&net)));
        self.model_with_registry(name, net, registry)
    }

    /// Adds a model backed by an existing registry — e.g. one a live
    /// trainer publishes into via its
    /// [`hook`](crossbow_serve::SnapshotRegistry::hook).
    ///
    /// # Panics
    /// Panics on a duplicate name or a registry whose spec does not
    /// match the network (both are configuration bugs, not load-time
    /// conditions).
    pub fn model_with_registry(
        mut self,
        name: &str,
        net: Arc<Network>,
        registry: Arc<SnapshotRegistry>,
    ) -> Self {
        assert!(
            self.models.iter().all(|(n, _, _)| n != name),
            "duplicate model name {name:?}"
        );
        assert_eq!(
            *registry.spec(),
            ModelSpec::of(&net),
            "registry spec must match the network for model {name:?}"
        );
        self.models.push((name.to_string(), net, registry));
        self
    }

    /// Starts the worker pools (and the autoscaler thread when its
    /// config has an interval).
    ///
    /// # Panics
    /// Panics when no model was registered.
    pub fn start(self) -> Fleet {
        assert!(!self.models.is_empty(), "a fleet needs at least one model");
        let telemetry = self
            .config
            .telemetry
            .clone()
            .unwrap_or_else(Telemetry::disabled);
        let initial = self.config.initial_workers.max(1);
        let mut models = Vec::with_capacity(self.models.len());
        let mut by_name = HashMap::new();
        for (i, (name, net, registry)) in self.models.into_iter().enumerate() {
            by_name.insert(name.clone(), i);
            let m = &telemetry.metrics;
            models.push(Arc::new(ModelRuntime {
                router: ModelRouter::new(registry),
                queue: SloQueue::new(self.config.batch.queue_depth),
                target: AtomicUsize::new(initial),
                live: AtomicUsize::new(0),
                ticks_since_change: AtomicU64::new(u64::MAX / 2),
                window_hist: Mutex::new(Histogram::new()),
                window_queue_hw: AtomicU64::new(0),
                completed: m.counter(format!("fleet.{name}.completed")),
                shed: m.counter(format!("fleet.{name}.shed")),
                rejected: m.counter(format!("fleet.{name}.rejected")),
                no_model: m.counter(format!("fleet.{name}.no_model")),
                batches: m.counter(format!("fleet.{name}.batches")),
                stolen: m.counter(format!("fleet.{name}.stolen")),
                canary_served: m.counter(format!("fleet.{name}.canary_served")),
                shadow_divergence: m.counter(format!("fleet.{name}.shadow_divergence")),
                workers_gauge: m.gauge(format!("fleet.{name}.workers")),
                queue_gauge: m.gauge(format!("fleet.{name}.queue_depth")),
                latency: m.histogram(format!("fleet.{name}.latency")),
                shadow_latency: m.histogram(format!("fleet.{name}.shadow_latency")),
                min_version: AtomicU64::new(u64::MAX),
                max_version: AtomicU64::new(0),
                name,
                net,
            }));
        }
        let peers = models
            .iter()
            .enumerate()
            .map(|(i, rt)| {
                (0..models.len())
                    .filter(|&j| {
                        j != i && models[j].router.primary().spec() == rt.router.primary().spec()
                    })
                    .collect()
            })
            .collect();
        let inner = Arc::new(Inner {
            models,
            by_name,
            peers,
            telemetry: telemetry.clone(),
            stopping: AtomicBool::new(false),
            next_request_id: AtomicU64::new(0),
            next_worker_id: AtomicU64::new(0),
            handles: Mutex::new(Vec::new()),
            decisions: Mutex::new(Vec::new()),
            ticks: AtomicU64::new(0),
            scale_up: telemetry.metrics.counter("fleet.scale_up"),
            scale_down: telemetry.metrics.counter("fleet.scale_down"),
            config: self.config,
        });
        for idx in 0..inner.models.len() {
            inner.models[idx].workers_gauge.set(initial as u64);
            for _ in 0..initial {
                spawn_worker(&inner, idx);
            }
        }
        let scaler = inner
            .config
            .autoscaler
            .as_ref()
            .and_then(|a| a.interval)
            .map(|interval| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name("fleet-autoscaler".into())
                    .spawn(move || {
                        while !inner.stopping.load(Ordering::Acquire) {
                            std::thread::sleep(interval);
                            run_tick(&inner);
                        }
                    })
                    .expect("spawn autoscaler")
            });
        Fleet {
            inner,
            scaler,
            started: Instant::now(),
        }
    }
}

/// A running multi-model serving fleet.
pub struct Fleet {
    inner: Arc<Inner>,
    scaler: Option<JoinHandle<()>>,
    started: Instant,
}

impl Fleet {
    /// A builder for a fleet with the given configuration.
    pub fn builder(config: FleetConfig) -> FleetBuilder {
        FleetBuilder {
            config,
            models: Vec::new(),
        }
    }

    /// A submission handle; clone freely across threads.
    pub fn client(&self) -> FleetClient {
        FleetClient {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The named model's primary registry (for publishing snapshots).
    pub fn registry(&self, model: &str) -> Option<Arc<SnapshotRegistry>> {
        let idx = *self.inner.by_name.get(model)?;
        Some(Arc::clone(self.inner.models[idx].router.primary()))
    }

    /// Stages candidate parameters on the named model.
    ///
    /// # Errors
    /// [`FleetError::UnknownModel`], or [`FleetError::BadRequest`] when
    /// the parameters do not fit the model's spec.
    pub fn stage_candidate(
        &self,
        model: &str,
        params: Vec<f32>,
        mode: CandidateMode,
    ) -> Result<(), FleetError> {
        let idx = *self
            .inner
            .by_name
            .get(model)
            .ok_or(FleetError::UnknownModel)?;
        let rt = &self.inner.models[idx];
        let expected = rt.router.primary().spec().param_len;
        let got = params.len();
        rt.router
            .stage(params, mode)
            .map_err(|_| FleetError::BadRequest { expected, got })
    }

    /// Stages a quantized candidate on the named model — how a
    /// reduced-precision build is rolled out: canary a slice of real
    /// traffic against the f32 primary (or shadow all of it), watch the
    /// divergence counters, then [`Fleet::promote`] or
    /// [`Fleet::abort_candidate`]. `accuracy_delta` is the offline
    /// quantization cost vs f32; it is published with the snapshot on
    /// promotion so the serve report carries it.
    ///
    /// # Errors
    /// [`FleetError::UnknownModel`], or [`FleetError::BadRequest`] when
    /// the model does not fit the spec.
    pub fn stage_quantized_candidate(
        &self,
        model: &str,
        quant: Arc<QuantizedModel>,
        accuracy_delta: Option<f32>,
        mode: CandidateMode,
    ) -> Result<(), FleetError> {
        let idx = *self
            .inner
            .by_name
            .get(model)
            .ok_or(FleetError::UnknownModel)?;
        let rt = &self.inner.models[idx];
        let expected = rt.router.primary().spec().param_len;
        let got = quant.params().len();
        rt.router
            .stage_quantized(quant, accuracy_delta, mode)
            .map_err(|_| FleetError::BadRequest { expected, got })
    }

    /// Promotes the named model's staged candidate into its primary
    /// registry; returns the new version, `None` when nothing is staged.
    ///
    /// # Errors
    /// [`FleetError::UnknownModel`].
    pub fn promote(&self, model: &str, iteration: u64) -> Result<Option<u64>, FleetError> {
        let idx = *self
            .inner
            .by_name
            .get(model)
            .ok_or(FleetError::UnknownModel)?;
        Ok(self.inner.models[idx].router.promote(iteration))
    }

    /// Discards the named model's staged candidate; returns whether one
    /// was staged.
    ///
    /// # Errors
    /// [`FleetError::UnknownModel`].
    pub fn abort_candidate(&self, model: &str) -> Result<bool, FleetError> {
        let idx = *self
            .inner
            .by_name
            .get(model)
            .ok_or(FleetError::UnknownModel)?;
        Ok(self.inner.models[idx].router.abort())
    }

    /// Runs one autoscaler probe over every pool, applying any resizes.
    /// Returns the decisions applied this tick (also appended to the
    /// report's history). With [`AutoscalerConfig::interval`] unset this
    /// is the only way pools move — deterministic for tests.
    pub fn tick(&self) -> Vec<ScaleDecision> {
        run_tick(&self.inner)
    }

    /// The current worker target of the named model's pool.
    pub fn workers(&self, model: &str) -> Option<usize> {
        let idx = *self.inner.by_name.get(model)?;
        Some(self.inner.models[idx].target.load(Ordering::Acquire))
    }

    /// Drains and stops the fleet: admission closes, every queued
    /// request is answered, workers and the scaler join, and per-model
    /// stats merge into the final [`FleetReport`].
    pub fn shutdown(self) -> FleetReport {
        self.inner.stopping.store(true, Ordering::Release);
        for rt in &self.inner.models {
            rt.queue.close();
        }
        if let Some(scaler) = self.scaler {
            scaler.join().expect("autoscaler panicked");
        }
        loop {
            let handles: Vec<JoinHandle<()>> =
                std::mem::take(&mut *self.inner.handles.lock().expect("handles lock poisoned"));
            if handles.is_empty() {
                break;
            }
            for h in handles {
                h.join().expect("fleet worker panicked");
            }
        }
        let wall = self.started.elapsed();
        let models = self
            .inner
            .models
            .iter()
            .map(|rt| {
                let min = rt.min_version.load(Ordering::Relaxed);
                ModelReport {
                    name: rt.name.clone(),
                    completed: rt.completed.get(),
                    shed: rt.shed.get(),
                    rejected: rt.rejected.get(),
                    no_model: rt.no_model.get(),
                    batches: rt.batches.get(),
                    stolen: rt.stolen.get(),
                    canary_served: rt.canary_served.get(),
                    shadow_divergence: rt.shadow_divergence.get(),
                    latency: rt.latency.snapshot().summary(),
                    max_queue_depth: rt.queue_gauge.max(),
                    final_workers: rt.target.load(Ordering::Acquire),
                    max_workers: rt.workers_gauge.max() as usize,
                    min_version: if min == u64::MAX { 0 } else { min },
                    max_version: rt.max_version.load(Ordering::Relaxed),
                }
            })
            .collect();
        FleetReport {
            models,
            decisions: self
                .inner
                .decisions
                .lock()
                .expect("decisions lock poisoned")
                .clone(),
            wall,
        }
    }
}

fn spawn_worker(inner: &Arc<Inner>, model: usize) {
    inner.models[model].live.fetch_add(1, Ordering::AcqRel);
    let id = inner.next_worker_id.fetch_add(1, Ordering::Relaxed);
    let worker_inner = Arc::clone(inner);
    let handle = std::thread::Builder::new()
        .name(format!("fleet-{}-{id}", inner.models[model].name))
        .spawn(move || worker_loop(&worker_inner, model, id as u32))
        .expect("spawn fleet worker");
    inner
        .handles
        .lock()
        .expect("handles lock poisoned")
        .push(handle);
}

fn worker_loop(inner: &Inner, home: usize, lane: u32) {
    let rt = &inner.models[home];
    let max_batch = inner.config.batch.max_batch.max(1);
    // Scratch per servable model, built lazily: stolen batches run the
    // owner's network, whose plan may differ from home's.
    let mut scratches: Vec<Option<Scratch>> = (0..inner.models.len()).map(|_| None).collect();
    let mut shard = inner.telemetry.recorder.shard();
    loop {
        let stopping = inner.stopping.load(Ordering::Acquire);
        // Retire at a safe point (between batches) when over target.
        // During the drain everyone stays: more hands empty queues
        // faster and shutdown joins every thread anyway.
        if !stopping {
            let live = rt.live.load(Ordering::Acquire);
            if live > rt.target.load(Ordering::Acquire)
                && rt
                    .live
                    .compare_exchange(live, live - 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return;
            }
        }
        let fetch_start = shard.now_ns();
        let (owner, first) = match rt.queue.try_pop() {
            Some(job) => (home, job),
            None => {
                let stolen = if inner.config.work_stealing && !stopping {
                    inner.peers[home]
                        .iter()
                        .find_map(|&p| inner.models[p].queue.try_pop().map(|job| (p, job)))
                } else {
                    None
                };
                match stolen {
                    Some((owner, job)) => {
                        inner.models[owner].stolen.inc();
                        (owner, job)
                    }
                    None => {
                        if stopping && rt.queue.is_empty() {
                            return;
                        }
                        match rt.queue.pop_timeout(POLL) {
                            Some(job) => (home, job),
                            None => continue,
                        }
                    }
                }
            }
        };
        let owner_rt = &inner.models[owner];
        let batch = collect_batch(owner_rt, first, max_batch, &inner.config, stopping);
        // Flush-time depth sample: the high-water mark must see backlog
        // that built up while this worker was busy.
        owner_rt.sample_queue_depth();
        shard.close(
            SpanKind::BatchFetch,
            "fleet-fetch",
            fetch_start,
            HOST_DEVICE,
            lane,
            None,
        );
        if scratches[owner].is_none() {
            let net = &owner_rt.net;
            scratches[owner] = Some(net.scratch_with_plan(&net.plan(max_batch)));
        }
        let scratch = scratches[owner].as_mut().expect("just built");
        owner_rt.batches.inc();
        let infer_start = shard.now_ns();
        serve_batch(owner_rt, batch, &inner.config, scratch);
        shard.close(
            SpanKind::Infer,
            "fleet-infer",
            infer_start,
            HOST_DEVICE,
            lane,
            None,
        );
    }
}

/// Coalesces `first` with more of the owner's queued jobs, mirroring the
/// serve batcher: flush on `max_batch` or when the oldest job has waited
/// `max_delay`; during a drain, take only what is already buffered.
fn collect_batch(
    owner: &ModelRuntime,
    first: FleetJob,
    max_batch: usize,
    config: &FleetConfig,
    stopping: bool,
) -> Vec<FleetJob> {
    let deadline = first.enqueued + config.batch.max_delay;
    let mut batch = Vec::with_capacity(max_batch);
    batch.push(first);
    while batch.len() < max_batch {
        if let Some(job) = owner.queue.try_pop() {
            batch.push(job);
            continue;
        }
        if stopping {
            break;
        }
        let Some(wait) = deadline.checked_duration_since(Instant::now()) else {
            break;
        };
        match owner.queue.pop_timeout(wait) {
            Some(job) => batch.push(job),
            None => break,
        }
    }
    batch
}

/// Runs one forward pass over `jobs`' inputs: the quantized path when
/// `quant` is set, the plain f32 eval path on `params` otherwise.
fn forward(
    net: &Network,
    params: &[f32],
    quant: Option<&QuantizedModel>,
    jobs: &[FleetJob],
    spec: &ModelSpec,
    config: &FleetConfig,
    scratch: &mut Scratch,
) -> Vec<usize> {
    let sample_len = spec.sample_len();
    let mut data = Vec::with_capacity(jobs.len() * sample_len);
    for job in jobs {
        data.extend_from_slice(&job.input);
    }
    let mut dims = vec![jobs.len()];
    dims.extend_from_slice(&spec.input_shape);
    if let Some(delay) = config.synthetic_delay {
        std::thread::sleep(delay);
    }
    let input = Tensor::from_vec(Shape::new(&dims), data);
    match quant {
        Some(model) => net.predict_quant(model, &input, scratch),
        None => net.predict(params, &input, scratch),
    }
}

fn serve_batch(
    rt: &ModelRuntime,
    batch: Vec<FleetJob>,
    config: &FleetConfig,
    scratch: &mut Scratch,
) {
    let Some(plan) = rt.router.plan() else {
        rt.no_model.add(batch.len() as u64);
        for job in batch {
            job.answer(Err(FleetError::NoModel));
        }
        return;
    };
    let spec = plan.primary.spec.clone();
    // Split the batch by route. Shadow keeps everything on the primary
    // (the candidate is mirrored, never answers); canary moves the
    // deterministic id-fraction to the candidate.
    let mut primary_jobs = Vec::with_capacity(batch.len());
    let mut canary_jobs = Vec::new();
    match plan.candidate.as_ref().map(|route| route.mode) {
        Some(CandidateMode::Canary { percent }) => {
            for job in batch {
                if routes_to_canary(job.id, percent) {
                    canary_jobs.push(job);
                } else {
                    primary_jobs.push(job);
                }
            }
        }
        _ => primary_jobs = batch,
    }
    let version = plan.primary.version;
    if !primary_jobs.is_empty() {
        let classes = forward(
            &rt.net,
            &plan.primary.params,
            plan.primary.quant.as_deref(),
            &primary_jobs,
            &spec,
            config,
            scratch,
        );
        if let Some(route) = plan
            .candidate
            .as_ref()
            .filter(|route| route.mode == CandidateMode::Shadow)
        {
            // Mirror the same inputs through the candidate and count
            // disagreements; replies below still come from the primary.
            let shadow_started = Instant::now();
            let shadow = forward(
                &rt.net,
                &route.params,
                route.quant.as_deref(),
                &primary_jobs,
                &spec,
                config,
                scratch,
            );
            rt.shadow_latency.record(shadow_started.elapsed());
            let diverged = classes.iter().zip(&shadow).filter(|(a, b)| a != b).count();
            rt.shadow_divergence.add(diverged as u64);
        }
        answer_all(rt, primary_jobs, classes, version, false);
    }
    if !canary_jobs.is_empty() {
        let route = plan
            .candidate
            .as_ref()
            .expect("canary jobs imply candidate");
        let classes = forward(
            &rt.net,
            &route.params,
            route.quant.as_deref(),
            &canary_jobs,
            &spec,
            config,
            scratch,
        );
        rt.canary_served.add(canary_jobs.len() as u64);
        answer_all(rt, canary_jobs, classes, version, true);
    }
}

fn answer_all(
    rt: &ModelRuntime,
    jobs: Vec<FleetJob>,
    classes: Vec<usize>,
    version: u64,
    canary: bool,
) {
    let answered = Instant::now();
    for (job, class) in jobs.into_iter().zip(classes) {
        let latency = answered.saturating_duration_since(job.enqueued);
        let met_deadline = answered <= job.deadline;
        rt.completed.inc();
        rt.observe_version(version);
        rt.observe_latency(latency);
        job.answer(Ok(FleetPrediction {
            class,
            version,
            latency,
            met_deadline,
            canary,
        }));
    }
}

fn run_tick(inner: &Arc<Inner>) -> Vec<ScaleDecision> {
    let Some(config) = inner.config.autoscaler.as_ref() else {
        return Vec::new();
    };
    let tick = inner.ticks.fetch_add(1, Ordering::Relaxed) + 1;
    let mut applied = Vec::new();
    let mut shard = inner.telemetry.recorder.shard();
    for (idx, rt) in inner.models.iter().enumerate() {
        let window = std::mem::take(&mut *rt.window_hist.lock().expect("window lock poisoned"));
        let queue_high_water = rt.window_queue_hw.swap(0, Ordering::Relaxed);
        let workers = rt.target.load(Ordering::Acquire);
        let obs = Observation {
            p99: window.quantile(0.99),
            queue_high_water,
            workers,
            ticks_since_change: rt.ticks_since_change.load(Ordering::Relaxed),
        };
        let Some((to, reason)) = decide(config, &obs) else {
            rt.ticks_since_change.fetch_add(1, Ordering::Relaxed);
            continue;
        };
        let span_start = shard.now_ns();
        rt.target.store(to, Ordering::Release);
        rt.ticks_since_change.store(0, Ordering::Relaxed);
        rt.workers_gauge.set(to as u64);
        if to > workers {
            inner.scale_up.inc();
            for _ in workers..to {
                spawn_worker(inner, idx);
            }
        } else {
            // Shrink is lazy: workers notice the lower target at their
            // next safe point and retire themselves.
            inner.scale_down.inc();
        }
        shard.close(
            SpanKind::Autoscale,
            reason.name(),
            span_start,
            HOST_DEVICE,
            idx as u32,
            Some(tick),
        );
        let decision = ScaleDecision {
            model: rt.name.clone(),
            tick,
            from: workers,
            to,
            p99: obs.p99.unwrap_or(Duration::ZERO),
            queue_high_water,
            reason,
        };
        applied.push(decision.clone());
        inner
            .decisions
            .lock()
            .expect("decisions lock poisoned")
            .push(decision);
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbow_nn::zoo::mlp;
    use crossbow_tensor::Rng;

    fn fleet_of(names: &[&str], config: FleetConfig) -> Fleet {
        let mut builder = Fleet::builder(config);
        for (i, name) in names.iter().enumerate() {
            let net = Arc::new(mlp(4, &[8], 3));
            let registry = Arc::new(SnapshotRegistry::new(ModelSpec::of(&net)));
            registry
                .publish(net.init_params(&mut Rng::new(i as u64 + 1)), 1)
                .unwrap();
            builder = builder.model_with_registry(name, net, registry);
        }
        builder.start()
    }

    #[test]
    fn serves_multiple_models_and_drains_cleanly() {
        let fleet = fleet_of(&["alpha", "beta"], FleetConfig::default());
        let client = fleet.client();
        for _ in 0..10 {
            for model in ["alpha", "beta"] {
                let p = client
                    .call(
                        model,
                        vec![0.3; 4],
                        SloClass::Standard,
                        Duration::from_secs(5),
                    )
                    .expect("served");
                assert_eq!(p.version, 1);
                assert!(p.met_deadline);
                assert!(!p.canary);
            }
        }
        let report = fleet.shutdown();
        assert_eq!(report.model("alpha").unwrap().completed, 10);
        assert_eq!(report.model("beta").unwrap().completed, 10);
        assert_eq!(report.total_shed(), 0);
        assert!(report.decisions.is_empty(), "no autoscaler configured");
    }

    #[test]
    fn unknown_model_and_bad_shapes_are_typed_refusals() {
        let fleet = fleet_of(&["only"], FleetConfig::default());
        let client = fleet.client();
        assert_eq!(
            client
                .submit(
                    "ghost",
                    vec![0.0; 4],
                    SloClass::Batch,
                    Duration::from_secs(1)
                )
                .err(),
            Some(FleetError::UnknownModel)
        );
        assert_eq!(
            client
                .submit(
                    "only",
                    vec![0.0; 7],
                    SloClass::Batch,
                    Duration::from_secs(1)
                )
                .err(),
            Some(FleetError::BadRequest {
                expected: 4,
                got: 7
            })
        );
        fleet.shutdown();
    }

    #[test]
    fn an_unpublished_model_answers_no_model() {
        let net = Arc::new(mlp(4, &[8], 3));
        let fleet = Fleet::builder(FleetConfig::default())
            .model("empty", net)
            .start();
        let client = fleet.client();
        assert_eq!(
            client.call(
                "empty",
                vec![0.0; 4],
                SloClass::Standard,
                Duration::from_secs(1)
            ),
            Err(FleetError::NoModel)
        );
        let report = fleet.shutdown();
        assert_eq!(report.model("empty").unwrap().no_model, 1);
    }

    #[test]
    fn idle_compatible_pools_steal_queued_batches() {
        let config = FleetConfig {
            batch: BatchConfig {
                max_batch: 1,
                max_delay: Duration::ZERO,
                queue_depth: 64,
            },
            initial_workers: 1,
            work_stealing: true,
            synthetic_delay: Some(Duration::from_millis(5)),
            ..FleetConfig::default()
        };
        let fleet = fleet_of(&["busy", "idle"], config);
        let client = fleet.client();
        let tickets: Vec<FleetTicket> = (0..24)
            .map(|_| {
                client
                    .submit(
                        "busy",
                        vec![0.1; 4],
                        SloClass::Standard,
                        Duration::from_secs(30),
                    )
                    .expect("admitted")
            })
            .collect();
        for t in tickets {
            t.wait().expect("served");
        }
        let report = fleet.shutdown();
        let busy = report.model("busy").unwrap();
        assert_eq!(busy.completed, 24, "every admitted request answered");
        assert!(
            busy.stolen > 0,
            "the idle pool must take some of the backlog"
        );
        assert_eq!(report.model("idle").unwrap().completed, 0);
    }

    #[test]
    fn stealing_respects_spec_compatibility() {
        let config = FleetConfig {
            work_stealing: true,
            ..FleetConfig::default()
        };
        let small = Arc::new(mlp(4, &[8], 3));
        let large = Arc::new(mlp(6, &[8], 3));
        let fleet = Fleet::builder(config)
            .model("small", small)
            .model("large", large)
            .start();
        // Incompatible specs: no peer edges either way.
        assert!(fleet.inner.peers.iter().all(Vec::is_empty));
        fleet.shutdown();
    }

    #[test]
    fn manual_ticks_scale_the_pool_both_ways() {
        let config = FleetConfig {
            batch: BatchConfig {
                max_batch: 4,
                max_delay: Duration::ZERO,
                queue_depth: 256,
            },
            initial_workers: 1,
            work_stealing: false,
            synthetic_delay: Some(Duration::from_millis(4)),
            autoscaler: Some(AutoscalerConfig {
                slo_p99: Duration::from_millis(10),
                queue_high_water: 4,
                shrink_margin: 0.9,
                min_workers: 1,
                max_workers: 3,
                cooldown_ticks: 0,
                interval: None,
            }),
            ..FleetConfig::default()
        };
        let fleet = fleet_of(&["scaled"], config);
        let client = fleet.client();
        // Flood: queue builds, latencies blow the 10ms SLO.
        let tickets: Vec<FleetTicket> = (0..64)
            .map(|_| {
                client
                    .submit(
                        "scaled",
                        vec![0.2; 4],
                        SloClass::Standard,
                        Duration::from_secs(30),
                    )
                    .expect("admitted")
            })
            .collect();
        for t in tickets {
            t.wait().expect("served");
        }
        let up = fleet.tick();
        assert_eq!(up.len(), 1, "overload grows the pool: {up:?}");
        assert!(up[0].to > up[0].from);
        assert_eq!(fleet.workers("scaled"), Some(2));
        // One idle-but-sampled interval: cheap requests, calm queue.
        for _ in 0..8 {
            client
                .call(
                    "scaled",
                    vec![0.2; 4],
                    SloClass::Standard,
                    Duration::from_secs(30),
                )
                .expect("served");
        }
        let down = fleet.tick();
        assert_eq!(down.len(), 1, "headroom shrinks the pool: {down:?}");
        assert!(down[0].to < down[0].from);
        assert_eq!(fleet.workers("scaled"), Some(1));
        // A silent interval holds: no samples is not headroom.
        assert!(fleet.tick().is_empty());
        let report = fleet.shutdown();
        assert_eq!(report.decisions.len(), 2);
        assert!(report.scaled_both_ways());
    }
}
