//! Multi-model, SLO-driven serving for the CROSSBOW reproduction.
//!
//! `crossbow-serve` runs one model behind one fixed pool; this crate is
//! what "millions of users" traffic lands on: many named models behind
//! one admission edge, each with its own pool, sharing capacity and
//! scaling themselves. Built entirely on std plus the in-repo serving
//! stack:
//!
//! * [`request`] — the admission vocabulary: [`SloClass`] priority
//!   lattice, per-request deadlines, goodput-aware replies;
//! * [`queue`] — a bounded queue ordered (class, deadline, FIFO) that
//!   sheds *strictly lower* classes under pressure and answers every
//!   evicted request with a typed error — never a silent drop;
//! * [`router`] — canary/shadow routing between snapshot versions: a
//!   deterministic-by-request-id fractional split to a staged
//!   candidate, or full mirroring with divergence counting, plus
//!   atomic promote/abort;
//! * [`autoscaler`] — the serving analogue of the paper's Algorithm 2:
//!   probe interval p99 and queue high-water marks, grow/shrink each
//!   pool with hysteresis and cooldown;
//! * [`fleet`] — the pools themselves: elastic workers, work stealing
//!   across spec-compatible models, graceful drain;
//! * [`loadgen`] + [`train_fleet`] — mixed-priority stream load
//!   generation (open and closed arrivals, per-class goodput) and the
//!   combined run where a live trainer publishes into one fleet model
//!   mid-load.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod autoscaler;
pub mod fleet;
pub mod loadgen;
pub mod queue;
pub mod report;
pub mod request;
pub mod router;
pub mod train_fleet;

pub use autoscaler::{decide, AutoscalerConfig, Observation, ScaleDecision, ScaleReason};
pub use fleet::{Fleet, FleetBuilder, FleetClient, FleetConfig};
pub use loadgen::{run_fleet_load, Arrival, FleetLoadReport, StreamReport, StreamSpec};
pub use queue::{Admission, SloQueue};
pub use report::{FleetReport, ModelReport};
pub use request::{FleetError, FleetPrediction, FleetTicket, SloClass};
pub use router::{routes_to_canary, CandidateMode, ModelRouter};
pub use train_fleet::{train_into_fleet, FleetTrainConfig, FleetTrainReport};
