//! Train-into-fleet: a live trainer publishing into one model of a
//! serving fleet, mid-load.
//!
//! The fleet analogue of `crossbow_serve::train_and_serve`: one named
//! model's registry is fed by a background trainer's
//! [`PublishHook`](crossbow_sync::PublishHook) while mixed-priority
//! load runs against the whole fleet. Hot swaps stay invisible except
//! as rising snapshot versions; the other models serve their static
//! snapshots undisturbed.

use crate::fleet::Fleet;
use crate::loadgen::{run_fleet_load, FleetLoadReport, StreamSpec};
use crate::report::FleetReport;
use crossbow_data::Dataset;
use crossbow_nn::Network;
use crossbow_sync::algorithm::SyncAlgorithm;
use crossbow_sync::{train, TrainerConfig, TrainingCurve};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A train-into-fleet run's parameters.
#[derive(Clone, Debug)]
pub struct FleetTrainConfig {
    /// The fleet model the trainer publishes into.
    pub live_model: String,
    /// The background training run.
    pub trainer: TrainerConfig,
    /// Publish the consensus model every this many applied iterations.
    pub publish_every: u64,
    /// The load streams to run in rounds until training finishes.
    pub load: Vec<StreamSpec>,
    /// Seed for request selection (varied per round).
    pub seed: u64,
}

/// What a train-into-fleet run produced.
#[derive(Clone, Debug)]
pub struct FleetTrainReport {
    /// The background trainer's curve.
    pub curve: TrainingCurve,
    /// The merged observation of every load round.
    pub load: FleetLoadReport,
    /// The fleet's own report.
    pub fleet: FleetReport,
}

/// Trains `algo` in a background thread, publishing its consensus model
/// into the live model's registry every `publish_every` iterations,
/// while the configured load streams run against the fleet in rounds
/// until the trainer finishes (with one final round guaranteed to run
/// entirely after the last publication). Request payloads are drawn
/// from `test_set`.
///
/// The initial consensus model is published before load starts, so no
/// request ever sees `NoModel`. Consumes and drains the fleet.
///
/// # Panics
/// Panics when the live model is not in the fleet or its spec does not
/// match `net`.
pub fn train_into_fleet<A: SyncAlgorithm + Send>(
    fleet: Fleet,
    net: &Arc<Network>,
    train_set: &Dataset,
    test_set: &Dataset,
    algo: &mut A,
    config: &FleetTrainConfig,
) -> FleetTrainReport {
    let registry = fleet
        .registry(&config.live_model)
        .expect("live model must be registered in the fleet");
    registry
        .publish(algo.consensus().to_vec(), 0)
        .expect("initial model fits its own network");
    let trainer_config = config
        .trainer
        .clone()
        .with_publish(registry.hook(config.publish_every));

    let sample_len = test_set.sample_len();
    let images = test_set.images_tensor();
    let inputs: Vec<Vec<f32>> = images
        .data()
        .chunks_exact(sample_len)
        .take(64)
        .map(<[f32]>::to_vec)
        .collect();

    let client = fleet.client();
    let done = AtomicBool::new(false);
    let (curve, load) = std::thread::scope(|scope| {
        let trainer = scope.spawn(|| {
            let curve = train(net, train_set, test_set, algo, &trainer_config);
            done.store(true, Ordering::Release);
            curve
        });
        let mut merged: Option<FleetLoadReport> = None;
        let mut round = 0u64;
        loop {
            // Sampled before the round: when true, this round runs
            // wholly after training, so the loop always ends with a
            // post-training round against the final model.
            let finished = done.load(Ordering::Acquire);
            let result = run_fleet_load(&client, &inputs, &config.load, config.seed ^ round);
            round += 1;
            merged = Some(match merged {
                None => result,
                Some(mut earlier) => {
                    earlier.wall += result.wall;
                    earlier.streams.extend(result.streams);
                    earlier
                }
            });
            if finished {
                break;
            }
        }
        let curve = trainer.join().expect("trainer thread panicked");
        (curve, merged.expect("at least one load round"))
    });
    let fleet = fleet.shutdown();
    FleetTrainReport { curve, load, fleet }
}
