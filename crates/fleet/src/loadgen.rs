//! Mixed-priority load generation against a fleet.
//!
//! A fleet load run is a set of concurrent *streams*, each pinned to
//! one (model, [`SloClass`]) pair with its own arrival mode, deadline
//! and request budget. Open streams pace arrivals at a fixed rate
//! regardless of completions (the model that exposes queueing collapse
//! under overload); closed streams issue call-after-reply, which gives
//! a per-stream happens-before chain — the served snapshot versions a
//! closed stream observes must be non-decreasing, even across a canary
//! promotion. Every stream reports *goodput* (replies that met their
//! deadline), not just throughput.

use crate::fleet::FleetClient;
use crate::request::{FleetError, FleetTicket, SloClass};
use crossbow_tensor::Rng;
use std::time::{Duration, Instant};

/// How long a stream waits for any single answer before giving up with
/// a counted failure; far above any sane service time, so one stuck
/// worker cannot hang the whole run.
const WAIT_LIMIT: Duration = Duration::from_secs(60);

/// A stream's arrival model.
#[derive(Clone, Copy, Debug)]
pub enum Arrival {
    /// Pace arrivals at `rps` per second, collecting answers at the end.
    Open {
        /// Target arrival rate, requests per second.
        rps: f64,
    },
    /// Issue each request only after the previous one completed.
    Closed,
}

/// One load stream: a (model, class) pair under a fixed arrival model.
#[derive(Clone, Debug)]
pub struct StreamSpec {
    /// Target model name.
    pub model: String,
    /// Service class of every request in this stream.
    pub class: SloClass,
    /// Arrival model.
    pub arrival: Arrival,
    /// Requests to issue.
    pub requests: usize,
    /// Relative deadline attached to every request.
    pub deadline: Duration,
}

/// What one stream observed.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Target model name.
    pub model: String,
    /// Service class.
    pub class: SloClass,
    /// Requests submitted (admitted or not).
    pub submitted: u64,
    /// Requests answered with a prediction.
    pub ok: u64,
    /// Answered predictions that met their deadline — the goodput.
    pub goodput: u64,
    /// Requests answered [`FleetError::Shed`] (admitted, then evicted).
    pub shed: u64,
    /// Requests refused at admission.
    pub rejected: u64,
    /// Requests that errored any other way.
    pub failed: u64,
    /// Predictions served by a canary candidate.
    pub canary: u64,
    /// Whether observed snapshot versions were non-decreasing. Closed
    /// streams check their happens-before chain (request `i+1` starts
    /// only after `i` completed); open streams report `true` vacuously —
    /// concurrent workers may answer their unordered completions against
    /// different snapshots.
    pub versions_monotonic: bool,
    /// Lowest snapshot version observed (`u64::MAX` when none).
    pub min_version: u64,
    /// Highest snapshot version observed (0 when none).
    pub max_version: u64,
}

impl StreamReport {
    fn new(model: &str, class: SloClass) -> Self {
        StreamReport {
            model: model.to_string(),
            class,
            submitted: 0,
            ok: 0,
            goodput: 0,
            shed: 0,
            rejected: 0,
            failed: 0,
            canary: 0,
            versions_monotonic: true,
            min_version: u64::MAX,
            max_version: 0,
        }
    }

    fn observe(
        &mut self,
        outcome: Result<crate::request::FleetPrediction, FleetError>,
        last_version: &mut u64,
        ordered: bool,
    ) {
        self.submitted += 1;
        match outcome {
            Ok(p) => {
                self.ok += 1;
                if p.met_deadline {
                    self.goodput += 1;
                }
                if p.canary {
                    self.canary += 1;
                }
                self.min_version = self.min_version.min(p.version);
                self.max_version = self.max_version.max(p.version);
                if ordered && p.version < *last_version {
                    self.versions_monotonic = false;
                }
                *last_version = (*last_version).max(p.version);
            }
            Err(FleetError::Shed) => self.shed += 1,
            Err(FleetError::Overloaded) => self.rejected += 1,
            Err(_) => self.failed += 1,
        }
    }
}

/// The merged observation of every stream in a run.
#[derive(Clone, Debug)]
pub struct FleetLoadReport {
    /// Per-stream reports, in spec order.
    pub streams: Vec<StreamReport>,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
}

impl FleetLoadReport {
    /// Total goodput for a (model, class) pair across its streams.
    pub fn goodput(&self, model: &str, class: SloClass) -> u64 {
        self.streams
            .iter()
            .filter(|s| s.model == model && s.class == class)
            .map(|s| s.goodput)
            .sum()
    }

    /// Total requests shed or rejected for a class across all models.
    pub fn shed_for_class(&self, class: SloClass) -> u64 {
        self.streams
            .iter()
            .filter(|s| s.class == class)
            .map(|s| s.shed + s.rejected)
            .sum()
    }

    /// Whether every stream (closed ones meaningfully) observed
    /// non-decreasing versions.
    pub fn versions_monotonic(&self) -> bool {
        self.streams.iter().all(|s| s.versions_monotonic)
    }

    /// Sum of `ok` across streams.
    pub fn total_ok(&self) -> u64 {
        self.streams.iter().map(|s| s.ok).sum()
    }

    /// One line per stream.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for s in &self.streams {
            out.push_str(&format!(
                "{}/{}: {} submitted, {} ok ({} goodput, {} canary), \
                 {} shed, {} rejected, {} failed\n",
                s.model,
                s.class,
                s.submitted,
                s.ok,
                s.goodput,
                s.canary,
                s.shed,
                s.rejected,
                s.failed,
            ));
        }
        out
    }
}

/// Runs every stream concurrently to completion, drawing request
/// payloads from `inputs` uniformly at random (seeded per stream, so
/// the request mix is reproducible).
///
/// # Panics
/// Panics when `inputs` is empty or a spec requests zero work.
pub fn run_fleet_load(
    client: &FleetClient,
    inputs: &[Vec<f32>],
    specs: &[StreamSpec],
    seed: u64,
) -> FleetLoadReport {
    assert!(!inputs.is_empty(), "need at least one request payload");
    assert!(
        specs.iter().all(|s| s.requests > 0),
        "every stream must issue at least one request"
    );
    let started = Instant::now();
    let streams = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let client = client.clone();
                scope.spawn(move || {
                    run_stream(
                        &client,
                        inputs,
                        spec,
                        seed ^ (i as u64).wrapping_mul(0x9e37),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load stream panicked"))
            .collect()
    });
    FleetLoadReport {
        streams,
        wall: started.elapsed(),
    }
}

fn run_stream(
    client: &FleetClient,
    inputs: &[Vec<f32>],
    spec: &StreamSpec,
    seed: u64,
) -> StreamReport {
    let mut rng = Rng::new(seed);
    let mut report = StreamReport::new(&spec.model, spec.class);
    let mut last_version = 0u64;
    match spec.arrival {
        Arrival::Closed => {
            for _ in 0..spec.requests {
                let input = inputs[rng.below(inputs.len())].clone();
                let outcome = client
                    .submit(&spec.model, input, spec.class, spec.deadline)
                    .and_then(|t| t.wait_deadline(WAIT_LIMIT));
                report.observe(outcome, &mut last_version, true);
            }
        }
        Arrival::Open { rps } => {
            assert!(rps > 0.0, "open stream needs a positive rate");
            let interval = Duration::from_secs_f64(1.0 / rps);
            let base = Instant::now();
            let mut tickets: Vec<FleetTicket> = Vec::with_capacity(spec.requests);
            for i in 0..spec.requests {
                // Pace against the schedule, not the previous send, so a
                // slow submit does not silently lower the offered rate.
                let target = base + interval.mul_f64(i as f64);
                if let Some(wait) = target.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let input = inputs[rng.below(inputs.len())].clone();
                match client.submit(&spec.model, input, spec.class, spec.deadline) {
                    Ok(ticket) => tickets.push(ticket),
                    Err(e) => report.observe(Err(e), &mut last_version, false),
                }
            }
            for ticket in tickets {
                report.observe(ticket.wait_deadline(WAIT_LIMIT), &mut last_version, false);
            }
        }
    }
    report
}
