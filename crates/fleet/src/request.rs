//! Request vocabulary: SLO classes, deadlines, replies and errors.
//!
//! Every fleet request carries an [`SloClass`] (its priority lattice
//! position) and a relative deadline. Admission, queueing and shedding
//! are all expressed in these terms: a higher class is never shed to
//! make room for a lower one, and a reply records whether it actually
//! met its deadline so goodput (not just throughput) is measurable end
//! to end.

use std::sync::mpsc;
use std::time::{Duration, Instant};

/// The service classes of the admission lattice, lowest priority first.
///
/// Ordering is total and explicit: `Batch < Standard < Interactive`.
/// Under overload the queue sheds strictly lower classes to admit
/// higher ones, never the reverse and never within a class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SloClass {
    /// Throughput traffic: analytics, backfills. First to shed.
    Batch,
    /// Default request class.
    Standard,
    /// Latency-critical traffic: admitted and scheduled first.
    Interactive,
}

impl SloClass {
    /// Every class, lowest priority first.
    pub const ALL: [SloClass; 3] = [SloClass::Batch, SloClass::Standard, SloClass::Interactive];

    /// Numeric priority (higher = more important).
    pub fn priority(self) -> u8 {
        match self {
            SloClass::Batch => 0,
            SloClass::Standard => 1,
            SloClass::Interactive => 2,
        }
    }

    /// Stable lowercase name, used in metric keys and reports.
    pub fn name(self) -> &'static str {
        match self {
            SloClass::Batch => "batch",
            SloClass::Standard => "standard",
            SloClass::Interactive => "interactive",
        }
    }
}

impl std::fmt::Display for SloClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A served fleet inference result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetPrediction {
    /// Predicted class (argmax of the logits).
    pub class: usize,
    /// Version of the primary snapshot current when this request was
    /// served. Canary replies carry the same primary version (the
    /// candidate has no version until promotion) so per-client version
    /// sequences stay monotone through a promotion.
    pub version: u64,
    /// Queue time + inference latency.
    pub latency: Duration,
    /// Whether the reply arrived within the request's deadline — the
    /// unit of goodput.
    pub met_deadline: bool,
    /// True when the candidate (canary) parameters produced this answer.
    pub canary: bool,
}

/// Why a fleet request was not answered with a prediction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetError {
    /// The named model is not part of this fleet.
    UnknownModel,
    /// The input does not match the model's sample shape.
    BadRequest {
        /// Flat input length the model expects.
        expected: usize,
        /// Flat input length that was submitted.
        got: usize,
    },
    /// The queue is full and the request is not higher-priority than
    /// everything queued; shed at admission.
    Overloaded,
    /// The request was admitted but later evicted to make room for a
    /// higher [`SloClass`] — answered, never silently dropped.
    Shed,
    /// The fleet is draining; no new requests are admitted.
    ShuttingDown,
    /// No snapshot has been published for the model yet.
    NoModel,
    /// The worker died before answering (a bug, surfaced rather than
    /// hung on).
    Dropped,
    /// [`FleetTicket::wait_deadline`] gave up before an answer arrived.
    Deadline,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownModel => write!(f, "no such model in the fleet"),
            FleetError::BadRequest { expected, got } => {
                write!(f, "input has {got} values, model expects {expected}")
            }
            FleetError::Overloaded => write!(f, "queue full and request not high-priority enough"),
            FleetError::Shed => write!(f, "evicted for a higher service class"),
            FleetError::ShuttingDown => write!(f, "fleet is shutting down"),
            FleetError::NoModel => write!(f, "no model published yet"),
            FleetError::Dropped => write!(f, "request dropped without an answer"),
            FleetError::Deadline => write!(f, "gave up waiting for the answer"),
        }
    }
}

impl std::error::Error for FleetError {}

/// A request's answer, as delivered to its [`FleetTicket`].
pub(crate) type Reply = Result<FleetPrediction, FleetError>;

/// One admitted request, owned by the queue until a worker takes it.
#[derive(Debug)]
pub(crate) struct FleetJob {
    /// Fleet-wide request id; drives the deterministic canary split.
    pub id: u64,
    pub input: Vec<f32>,
    pub class: SloClass,
    pub enqueued: Instant,
    /// Absolute deadline; queue ordering key within a class and the
    /// goodput bound at reply time.
    pub deadline: Instant,
    pub resp: mpsc::Sender<Reply>,
}

impl FleetJob {
    /// Answers this job; a caller that abandoned its ticket is its own
    /// business.
    pub fn answer(self, reply: Reply) {
        let _ = self.resp.send(reply);
    }
}

/// A pending fleet request; redeem with [`FleetTicket::wait`].
#[derive(Debug)]
pub struct FleetTicket(pub(crate) mpsc::Receiver<Reply>);

impl FleetTicket {
    /// Blocks until the request is answered.
    pub fn wait(self) -> Result<FleetPrediction, FleetError> {
        self.0.recv().unwrap_or(Err(FleetError::Dropped))
    }

    /// Blocks until the request is answered or `limit` elapses.
    ///
    /// # Errors
    /// [`FleetError::Deadline`] on timeout, [`FleetError::Dropped`] when
    /// the worker died, or whatever the worker answered.
    pub fn wait_deadline(self, limit: Duration) -> Result<FleetPrediction, FleetError> {
        match self.0.recv_timeout(limit) {
            Ok(reply) => reply,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(FleetError::Deadline),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(FleetError::Dropped),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_lattice_orders_classes_by_priority() {
        assert!(SloClass::Batch < SloClass::Standard);
        assert!(SloClass::Standard < SloClass::Interactive);
        let mut prios: Vec<u8> = SloClass::ALL.iter().map(|c| c.priority()).collect();
        let sorted = prios.clone();
        prios.sort_unstable();
        assert_eq!(prios, sorted, "ALL is lowest-first");
    }

    #[test]
    fn errors_and_classes_display() {
        assert_eq!(SloClass::Interactive.to_string(), "interactive");
        assert!(FleetError::Shed
            .to_string()
            .contains("higher service class"));
        assert!(FleetError::BadRequest {
            expected: 4,
            got: 7
        }
        .to_string()
        .contains("expects 4"));
    }
}
