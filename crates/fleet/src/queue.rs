//! The SLO-aware admission queue.
//!
//! A bounded queue ordered by the admission lattice: higher
//! [`SloClass`] first, earlier deadline first within a class, FIFO
//! within a (class, deadline) tie. When the queue is full, a new
//! arrival may *evict* the worst queued entry — but only if that entry
//! belongs to a strictly lower class, and the evicted request is always
//! answered with [`FleetError::Shed`], never silently dropped. An
//! arrival that cannot displace anything is refused at admission with
//! [`FleetError::Overloaded`]; either way every admitted request gets
//! exactly one answer.

use crate::request::{FleetError, FleetJob, SloClass};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One queued entry: the job plus its ordering keys.
#[derive(Debug)]
struct Entry {
    job: FleetJob,
    /// Admission sequence number, the FIFO tiebreaker.
    seq: u64,
}

impl Entry {
    /// True when `self` should be served before `other`: higher class,
    /// then earlier deadline, then earlier admission.
    fn before(&self, other: &Entry) -> bool {
        use std::cmp::Reverse;
        (
            self.job.class,
            Reverse(self.job.deadline),
            Reverse(self.seq),
        ) > (
            other.job.class,
            Reverse(other.job.deadline),
            Reverse(other.seq),
        )
    }
}

#[derive(Debug, Default)]
struct State {
    entries: VecDeque<Entry>,
    next_seq: u64,
    closed: bool,
}

impl State {
    /// Index of the entry to serve next (best class, earliest deadline).
    fn best(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in self.entries.iter().enumerate() {
            match best {
                None => best = Some(i),
                Some(b) if e.before(&self.entries[b]) => best = Some(i),
                Some(_) => {}
            }
        }
        best
    }

    /// Index of the entry to shed first (worst class, latest deadline,
    /// youngest).
    fn worst(&self) -> Option<usize> {
        let mut worst: Option<usize> = None;
        for (i, e) in self.entries.iter().enumerate() {
            match worst {
                None => worst = Some(i),
                Some(w) if self.entries[w].before(e) => worst = Some(i),
                Some(_) => {}
            }
        }
        worst
    }
}

/// What admission did with a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Queued without displacing anyone.
    Queued,
    /// Queued by evicting one strictly-lower-class entry (which was
    /// answered [`FleetError::Shed`]).
    QueuedAfterShedding(SloClass),
}

/// A bounded, priority/deadline-ordered request queue.
#[derive(Debug)]
pub struct SloQueue {
    state: Mutex<State>,
    available: Condvar,
    capacity: usize,
}

impl SloQueue {
    /// An empty queue holding at most `capacity` requests.
    pub fn new(capacity: usize) -> Self {
        SloQueue {
            state: Mutex::new(State::default()),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits `job`, possibly shedding one strictly-lower-class entry.
    ///
    /// # Errors
    /// [`FleetError::ShuttingDown`] after [`SloQueue::close`];
    /// [`FleetError::Overloaded`] when full and nothing queued is
    /// strictly lower-class than `job`. The refused job is dropped with
    /// the error — its ticket was never handed out, so nothing waits on
    /// it. On success the job is queued and a waiting worker woken.
    pub(crate) fn push(&self, job: FleetJob) -> Result<Admission, FleetError> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed {
            return Err(FleetError::ShuttingDown);
        }
        let mut outcome = Admission::Queued;
        if state.entries.len() >= self.capacity {
            let Some(w) = state.worst() else {
                return Err(FleetError::Overloaded);
            };
            if state.entries[w].job.class >= job.class {
                return Err(FleetError::Overloaded);
            }
            let evicted = state.entries.remove(w).expect("index from worst()");
            outcome = Admission::QueuedAfterShedding(evicted.job.class);
            evicted.job.answer(Err(FleetError::Shed));
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.entries.push_back(Entry { job, seq });
        drop(state);
        self.available.notify_one();
        Ok(outcome)
    }

    /// Takes the best queued job without waiting.
    pub(crate) fn try_pop(&self) -> Option<FleetJob> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        let best = state.best()?;
        Some(state.entries.remove(best).expect("index from best()").job)
    }

    /// Takes the best queued job, waiting up to `timeout` for one.
    pub(crate) fn pop_timeout(&self, timeout: Duration) -> Option<FleetJob> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(best) = state.best() {
                return Some(state.entries.remove(best).expect("index from best()").job);
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let (next, timed_out) = self
                .available
                .wait_timeout(state, remaining)
                .expect("queue lock poisoned");
            state = next;
            if timed_out.timed_out() && state.best().is_none() {
                return None;
            }
        }
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("queue lock poisoned")
            .entries
            .len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Refuses all future admissions; queued jobs remain poppable so the
    /// drain can answer them.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn job(
        id: u64,
        class: SloClass,
        deadline_ms: u64,
    ) -> (FleetJob, mpsc::Receiver<crate::request::Reply>) {
        let (resp, rx) = mpsc::channel();
        let now = Instant::now();
        (
            FleetJob {
                id,
                input: vec![0.0],
                class,
                enqueued: now,
                deadline: now + Duration::from_millis(deadline_ms),
                resp,
            },
            rx,
        )
    }

    #[test]
    fn pops_highest_class_earliest_deadline_first() {
        let q = SloQueue::new(8);
        let (a, _ra) = job(1, SloClass::Batch, 10);
        let (b, _rb) = job(2, SloClass::Interactive, 500);
        let (c, _rc) = job(3, SloClass::Interactive, 100);
        let (d, _rd) = job(4, SloClass::Standard, 1);
        for j in [a, b, c, d] {
            q.push(j).unwrap();
        }
        let order: Vec<u64> = (0..4).map(|_| q.try_pop().unwrap().id).collect();
        assert_eq!(order, vec![3, 2, 4, 1], "class first, then deadline");
    }

    #[test]
    fn ties_within_class_and_deadline_are_fifo() {
        let q = SloQueue::new(8);
        let now = Instant::now();
        let deadline = now + Duration::from_secs(1);
        let mut receivers = Vec::new();
        for id in 1..=3 {
            let (resp, rx) = mpsc::channel();
            receivers.push(rx);
            q.push(FleetJob {
                id,
                input: vec![],
                class: SloClass::Standard,
                enqueued: now,
                deadline,
                resp,
            })
            .unwrap();
        }
        let order: Vec<u64> = (0..3).map(|_| q.try_pop().unwrap().id).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn a_full_queue_sheds_only_strictly_lower_classes() {
        let q = SloQueue::new(2);
        let (a, ra) = job(1, SloClass::Batch, 10);
        let (b, _rb) = job(2, SloClass::Standard, 10);
        q.push(a).unwrap();
        q.push(b).unwrap();
        // A same-class arrival cannot displace its own class.
        let (c, _rc) = job(3, SloClass::Batch, 1);
        assert_eq!(q.push(c).unwrap_err(), FleetError::Overloaded);
        // A higher-class arrival evicts the worst (the Batch entry),
        // which is answered Shed, not dropped.
        let (d, _rd) = job(4, SloClass::Interactive, 10);
        assert_eq!(
            q.push(d).unwrap(),
            Admission::QueuedAfterShedding(SloClass::Batch)
        );
        assert_eq!(ra.recv().unwrap(), Err(FleetError::Shed));
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop().unwrap().id, 4);
        assert_eq!(q.try_pop().unwrap().id, 2);
    }

    #[test]
    fn an_interactive_flood_cannot_evict_interactive() {
        let q = SloQueue::new(1);
        let (a, _ra) = job(1, SloClass::Interactive, 10);
        q.push(a).unwrap();
        let (b, _rb) = job(2, SloClass::Interactive, 1);
        assert_eq!(q.push(b).unwrap_err(), FleetError::Overloaded);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn close_refuses_new_work_but_keeps_the_backlog_poppable() {
        let q = SloQueue::new(4);
        let (a, _ra) = job(1, SloClass::Standard, 10);
        q.push(a).unwrap();
        q.close();
        let (b, _rb) = job(2, SloClass::Standard, 10);
        assert_eq!(q.push(b).unwrap_err(), FleetError::ShuttingDown);
        assert_eq!(q.try_pop().unwrap().id, 1, "drain still sees the backlog");
    }

    #[test]
    fn pop_timeout_wakes_on_push() {
        let q = std::sync::Arc::new(SloQueue::new(4));
        let popper = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop_timeout(Duration::from_secs(30)).map(|j| j.id))
        };
        std::thread::sleep(Duration::from_millis(20));
        let (a, _ra) = job(7, SloClass::Standard, 10);
        q.push(a).unwrap();
        assert_eq!(popper.join().unwrap(), Some(7));
    }

    #[test]
    fn pop_timeout_times_out_empty() {
        let q = SloQueue::new(4);
        assert!(q.pop_timeout(Duration::from_millis(5)).is_none());
    }
}
