//! The aggregated fleet report.

use crate::autoscaler::ScaleDecision;
use crossbow_telemetry::LatencySummary;
use std::time::Duration;

/// What one model's pool did over the fleet's lifetime.
#[derive(Clone, Debug)]
pub struct ModelReport {
    /// Model name.
    pub name: String,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Admitted requests evicted for a higher class (answered `Shed`).
    pub shed: u64,
    /// Requests refused at admission (queue full, nothing evictable).
    pub rejected: u64,
    /// Requests answered `NoModel`.
    pub no_model: u64,
    /// Inference batches executed against this model.
    pub batches: u64,
    /// Batches of this model's work served by another pool's worker.
    pub stolen: u64,
    /// Requests answered by a staged canary candidate.
    pub canary_served: u64,
    /// Shadow-mode candidate answers that disagreed with the primary.
    pub shadow_divergence: u64,
    /// Request latency (queue time + inference) percentiles.
    pub latency: LatencySummary,
    /// Deepest queue backlog observed.
    pub max_queue_depth: u64,
    /// Worker target when the fleet stopped.
    pub final_workers: usize,
    /// Largest worker target ever set.
    pub max_workers: usize,
    /// Lowest snapshot version that answered (0 when none did).
    pub min_version: u64,
    /// Highest snapshot version that answered (0 when none did).
    pub max_version: u64,
}

impl ModelReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} ok / {} shed / {} rejected, {} batches ({} stolen), \
             p99 {:?}, workers {} (max {}), versions {}..{}",
            self.name,
            self.completed,
            self.shed,
            self.rejected,
            self.batches,
            self.stolen,
            self.latency.p99,
            self.final_workers,
            self.max_workers,
            self.min_version,
            self.max_version,
        )
    }
}

/// What a fleet did over its lifetime, produced by
/// [`Fleet::shutdown`](crate::Fleet::shutdown).
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Per-model pool reports, in registration order.
    pub models: Vec<ModelReport>,
    /// Every applied autoscaler resize, in decision order.
    pub decisions: Vec<ScaleDecision>,
    /// Fleet lifetime, start to drained shutdown.
    pub wall: Duration,
}

impl FleetReport {
    /// The report for a named model.
    pub fn model(&self, name: &str) -> Option<&ModelReport> {
        self.models.iter().find(|m| m.name == name)
    }

    /// Requests answered with a prediction, across all models.
    pub fn total_completed(&self) -> u64 {
        self.models.iter().map(|m| m.completed).sum()
    }

    /// Admitted-then-evicted requests, across all models.
    pub fn total_shed(&self) -> u64 {
        self.models.iter().map(|m| m.shed).sum()
    }

    /// True when the autoscaler both grew and shrank at least one pool.
    pub fn scaled_both_ways(&self) -> bool {
        self.decisions.iter().any(|d| d.to > d.from) && self.decisions.iter().any(|d| d.to < d.from)
    }

    /// Multi-line human summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for m in &self.models {
            out.push_str(&m.summary());
            out.push('\n');
        }
        out.push_str(&format!(
            "autoscaler: {} decisions ({} up, {} down), wall {:?}\n",
            self.decisions.len(),
            self.decisions.iter().filter(|d| d.to > d.from).count(),
            self.decisions.iter().filter(|d| d.to < d.from).count(),
            self.wall,
        ));
        for d in &self.decisions {
            out.push_str(&format!("  {d}\n"));
        }
        out
    }
}
