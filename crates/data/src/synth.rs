//! Deterministic synthetic datasets.
//!
//! Each generator builds a classification task from *class prototypes*:
//! smooth random patterns (blurred white noise) per class, from which each
//! sample is derived by adding per-sample noise, a small random
//! translation and a brightness perturbation. The result is a task that is
//! learnable but not linearly trivial — gradient noise, batch-size effects
//! and replica diversity all behave qualitatively like on natural images —
//! while converging in seconds on a CPU.
//!
//! All generators are deterministic functions of their seed.

use crate::dataset::Dataset;
use crossbow_tensor::{Rng, Shape};

/// Shape/difficulty knobs for an image-classification generator.
#[derive(Clone, Copy, Debug)]
pub struct ImageSpec {
    /// Number of classes.
    pub classes: usize,
    /// Total samples (interleaved by class; split off a test set with
    /// [`Dataset::split_at`]).
    pub samples: usize,
    /// Channels.
    pub channels: usize,
    /// Height = width.
    pub hw: usize,
    /// Per-sample additive Gaussian noise (relative to unit-scale
    /// prototypes). Higher is harder.
    pub noise: f32,
    /// Maximum random translation in pixels. Higher is harder.
    pub max_shift: usize,
    /// Number of prototypes per class (intra-class variety).
    pub prototypes_per_class: usize,
}

impl ImageSpec {
    /// MNIST-like: 1x16x16 grey images, 10 classes. The real MNIST is
    /// 28x28/60k; 16x16 with 2,400 samples preserves the task structure at
    /// CPU-trainable cost.
    pub fn mnist_like() -> Self {
        ImageSpec {
            classes: 10,
            samples: 1_200,
            channels: 1,
            hw: 16,
            noise: 0.5,
            max_shift: 1,
            prototypes_per_class: 2,
        }
    }

    /// CIFAR-10-like: 3x16x16 colour images, 10 classes, heavy pixel
    /// noise. (The real CIFAR-10 is 32x32/50k; 16x16 with 2,400 samples
    /// keeps the class structure at CPU-trainable cost.)
    pub fn cifar10_like() -> Self {
        ImageSpec {
            classes: 10,
            samples: 2_400,
            channels: 3,
            hw: 16,
            noise: 0.9,
            max_shift: 2,
            prototypes_per_class: 3,
        }
    }

    /// CIFAR-100-like: more classes, fewer samples per class — the regime
    /// the paper's VGG-16 experiment runs in (we scale 100 -> 20 classes
    /// to keep CPU training tractable; EXPERIMENTS.md records the scaled
    /// setting).
    pub fn cifar100_like() -> Self {
        ImageSpec {
            classes: 20,
            samples: 1_400,
            channels: 3,
            hw: 12,
            noise: 0.7,
            max_shift: 2,
            prototypes_per_class: 2,
        }
    }

    /// ImageNet-like: higher variety and shift (ILSVRC scaled to 20
    /// classes at 16x16).
    pub fn imagenet_like() -> Self {
        ImageSpec {
            classes: 20,
            samples: 1_400,
            channels: 3,
            hw: 12,
            noise: 0.4,
            max_shift: 1,
            prototypes_per_class: 2,
        }
    }

    /// Scales the sample count (builder style), e.g. for quick tests.
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }
}

/// Generates a synthetic image-classification dataset.
///
/// Samples are interleaved by class (sample `i` has label `i % classes`),
/// so prefix splits are stratified.
///
/// # Panics
/// Panics on zero-sized specs.
pub fn image_classification(spec: &ImageSpec, seed: u64) -> Dataset {
    assert!(spec.classes > 0 && spec.samples > 0, "empty spec");
    assert!(spec.channels > 0 && spec.hw > 0, "empty images");
    assert!(spec.prototypes_per_class > 0, "need prototypes");
    let mut rng = Rng::new(seed);
    let sample_len = spec.channels * spec.hw * spec.hw;
    // Class prototypes: smooth unit-scale patterns.
    let mut prototypes = Vec::with_capacity(spec.classes * spec.prototypes_per_class);
    for _ in 0..spec.classes * spec.prototypes_per_class {
        prototypes.push(smooth_pattern(spec.channels, spec.hw, &mut rng));
    }
    let mut images = Vec::with_capacity(spec.samples * sample_len);
    let mut labels = Vec::with_capacity(spec.samples);
    for i in 0..spec.samples {
        let class = i % spec.classes;
        let proto_idx = class * spec.prototypes_per_class + rng.below(spec.prototypes_per_class);
        let mut img = prototypes[proto_idx].clone();
        if spec.max_shift > 0 {
            let dx = rng.below(2 * spec.max_shift + 1) as isize - spec.max_shift as isize;
            let dy = rng.below(2 * spec.max_shift + 1) as isize - spec.max_shift as isize;
            img = translate(&img, spec.channels, spec.hw, dx, dy);
        }
        let brightness = rng.normal() * 0.1;
        for v in img.iter_mut() {
            *v += rng.normal() * spec.noise + brightness;
        }
        images.extend_from_slice(&img);
        labels.push(class);
    }
    Dataset::new(
        images,
        labels,
        Shape::new(&[spec.channels, spec.hw, spec.hw]),
        spec.classes,
    )
}

/// A low-dimensional Gaussian-mixture task: `classes` unit-separated
/// centres in `dim` dimensions with isotropic noise `spread`. Converges in
/// a handful of epochs — the workhorse of property tests.
pub fn gaussian_mixture(
    classes: usize,
    dim: usize,
    samples: usize,
    spread: f32,
    seed: u64,
) -> Dataset {
    assert!(classes > 0 && dim > 0 && samples > 0, "empty spec");
    let mut rng = Rng::new(seed);
    let centres: Vec<Vec<f32>> = (0..classes)
        .map(|_| (0..dim).map(|_| rng.normal()).collect())
        .collect();
    let mut images = Vec::with_capacity(samples * dim);
    let mut labels = Vec::with_capacity(samples);
    for i in 0..samples {
        let class = i % classes;
        for c in &centres[class] {
            images.push(c + rng.normal() * spread);
        }
        labels.push(class);
    }
    Dataset::new(images, labels, Shape::vector(dim), classes)
}

/// Smooth unit-scale random pattern: white noise box-blurred three times,
/// then normalised to zero mean / unit variance.
fn smooth_pattern(channels: usize, hw: usize, rng: &mut Rng) -> Vec<f32> {
    let mut img: Vec<f32> = (0..channels * hw * hw).map(|_| rng.normal()).collect();
    for _ in 0..3 {
        img = box_blur(&img, channels, hw);
    }
    let mean = img.iter().sum::<f32>() / img.len() as f32;
    let var = img.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / img.len() as f32;
    let inv_std = 1.0 / (var.sqrt() + 1e-6);
    for v in img.iter_mut() {
        *v = (*v - mean) * inv_std;
    }
    img
}

/// 3x3 box blur with clamped borders, per channel.
fn box_blur(img: &[f32], channels: usize, hw: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; img.len()];
    let plane = hw * hw;
    for c in 0..channels {
        let src = &img[c * plane..(c + 1) * plane];
        let dst = &mut out[c * plane..(c + 1) * plane];
        for y in 0..hw {
            for x in 0..hw {
                let mut acc = 0.0f32;
                for dy in -1isize..=1 {
                    for dx in -1isize..=1 {
                        let yy = (y as isize + dy).clamp(0, hw as isize - 1) as usize;
                        let xx = (x as isize + dx).clamp(0, hw as isize - 1) as usize;
                        acc += src[yy * hw + xx];
                    }
                }
                dst[y * hw + x] = acc / 9.0;
            }
        }
    }
    out
}

/// Translates an image by `(dx, dy)` pixels, zero-filling uncovered areas.
fn translate(img: &[f32], channels: usize, hw: usize, dx: isize, dy: isize) -> Vec<f32> {
    let mut out = vec![0.0f32; img.len()];
    let plane = hw * hw;
    for c in 0..channels {
        let src = &img[c * plane..(c + 1) * plane];
        let dst = &mut out[c * plane..(c + 1) * plane];
        for y in 0..hw {
            for x in 0..hw {
                let sy = y as isize - dy;
                let sx = x as isize - dx;
                if sy >= 0 && sy < hw as isize && sx >= 0 && sx < hw as isize {
                    dst[y * hw + x] = src[sy as usize * hw + sx as usize];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let spec = ImageSpec::mnist_like().with_samples(50);
        let a = image_classification(&spec, 7);
        let b = image_classification(&spec, 7);
        assert_eq!(a.image(3).expect("in range"), b.image(3).expect("in range"));
        let c = image_classification(&spec, 8);
        assert_ne!(a.image(3).expect("in range"), c.image(3).expect("in range"));
    }

    #[test]
    fn labels_are_interleaved_and_balanced() {
        let d = image_classification(&ImageSpec::cifar10_like().with_samples(100), 1);
        assert_eq!(d.label(0), Ok(0));
        assert_eq!(d.label(1), Ok(1));
        assert_eq!(d.label(11), Ok(1));
        assert!(d.class_histogram().iter().all(|&c| c == 10));
    }

    #[test]
    fn specs_have_expected_shapes() {
        let d = image_classification(&ImageSpec::mnist_like().with_samples(20), 2);
        assert_eq!(d.sample_shape().dims(), &[1, 16, 16]);
        let d = image_classification(&ImageSpec::cifar100_like().with_samples(40), 2);
        assert_eq!(d.sample_shape().dims(), &[3, 12, 12]);
        assert_eq!(d.classes(), 20);
        let d = image_classification(&ImageSpec::cifar10_like().with_samples(40), 2);
        assert_eq!(d.sample_shape().dims(), &[3, 16, 16]);
        assert_eq!(d.classes(), 10);
    }

    #[test]
    fn same_class_samples_are_closer_than_cross_class() {
        // The defining property of a classification task: intra-class
        // distance < inter-class distance, on average.
        let d = image_classification(
            &ImageSpec {
                prototypes_per_class: 1,
                noise: 0.3,
                max_shift: 0,
                ..ImageSpec::mnist_like()
            }
            .with_samples(200),
            3,
        );
        let dist =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        let mut intra = 0.0f32;
        let mut inter = 0.0f32;
        let mut n_intra = 0;
        let mut n_inter = 0;
        for i in 0..50 {
            for j in (i + 1)..50 {
                let dd = dist(d.image(i).expect("in range"), d.image(j).expect("in range"));
                if d.label(i) == d.label(j) {
                    intra += dd;
                    n_intra += 1;
                } else {
                    inter += dd;
                    n_inter += 1;
                }
            }
        }
        let (intra, inter) = (intra / n_intra as f32, inter / n_inter as f32);
        assert!(
            intra < inter * 0.8,
            "intra {intra} should be well below inter {inter}"
        );
    }

    #[test]
    fn gaussian_mixture_shapes() {
        let d = gaussian_mixture(3, 5, 30, 0.2, 4);
        assert_eq!(d.len(), 30);
        assert_eq!(d.sample_len(), 5);
        assert_eq!(d.classes(), 3);
        assert_eq!(d.class_histogram(), vec![10, 10, 10]);
    }

    #[test]
    fn translate_moves_pixels() {
        let img = vec![1.0, 0.0, 0.0, 0.0]; // 2x2, top-left lit
        let t = translate(&img, 1, 2, 1, 0); // shift right
        assert_eq!(t, vec![0.0, 1.0, 0.0, 0.0]);
        let t = translate(&img, 1, 2, 0, 1); // shift down
        assert_eq!(t, vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn smooth_pattern_is_normalised() {
        let mut rng = Rng::new(5);
        let p = smooth_pattern(1, 8, &mut rng);
        let mean = p.iter().sum::<f32>() / p.len() as f32;
        assert!(mean.abs() < 1e-4);
        let var = p.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / p.len() as f32;
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
