//! Datasets, batching and pre-processing for the CROSSBOW reproduction.
//!
//! The paper trains on MNIST, CIFAR-10, CIFAR-100 and ILSVRC 2012
//! (Table 1). Those datasets are not available offline, so [`synth`]
//! provides *deterministic synthetic substitutes* with the same structure:
//! image tensors with class structure, per-sample noise, nuisance
//! transforms and a train/test split. Statistical-efficiency phenomena
//! (small batches converge in fewer epochs; replica diversity helps SMA)
//! arise from running real SGD on a non-trivial loss surface, which these
//! tasks provide while converging in seconds on a CPU.
//!
//! The remaining modules mirror the paper's input pipeline (§4.1, §4.5):
//!
//! * [`batch`] — epoch-aware shuffled batch sampling;
//! * [`augment`] — the "image decoding and cropping" transformations the
//!   data pre-processors apply;
//! * [`prefetch`] — multi-threaded data pre-processors feeding a bounded
//!   (double-buffered) queue, CROSSBOW's circular input buffer.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod augment;
pub mod batch;
pub mod chan;
pub mod dataset;
pub mod prefetch;
pub mod source;
pub mod synth;

pub use batch::{BatchSampler, PartitionPlan, PartitionSampler};
pub use dataset::Dataset;
pub use prefetch::{Batch, PrefetchError, Prefetcher};
pub use source::{DataError, SampleSource};
