//! The [`SampleSource`] abstraction: where training samples come from.
//!
//! The trainer, the prefetcher and the distributed coordinator do not
//! care whether samples live in RAM ([`crate::Dataset`]), in mmap-backed
//! shard files (`crossbow-shard`), or behind any other store — they only
//! gather index batches. [`SampleSource`] is that contract, and
//! [`DataError`] is its typed failure surface (out-of-range indices,
//! empty batches, I/O faults), replacing the panics the in-memory
//! dataset used to throw.

use crossbow_tensor::{Shape, Tensor};

/// Why a data access failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataError {
    /// A sample index beyond the dataset.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The dataset length.
        len: usize,
    },
    /// A gather over zero indices.
    EmptyBatch,
    /// A split point beyond the dataset.
    SplitOutOfRange {
        /// The requested split point.
        at: usize,
        /// The dataset length.
        len: usize,
    },
    /// An underlying I/O fault (disk-backed sources).
    Io(String),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::IndexOutOfRange { index, len } => {
                write!(f, "sample index {index} out of range for {len} samples")
            }
            DataError::EmptyBatch => write!(f, "cannot gather an empty batch"),
            DataError::SplitOutOfRange { at, len } => {
                write!(f, "split point {at} beyond dataset of {len} samples")
            }
            DataError::Io(why) => write!(f, "data I/O error: {why}"),
        }
    }
}

impl std::error::Error for DataError {}

/// A source of labelled samples addressable by index.
///
/// Implementations must be deterministic: gathering the same indices
/// twice yields bit-identical tensors, so a training run is reproducible
/// regardless of where the bytes live. All methods take `&self` —
/// sources are shared across pre-processor threads.
pub trait SampleSource: Send + Sync {
    /// Number of samples.
    fn len(&self) -> usize;

    /// True when the source holds no samples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-sample shape.
    fn sample_shape(&self) -> &Shape;

    /// Elements per sample.
    fn sample_len(&self) -> usize {
        self.sample_shape().len()
    }

    /// Number of classes.
    fn classes(&self) -> usize;

    /// Label of sample `i`.
    ///
    /// # Errors
    /// [`DataError::IndexOutOfRange`] for `i >= len()`, or
    /// [`DataError::Io`] for disk-backed sources.
    fn label(&self, i: usize) -> Result<usize, DataError>;

    /// Gathers the given sample indices into a `[batch, ...sample]`
    /// tensor and a label vector.
    ///
    /// # Errors
    /// [`DataError::EmptyBatch`] for no indices,
    /// [`DataError::IndexOutOfRange`] for an index beyond the source, or
    /// [`DataError::Io`] for disk-backed sources.
    fn gather(&self, indices: &[usize]) -> Result<(Tensor, Vec<usize>), DataError>;

    /// The whole source as one `[n, sample_len]` tensor plus labels —
    /// the evaluation path, which scores every held-out sample at once.
    ///
    /// # Errors
    /// As [`SampleSource::gather`].
    fn eval_tensors(&self) -> Result<(Tensor, Vec<usize>), DataError> {
        let all: Vec<usize> = (0..self.len()).collect();
        let (images, labels) = self.gather(&all)?;
        // Evaluation consumers expect a flat [n, sample_len] matrix.
        let n = labels.len();
        let flat = images.reshape(Shape::new(&[n, self.sample_len()]));
        Ok((flat, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    #[test]
    fn dataset_is_a_sample_source() {
        let d = Dataset::new(
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
            vec![0, 1, 0],
            Shape::vector(2),
            2,
        );
        let src: &dyn SampleSource = &d;
        assert_eq!(src.len(), 3);
        assert_eq!(src.classes(), 2);
        assert_eq!(src.sample_len(), 2);
        assert_eq!(src.label(1), Ok(1));
        let (t, l) = src.gather(&[2, 0]).expect("gather");
        assert_eq!(t.data(), &[4.0, 5.0, 0.0, 1.0]);
        assert_eq!(l, vec![0, 0]);
        let (all, labels) = src.eval_tensors().expect("eval");
        assert_eq!(all.shape().dims(), &[3, 2]);
        assert_eq!(labels, vec![0, 1, 0]);
    }

    #[test]
    fn typed_errors_carry_positions() {
        let d = Dataset::new(vec![0.0, 1.0], vec![1], Shape::vector(2), 2);
        let src: &dyn SampleSource = &d;
        assert_eq!(
            src.label(5),
            Err(DataError::IndexOutOfRange { index: 5, len: 1 })
        );
        assert_eq!(src.gather(&[]), Err(DataError::EmptyBatch));
        assert_eq!(
            src.gather(&[0, 9]),
            Err(DataError::IndexOutOfRange { index: 9, len: 1 })
        );
        let msg = DataError::Io("short read".into()).to_string();
        assert!(msg.contains("short read"));
    }
}
