//! Training-time augmentation — the transformations the paper's data
//! pre-processors apply ("image decoding and cropping", §4.1).

use crossbow_tensor::{Rng, Tensor};

/// Augmentation configuration applied per sample by the pre-processors.
#[derive(Clone, Copy, Debug)]
pub struct Augment {
    /// Maximum random translation (pad-and-crop) in pixels.
    pub max_shift: usize,
    /// Probability of a horizontal flip.
    pub flip_prob: f64,
    /// Stddev of additive Gaussian pixel noise.
    pub noise: f32,
}

impl Augment {
    /// No-op augmentation.
    pub fn none() -> Self {
        Augment {
            max_shift: 0,
            flip_prob: 0.0,
            noise: 0.0,
        }
    }

    /// The standard CIFAR-style recipe: shift up to 2 px, flip half the
    /// time, light noise.
    pub fn standard() -> Self {
        Augment {
            max_shift: 2,
            flip_prob: 0.5,
            noise: 0.05,
        }
    }

    /// True when this configuration changes nothing.
    pub fn is_noop(&self) -> bool {
        self.max_shift == 0 && self.flip_prob == 0.0 && self.noise == 0.0
    }

    /// Applies the augmentation in place to a `[batch, c, h, w]` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not 4-dimensional.
    pub fn apply(&self, batch: &mut Tensor, rng: &mut Rng) {
        if self.is_noop() {
            return;
        }
        let dims = batch.shape().dims().to_vec();
        assert_eq!(dims.len(), 4, "augment expects [batch, c, h, w]");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let sample_len = c * h * w;
        let mut scratch = vec![0.0f32; sample_len];
        for i in 0..n {
            let img = &mut batch.data_mut()[i * sample_len..(i + 1) * sample_len];
            if self.max_shift > 0 {
                let dx = rng.below(2 * self.max_shift + 1) as isize - self.max_shift as isize;
                let dy = rng.below(2 * self.max_shift + 1) as isize - self.max_shift as isize;
                if dx != 0 || dy != 0 {
                    shift_into(img, &mut scratch, c, h, w, dx, dy);
                    img.copy_from_slice(&scratch);
                }
            }
            if self.flip_prob > 0.0 && rng.bernoulli(self.flip_prob) {
                flip_horizontal(img, c, h, w);
            }
            if self.noise > 0.0 {
                for v in img.iter_mut() {
                    *v += rng.normal() * self.noise;
                }
            }
        }
    }
}

fn shift_into(src: &[f32], dst: &mut [f32], c: usize, h: usize, w: usize, dx: isize, dy: isize) {
    dst.iter_mut().for_each(|v| *v = 0.0);
    let plane = h * w;
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                let sy = y as isize - dy;
                let sx = x as isize - dx;
                if sy >= 0 && sy < h as isize && sx >= 0 && sx < w as isize {
                    dst[ch * plane + y * w + x] = src[ch * plane + sy as usize * w + sx as usize];
                }
            }
        }
    }
}

fn flip_horizontal(img: &mut [f32], c: usize, h: usize, w: usize) {
    let plane = h * w;
    for ch in 0..c {
        for y in 0..h {
            let row = &mut img[ch * plane + y * w..ch * plane + (y + 1) * w];
            row.reverse();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbow_tensor::Shape;

    #[test]
    fn noop_changes_nothing() {
        let mut rng = Rng::new(1);
        let mut t = Tensor::randn(Shape::new(&[2, 1, 4, 4]), 1.0, &mut rng);
        let before = t.clone();
        Augment::none().apply(&mut t, &mut rng);
        assert_eq!(t.data(), before.data());
        assert!(Augment::none().is_noop());
    }

    #[test]
    fn flip_reverses_rows() {
        let mut img = vec![1.0, 2.0, 3.0, 4.0]; // 1x2x2
        flip_horizontal(&mut img, 1, 2, 2);
        assert_eq!(img, vec![2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn flip_twice_is_identity() {
        let mut rng = Rng::new(2);
        let orig: Vec<f32> = (0..27).map(|_| rng.normal()).collect();
        let mut img = orig.clone();
        flip_horizontal(&mut img, 3, 3, 3);
        flip_horizontal(&mut img, 3, 3, 3);
        assert_eq!(img, orig);
    }

    #[test]
    fn shift_moves_mass() {
        let src = vec![1.0, 0.0, 0.0, 0.0];
        let mut dst = vec![0.0; 4];
        shift_into(&src, &mut dst, 1, 2, 2, 1, 1);
        assert_eq!(dst, vec![0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn augment_preserves_shape_and_stays_finite() {
        let mut rng = Rng::new(3);
        let mut t = Tensor::randn(Shape::new(&[4, 3, 8, 8]), 1.0, &mut rng);
        Augment::standard().apply(&mut t, &mut rng);
        assert_eq!(t.shape().dims(), &[4, 3, 8, 8]);
        assert!(t.is_finite());
    }

    #[test]
    fn noise_perturbs_values() {
        let mut rng = Rng::new(4);
        let mut t = Tensor::zeros([1, 1, 4, 4]);
        let aug = Augment {
            max_shift: 0,
            flip_prob: 0.0,
            noise: 0.5,
        };
        aug.apply(&mut t, &mut rng);
        assert!(t.max_abs() > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut rng = Rng::new(seed);
            let mut t = Tensor::randn(Shape::new(&[2, 1, 4, 4]), 1.0, &mut rng);
            Augment::standard().apply(&mut t, &mut rng);
            t.into_vec()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn different_seeds_produce_different_augmentations() {
        let run = |seed| {
            let mut fill = Rng::new(0);
            let mut t = Tensor::randn(Shape::new(&[4, 1, 6, 6]), 1.0, &mut fill);
            let mut rng = Rng::new(seed);
            Augment::standard().apply(&mut t, &mut rng);
            t.into_vec()
        };
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn disabled_augmentation_consumes_no_randomness() {
        // A no-op apply must leave the RNG stream untouched, or disabling
        // augmentation would silently change every downstream draw.
        let mut rng = Rng::new(7);
        let mut t = Tensor::zeros([1, 1, 4, 4]);
        Augment::none().apply(&mut t, &mut rng);
        let mut fresh = Rng::new(7);
        assert_eq!(rng.normal().to_bits(), fresh.normal().to_bits());
    }

    #[test]
    fn shift_never_moves_further_than_max_shift() {
        // A single bright pixel at the centre may travel at most
        // `max_shift` in each axis (or vanish off the edge entirely).
        let aug = Augment {
            max_shift: 2,
            flip_prob: 0.0,
            noise: 0.0,
        };
        let mut rng = Rng::new(11);
        let hw = 9;
        let centre = hw / 2;
        for _ in 0..50 {
            let mut t = Tensor::zeros([1, 1, hw, hw]);
            t.data_mut()[centre * hw + centre] = 1.0;
            aug.apply(&mut t, &mut rng);
            let hot: Vec<usize> = t
                .data()
                .iter()
                .enumerate()
                .filter(|(_, v)| **v != 0.0)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(hot.len(), 1, "translation keeps exactly one hot pixel");
            let (y, x) = (hot[0] / hw, hot[0] % hw);
            assert!(y.abs_diff(centre) <= 2, "dy bounded: moved to row {y}");
            assert!(x.abs_diff(centre) <= 2, "dx bounded: moved to col {x}");
        }
    }
}
