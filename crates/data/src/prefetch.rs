//! Multi-threaded data pre-processors.
//!
//! CROSSBOW's data pre-processors "read the training dataset into memory
//! and arrange samples into batches, possibly after some transformations"
//! (§4.1), writing into a page-locked circular buffer sized for "at least
//! one input batch per learner", with double buffering between the
//! pre-processors and the task scheduler (§4.5).
//!
//! [`Prefetcher`] reproduces that pipeline in CPU terms: worker threads
//! draw index blocks from a shared epoch-aware sampler, gather and augment
//! the batch, and push it into a *bounded* channel whose capacity plays
//! the role of the circular buffer. When the consumers outpace the
//! producers the channel runs empty — the pipeline stall the paper
//! mitigates by moving transformations onto the GPU; tests exercise that
//! path with an artificially slow transform.
//!
//! # Fault model
//!
//! A producer thread that panics (a corrupt sample, a bug in an augment)
//! must not strand the consumer: the panic is caught, its message is
//! recorded, and once every producer is gone the consumer-facing calls
//! return [`PrefetchError::Terminated`] instead of timing out forever.

use crate::augment::Augment;
use crate::batch::BatchSampler;
use crate::chan::{bounded, Receiver, RecvTimeoutError, SendTimeoutError};
use crate::source::SampleSource;
use crossbow_telemetry::{Counter, Gauge, HistogramCell, MetricsRegistry};
use crossbow_tensor::{Rng, Tensor};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One pre-processed input batch.
#[derive(Clone, Debug)]
pub struct Batch {
    /// `[batch, ...sample]` images.
    pub images: Tensor,
    /// Per-sample labels.
    pub labels: Vec<usize>,
    /// The epoch this batch belongs to.
    pub epoch: usize,
}

/// Configuration of the pre-processor pipeline.
#[derive(Clone, Copy, Debug)]
pub struct PrefetchConfig {
    /// Batch size.
    pub batch_size: usize,
    /// Number of pre-processor threads.
    pub threads: usize,
    /// Queue capacity in batches — the paper sizes its circular buffer to
    /// one batch per learner, double buffered; pass `2 * learners`.
    pub capacity: usize,
    /// Per-sample augmentation.
    pub augment: Augment,
    /// Artificial per-batch preparation delay; used by tests and the
    /// failure-injection suite to emulate a pre-processing bottleneck.
    pub slowdown: Duration,
    /// Fault injection: each producer thread panics after preparing this
    /// many batches. Used by the failure-injection suite to emulate a
    /// crashing pre-processor; `None` (the default) never fires.
    pub panic_after: Option<usize>,
    /// Resume cursor `(epoch, batches_drawn)` from a checkpoint: the
    /// shared sampler is fast-forwarded before the first batch is drawn,
    /// so the pipeline restarts mid-epoch on the exact batch the
    /// interrupted run would have drawn next. `None` starts from scratch.
    pub start: Option<(usize, usize)>,
}

impl PrefetchConfig {
    /// A sensible default: two threads, double buffering for `learners`.
    pub fn for_learners(batch_size: usize, learners: usize) -> Self {
        PrefetchConfig {
            batch_size,
            threads: 2,
            capacity: (2 * learners).max(2),
            augment: Augment::none(),
            slowdown: Duration::ZERO,
            panic_after: None,
            start: None,
        }
    }
}

/// A terminal or transient failure to produce a batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PrefetchError {
    /// No batch arrived within the timeout; producers are still alive and
    /// the call may be retried.
    Timeout,
    /// Every producer thread has exited and the buffer is drained: no
    /// batch will ever arrive. Carries the first producer panic message,
    /// if the shutdown was caused by one.
    Terminated {
        /// Message of the first producer panic, when one occurred.
        panic: Option<String>,
    },
}

impl std::fmt::Display for PrefetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrefetchError::Timeout => write!(f, "no batch ready within the timeout"),
            PrefetchError::Terminated { panic: Some(msg) } => {
                write!(f, "pre-processors terminated: a producer panicked: {msg}")
            }
            PrefetchError::Terminated { panic: None } => {
                write!(f, "pre-processors terminated")
            }
        }
    }
}

impl std::error::Error for PrefetchError {}

/// The pipeline's metric instruments, published on a shared
/// [`MetricsRegistry`] when the consumer opts in via
/// [`Prefetcher::spawn_with_metrics`].
struct PrefetchMetrics {
    /// `prefetch.queue_depth` — backlog observed at each fetch; the
    /// gauge's high-water mark shows how full the circular buffer got.
    queue_depth: Arc<Gauge>,
    /// `prefetch.batches` — batches handed to the consumer.
    batches: Arc<Counter>,
    /// `prefetch.wait_us` — how long the consumer blocked per fetch; a
    /// fat tail here is the pre-processing bottleneck of §4.1.
    wait: Arc<HistogramCell>,
}

/// A running pre-processor pipeline.
pub struct Prefetcher {
    rx: Receiver<Batch>,
    stop: Arc<AtomicBool>,
    panic_msg: Arc<Mutex<Option<String>>>,
    handles: Vec<JoinHandle<()>>,
    metrics: Option<PrefetchMetrics>,
}

impl Prefetcher {
    /// Spawns the pipeline and publishes its gauges on `metrics`:
    /// `prefetch.queue_depth`, `prefetch.batches` and `prefetch.wait_us`.
    ///
    /// # Panics
    /// Panics on zero threads/capacity or a batch larger than the dataset.
    pub fn spawn_with_metrics(
        dataset: Arc<dyn SampleSource>,
        config: PrefetchConfig,
        seed: u64,
        metrics: &MetricsRegistry,
    ) -> Self {
        let mut p = Prefetcher::spawn(dataset, config, seed);
        p.metrics = Some(PrefetchMetrics {
            queue_depth: metrics.gauge("prefetch.queue_depth"),
            batches: metrics.counter("prefetch.batches"),
            wait: metrics.histogram("prefetch.wait_us"),
        });
        p
    }

    /// Spawns the pipeline.
    ///
    /// # Panics
    /// Panics on zero threads/capacity or a batch larger than the dataset.
    pub fn spawn(dataset: Arc<dyn SampleSource>, config: PrefetchConfig, seed: u64) -> Self {
        assert!(config.threads > 0, "need at least one pre-processor");
        assert!(config.capacity > 0, "need a buffer");
        let mut sampler = BatchSampler::new(dataset.len(), config.batch_size, true, seed);
        if let Some((epoch, batches)) = config.start {
            sampler.seek(epoch, batches);
        }
        let sampler = Arc::new(Mutex::new(sampler));
        let (tx, rx) = bounded::<Batch>(config.capacity);
        let stop = Arc::new(AtomicBool::new(false));
        let panic_msg = Arc::new(Mutex::new(None::<String>));
        let mut handles = Vec::with_capacity(config.threads);
        for t in 0..config.threads {
            let dataset = Arc::clone(&dataset);
            let sampler = Arc::clone(&sampler);
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            let panic_msg = Arc::clone(&panic_msg);
            let mut rng = Rng::new(seed ^ 0x9E37_79B9).fork(t as u64);
            handles.push(std::thread::spawn(move || {
                let mut produced = 0usize;
                // Catch panics so the consumer sees a terminal error (the
                // channel disconnects once every producer is gone) instead
                // of hanging on `next_timeout` forever.
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    while !stop.load(Ordering::Relaxed) {
                        if config.panic_after.is_some_and(|n| produced >= n) {
                            panic!("injected pre-processor fault after {produced} batches");
                        }
                        let (indices, epoch) =
                            sampler.lock().expect("sampler lock poisoned").next_batch();
                        // A gather failure (index rot, disk fault) panics
                        // here on purpose: the catch below turns it into
                        // a terminal `PrefetchError::Terminated` carrying
                        // the message, which the consumer surfaces.
                        let (mut images, labels) = dataset
                            .gather(&indices)
                            .unwrap_or_else(|e| panic!("pre-processor gather failed: {e}"));
                        if !config.augment.is_noop() {
                            config.augment.apply(&mut images, &mut rng);
                        }
                        if !config.slowdown.is_zero() {
                            std::thread::sleep(config.slowdown);
                        }
                        produced += 1;
                        let batch = Batch {
                            images,
                            labels,
                            epoch,
                        };
                        // A bounded send blocks when the buffer is full
                        // (back-pressure); bail out promptly on shutdown.
                        let mut pending = batch;
                        loop {
                            match tx.send_timeout(pending, Duration::from_millis(50)) {
                                Ok(()) => break,
                                Err(SendTimeoutError::Disconnected(_)) => return,
                                Err(SendTimeoutError::Timeout(b)) => {
                                    if stop.load(Ordering::Relaxed) {
                                        return;
                                    }
                                    pending = b;
                                }
                            }
                        }
                    }
                }));
                if let Err(payload) = result {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "unknown panic".to_string());
                    panic_msg
                        .lock()
                        .expect("panic-message lock poisoned")
                        .get_or_insert(msg);
                }
            }));
        }
        Prefetcher {
            rx,
            stop,
            panic_msg,
            handles,
            metrics: None,
        }
    }

    /// The consumer-side view at fetch time: the backlog just before the
    /// receive, then the count and wait once a batch arrived.
    fn observe_fetch(&self, waited: Option<Duration>) {
        if let Some(m) = &self.metrics {
            m.batches.inc();
            if let Some(w) = waited {
                m.wait.record(w);
            }
        }
    }

    fn observe_depth(&self) {
        if let Some(m) = &self.metrics {
            m.queue_depth.set(self.rx.len() as u64);
        }
    }

    /// The first producer panic message, when one has occurred.
    pub fn failure(&self) -> Option<String> {
        self.panic_msg
            .lock()
            .expect("panic-message lock poisoned")
            .clone()
    }

    fn terminated(&self) -> PrefetchError {
        PrefetchError::Terminated {
            panic: self.failure(),
        }
    }

    /// Takes the next batch, blocking until one is ready.
    ///
    /// # Panics
    /// Panics when every producer has exited (including via a producer
    /// panic, whose message is propagated).
    pub fn next(&self) -> Batch {
        self.observe_depth();
        let start = Instant::now();
        match self.rx.recv() {
            Ok(b) => {
                self.observe_fetch(Some(start.elapsed()));
                b
            }
            Err(_) => panic!("{}", self.terminated()),
        }
    }

    /// Takes a batch if one is ready right now.
    pub fn try_next(&self) -> Option<Batch> {
        self.observe_depth();
        let b = self.rx.try_recv();
        if b.is_some() {
            self.observe_fetch(None);
        }
        b
    }

    /// Takes a batch, waiting at most `timeout`.
    ///
    /// Returns [`PrefetchError::Timeout`] when the pipeline is merely
    /// slow, and [`PrefetchError::Terminated`] when every producer thread
    /// has exited — e.g. after a producer panic — so a consumer loop can
    /// distinguish "retry later" from "give up now".
    pub fn next_timeout(&self, timeout: Duration) -> Result<Batch, PrefetchError> {
        self.observe_depth();
        let start = Instant::now();
        match self.rx.recv_timeout(timeout) {
            Ok(b) => {
                self.observe_fetch(Some(start.elapsed()));
                Ok(b)
            }
            Err(RecvTimeoutError::Timeout) => Err(PrefetchError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(self.terminated()),
        }
    }

    /// Number of batches currently buffered.
    pub fn buffered(&self) -> usize {
        self.rx.len()
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Drain so producers blocked on a full channel can observe stop.
        while self.rx.try_recv().is_some() {}
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::gaussian_mixture;

    fn dataset() -> Arc<dyn SampleSource> {
        Arc::new(gaussian_mixture(4, 6, 64, 0.3, 1))
    }

    #[test]
    fn produces_batches_of_requested_size() {
        let p = Prefetcher::spawn(dataset(), PrefetchConfig::for_learners(8, 2), 42);
        for _ in 0..10 {
            let b = p.next();
            assert_eq!(b.labels.len(), 8);
            assert_eq!(b.images.shape().dims(), &[8, 6]);
        }
    }

    #[test]
    fn epochs_advance() {
        let p = Prefetcher::spawn(dataset(), PrefetchConfig::for_learners(16, 1), 42);
        // 64 samples / batch 16 = 4 batches per epoch.
        let mut max_epoch = 0;
        for _ in 0..12 {
            max_epoch = max_epoch.max(p.next().epoch);
        }
        assert!(max_epoch >= 2, "saw epoch {max_epoch}");
    }

    #[test]
    fn bounded_buffer_applies_backpressure() {
        let p = Prefetcher::spawn(
            dataset(),
            PrefetchConfig {
                capacity: 2,
                ..PrefetchConfig::for_learners(8, 1)
            },
            42,
        );
        // Give producers time; the buffer must not exceed its capacity.
        std::thread::sleep(Duration::from_millis(100));
        assert!(p.buffered() <= 2);
        let _ = p.next();
    }

    #[test]
    fn slow_preprocessors_stall_the_pipeline() {
        let p = Prefetcher::spawn(
            dataset(),
            PrefetchConfig {
                threads: 1,
                slowdown: Duration::from_millis(200),
                ..PrefetchConfig::for_learners(8, 1)
            },
            42,
        );
        // An eager consumer sees an empty buffer at first.
        assert!(p.try_next().is_none(), "slow producer cannot keep up");
        assert!(p.next_timeout(Duration::from_secs(5)).is_ok());
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let p = Prefetcher::spawn(dataset(), PrefetchConfig::for_learners(8, 4), 42);
        let _ = p.next();
        drop(p); // must not hang
    }

    #[test]
    fn producer_panic_surfaces_as_terminal_error() {
        let p = Prefetcher::spawn(
            dataset(),
            PrefetchConfig {
                threads: 1,
                capacity: 8,
                panic_after: Some(2),
                ..PrefetchConfig::for_learners(8, 1)
            },
            42,
        );
        // The two pre-panic batches drain normally.
        assert!(p.next_timeout(Duration::from_secs(5)).is_ok());
        assert!(p.next_timeout(Duration::from_secs(5)).is_ok());
        // Then the consumer gets a terminal error, not an endless timeout.
        match p.next_timeout(Duration::from_secs(5)) {
            Err(PrefetchError::Terminated { panic: Some(msg) }) => {
                assert!(msg.contains("injected pre-processor fault"), "{msg}");
            }
            other => panic!("expected Terminated with a panic message, got {other:?}"),
        }
        assert!(p.failure().is_some());
    }

    #[test]
    fn partial_producer_failure_keeps_the_pipeline_alive() {
        // One of two producers dies; the survivor keeps serving batches
        // and the consumer never sees a terminal error.
        let p = Prefetcher::spawn(
            dataset(),
            PrefetchConfig {
                threads: 2,
                capacity: 2,
                panic_after: Some(1),
                slowdown: Duration::from_millis(1),
                ..PrefetchConfig::for_learners(8, 1)
            },
            42,
        );
        // Both threads panic eventually (each after one batch), so after
        // the buffered batches drain the error is terminal; before that,
        // every buffered batch is still served.
        let mut served = 0;
        loop {
            match p.next_timeout(Duration::from_secs(5)) {
                Ok(_) => served += 1,
                Err(PrefetchError::Terminated { .. }) => break,
                Err(PrefetchError::Timeout) => panic!("must terminate, not time out"),
            }
        }
        assert!(served >= 2, "each producer delivered its batch");
    }

    #[test]
    fn resume_cursor_continues_the_exact_stream() {
        // A single-threaded run interrupted after 6 batches and a fresh
        // pipeline started from the cursor (epoch 1, batch 2: 64/16 = 4
        // batches per epoch) must serve identical batches from there on.
        let config = PrefetchConfig {
            threads: 1,
            ..PrefetchConfig::for_learners(16, 1)
        };
        let full = Prefetcher::spawn(dataset(), config, 42);
        let mut expected = Vec::new();
        for i in 0..12 {
            let b = full.next();
            if i >= 6 {
                expected.push((b.labels, b.epoch));
            }
        }
        drop(full);
        let resumed = Prefetcher::spawn(
            dataset(),
            PrefetchConfig {
                start: Some((1, 2)),
                ..config
            },
            42,
        );
        for (labels, epoch) in expected {
            let b = resumed.next();
            assert_eq!(b.labels, labels);
            assert_eq!(b.epoch, epoch);
        }
    }

    #[test]
    fn metrics_report_fetches_and_queue_depth() {
        let registry = MetricsRegistry::new();
        let p = Prefetcher::spawn_with_metrics(
            dataset(),
            PrefetchConfig::for_learners(8, 2),
            42,
            &registry,
        );
        for _ in 0..10 {
            let _ = p.next();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counters["prefetch.batches"], 10);
        // The gauge is published even when the consumer always found the
        // buffer empty; its high-water mark is bounded by the capacity.
        let depth = &snap.gauges["prefetch.queue_depth"];
        assert!(depth.max <= 4, "capacity is 4, saw backlog {}", depth.max);
        assert_eq!(snap.histograms["prefetch.wait_us"].total(), 10);
    }

    #[test]
    fn covers_dataset_within_epoch() {
        // With one producer thread, the batches of epoch 0 partition the
        // (drop_last-trimmed) dataset.
        let p = Prefetcher::spawn(
            dataset(),
            PrefetchConfig {
                threads: 1,
                ..PrefetchConfig::for_learners(16, 1)
            },
            42,
        );
        let mut labels_seen = 0usize;
        for _ in 0..4 {
            let b = p.next();
            assert_eq!(b.epoch, 0);
            labels_seen += b.labels.len();
        }
        assert_eq!(labels_seen, 64);
    }
}
