//! In-memory labelled datasets.

use crate::source::{DataError, SampleSource};
use crossbow_tensor::{Rng, Shape, Tensor};

/// An in-memory classification dataset: `n` samples of a fixed per-sample
/// shape with integer labels.
#[derive(Clone, Debug)]
pub struct Dataset {
    images: Vec<f32>,
    labels: Vec<usize>,
    sample_shape: Shape,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    /// Panics if sizes are inconsistent or a label is out of range.
    pub fn new(images: Vec<f32>, labels: Vec<usize>, sample_shape: Shape, classes: usize) -> Self {
        let sample_len = sample_shape.len();
        assert!(sample_len > 0, "zero-length samples");
        assert!(classes > 0, "need at least one class");
        assert_eq!(
            images.len(),
            labels.len() * sample_len,
            "images/labels size mismatch"
        );
        assert!(
            labels.iter().all(|&l| l < classes),
            "label out of range for {classes} classes"
        );
        Dataset {
            images,
            labels,
            sample_shape,
            classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Per-sample shape.
    pub fn sample_shape(&self) -> &Shape {
        &self.sample_shape
    }

    /// Elements per sample.
    pub fn sample_len(&self) -> usize {
        self.sample_shape.len()
    }

    /// Raw view of sample `i`.
    ///
    /// # Errors
    /// [`DataError::IndexOutOfRange`] when `i >= len()`.
    pub fn image(&self, i: usize) -> Result<&[f32], DataError> {
        if i >= self.len() {
            return Err(DataError::IndexOutOfRange {
                index: i,
                len: self.len(),
            });
        }
        let l = self.sample_len();
        Ok(&self.images[i * l..(i + 1) * l])
    }

    /// Label of sample `i`.
    ///
    /// # Errors
    /// [`DataError::IndexOutOfRange`] when `i >= len()`.
    pub fn label(&self, i: usize) -> Result<usize, DataError> {
        self.labels
            .get(i)
            .copied()
            .ok_or(DataError::IndexOutOfRange {
                index: i,
                len: self.len(),
            })
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// All images as one `[n, sample_len]` tensor (copies).
    pub fn images_tensor(&self) -> Tensor {
        Tensor::from_vec(
            Shape::new(&[self.len(), self.sample_len()]),
            self.images.clone(),
        )
    }

    /// Gathers the given sample indices into a `[batch, ...sample]` tensor
    /// and a label vector.
    ///
    /// # Errors
    /// [`DataError::EmptyBatch`] when `indices` is empty, or
    /// [`DataError::IndexOutOfRange`] for any index beyond the dataset.
    pub fn gather(&self, indices: &[usize]) -> Result<(Tensor, Vec<usize>), DataError> {
        if indices.is_empty() {
            return Err(DataError::EmptyBatch);
        }
        let l = self.sample_len();
        let mut data = Vec::with_capacity(indices.len() * l);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.image(i)?);
            labels.push(self.labels[i]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(self.sample_shape.dims());
        Ok((Tensor::from_vec(Shape::new(&dims), data), labels))
    }

    /// Splits into `(first, second)` where `first` holds `first_n`
    /// samples. Used for train/test splits (generators interleave classes,
    /// so a prefix split is stratified enough).
    ///
    /// # Errors
    /// [`DataError::SplitOutOfRange`] when `first_n > len()`.
    pub fn split_at(self, first_n: usize) -> Result<(Dataset, Dataset), DataError> {
        if first_n > self.len() {
            return Err(DataError::SplitOutOfRange {
                at: first_n,
                len: self.len(),
            });
        }
        let l = self.sample_len();
        let (img_a, img_b) = {
            let mut imgs = self.images;
            let b = imgs.split_off(first_n * l);
            (imgs, b)
        };
        let (lab_a, lab_b) = {
            let mut labs = self.labels;
            let b = labs.split_off(first_n);
            (labs, b)
        };
        Ok((
            Dataset::new(img_a, lab_a, self.sample_shape.clone(), self.classes),
            Dataset::new(img_b, lab_b, self.sample_shape, self.classes),
        ))
    }

    /// Randomises a fraction of the labels (uniformly over all classes).
    ///
    /// Label noise creates the *variance-limited* training regime the
    /// paper's statistical-efficiency experiments live in: test accuracy
    /// plateaus below 100% and oscillates under constant-rate SGD, so a
    /// smoother consensus model (SMA's central average) crosses a target
    /// earlier. Apply to the **training split only**.
    ///
    /// # Panics
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn corrupt_labels(&mut self, fraction: f64, rng: &mut Rng) {
        assert!((0.0..=1.0).contains(&fraction), "bad fraction {fraction}");
        for l in &mut self.labels {
            if rng.bernoulli(fraction) {
                *l = rng.below(self.classes);
            }
        }
    }

    /// Per-class sample counts; useful for balance assertions in tests.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.classes];
        for &l in &self.labels {
            h[l] += 1;
        }
        h
    }
}

impl SampleSource for Dataset {
    fn len(&self) -> usize {
        Dataset::len(self)
    }

    fn sample_shape(&self) -> &Shape {
        Dataset::sample_shape(self)
    }

    fn classes(&self) -> usize {
        Dataset::classes(self)
    }

    fn label(&self, i: usize) -> Result<usize, DataError> {
        Dataset::label(self, i)
    }

    fn gather(&self, indices: &[usize]) -> Result<(Tensor, Vec<usize>), DataError> {
        Dataset::gather(self, indices)
    }

    fn eval_tensors(&self) -> Result<(Tensor, Vec<usize>), DataError> {
        // The in-memory layout already is [n, sample_len]; skip the
        // per-index copy of the default implementation.
        Ok((self.images_tensor(), self.labels.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
            vec![0, 1, 0],
            Shape::vector(2),
            2,
        )
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.classes(), 2);
        assert_eq!(d.sample_len(), 2);
        assert_eq!(d.image(1).expect("in range"), &[2.0, 3.0]);
        assert_eq!(d.label(2), Ok(0));
        assert_eq!(d.class_histogram(), vec![2, 1]);
    }

    #[test]
    fn out_of_range_access_is_a_typed_error() {
        let d = toy();
        assert_eq!(
            d.image(3).unwrap_err(),
            DataError::IndexOutOfRange { index: 3, len: 3 }
        );
        assert_eq!(
            d.label(9).unwrap_err(),
            DataError::IndexOutOfRange { index: 9, len: 3 }
        );
        assert_eq!(
            d.gather(&[0, 7]).unwrap_err(),
            DataError::IndexOutOfRange { index: 7, len: 3 }
        );
        assert_eq!(d.gather(&[]).unwrap_err(), DataError::EmptyBatch);
        assert_eq!(
            d.split_at(4).unwrap_err(),
            DataError::SplitOutOfRange { at: 4, len: 3 }
        );
    }

    #[test]
    fn gather_builds_batches() {
        let d = toy();
        let (t, l) = d.gather(&[2, 0]).expect("gather");
        assert_eq!(t.shape().dims(), &[2, 2]);
        assert_eq!(t.data(), &[4.0, 5.0, 0.0, 1.0]);
        assert_eq!(l, vec![0, 0]);
    }

    #[test]
    fn split_preserves_everything() {
        let d = toy();
        let (a, b) = d.split_at(2).expect("split");
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
        assert_eq!(b.image(0).expect("in range"), &[4.0, 5.0]);
        assert_eq!(b.label(0), Ok(0));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn inconsistent_sizes_rejected() {
        let _ = Dataset::new(vec![1.0; 5], vec![0, 1], Shape::vector(2), 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_rejected() {
        let _ = Dataset::new(vec![1.0; 4], vec![0, 5], Shape::vector(2), 2);
    }

    #[test]
    fn corrupt_labels_randomises_a_fraction() {
        let n = 1000;
        let images = vec![0.0f32; n];
        let labels = vec![0usize; n];
        let mut d = Dataset::new(images, labels, Shape::vector(1), 4);
        let mut rng = Rng::new(3);
        d.corrupt_labels(0.5, &mut rng);
        let changed = d.labels().iter().filter(|&&l| l != 0).count();
        // Half are re-drawn; 3/4 of re-draws land on another class.
        assert!((changed as f64 - 375.0).abs() < 60.0, "changed {changed}");
        let mut clean = d.clone();
        clean.corrupt_labels(0.0, &mut Rng::new(4));
        assert_eq!(clean.labels(), d.labels(), "fraction 0 is a no-op");
    }

    #[test]
    fn images_tensor_round_trips() {
        let d = toy();
        let t = d.images_tensor();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(&t.data()[..2], d.image(0).expect("in range"));
    }
}
