//! A small bounded MPMC channel built on `std::sync` primitives.
//!
//! The pre-processor pipeline needs a bounded channel with blocking,
//! timed and non-blocking operations on both ends, plus disconnection
//! detection — the circular-buffer semantics of paper §4.5. The tier-1
//! build runs without registry access, so this replaces the former
//! `crossbeam::channel` dependency with ~150 lines of std.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

// A poisoned mutex means some thread panicked while holding the channel
// lock. For everyone else sharing the channel that peer has effectively
// vanished, so the public operations report *disconnection* instead of
// cascading the panic across every producer and consumer. `Clone`/`Drop`
// recover the guard (`PoisonError::into_inner`) to keep the endpoint
// counts accurate: push/pop happen entirely under the lock, so the inner
// state is never torn.

/// Why a send did not complete.
#[derive(Debug, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The buffer stayed full for the whole timeout; the value is returned.
    Timeout(T),
    /// Every receiver is gone; the value is returned.
    Disconnected(T),
}

/// Why a receive did not complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No value arrived within the timeout; senders may still be alive.
    Timeout,
    /// The buffer is empty and every sender is gone.
    Disconnected,
}

struct Inner<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half; clone one per producer thread.
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half.
pub struct Receiver<T>(Arc<Shared<T>>);

/// Creates a bounded channel with room for `capacity` values.
///
/// # Panics
/// Panics on zero capacity.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "need a buffer");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while the buffer is full, for at most
    /// `timeout`.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let Ok(mut inner) = self.0.inner.lock() else {
            return Err(SendTimeoutError::Disconnected(value));
        };
        loop {
            if inner.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(value));
            }
            if inner.queue.len() < inner.capacity {
                inner.queue.push_back(value);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            let Some(wait) = deadline.checked_duration_since(Instant::now()) else {
                return Err(SendTimeoutError::Timeout(value));
            };
            let Ok((guard, res)) = self.0.not_full.wait_timeout(inner, wait) else {
                return Err(SendTimeoutError::Disconnected(value));
            };
            inner = guard;
            if res.timed_out() && inner.queue.len() >= inner.capacity {
                return Err(SendTimeoutError::Timeout(value));
            }
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.0.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.senders -= 1;
        if inner.senders == 0 {
            // Wake receivers so they observe the disconnection.
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives a value, blocking until one arrives or all senders are
    /// gone.
    pub fn recv(&self) -> Result<T, RecvTimeoutError> {
        let Ok(mut inner) = self.0.inner.lock() else {
            return Err(RecvTimeoutError::Disconnected);
        };
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Ok(guard) = self.0.not_empty.wait(inner) else {
                return Err(RecvTimeoutError::Disconnected);
            };
            inner = guard;
        }
    }

    /// Receives a value, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let Ok(mut inner) = self.0.inner.lock() else {
            return Err(RecvTimeoutError::Disconnected);
        };
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(wait) = deadline.checked_duration_since(Instant::now()) else {
                return Err(RecvTimeoutError::Timeout);
            };
            let Ok((guard, res)) = self.0.not_empty.wait_timeout(inner, wait) else {
                return Err(RecvTimeoutError::Disconnected);
            };
            inner = guard;
            if res.timed_out() && inner.queue.is_empty() {
                return if inner.senders == 0 {
                    Err(RecvTimeoutError::Disconnected)
                } else {
                    Err(RecvTimeoutError::Timeout)
                };
            }
        }
    }

    /// Takes a value only if one is buffered right now.
    pub fn try_recv(&self) -> Option<T> {
        let Ok(mut inner) = self.0.inner.lock() else {
            return None;
        };
        let v = inner.queue.pop_front();
        if v.is_some() {
            self.0.not_full.notify_one();
        }
        v
    }

    /// Number of values currently buffered.
    pub fn len(&self) -> usize {
        self.0.inner.lock().map_or(0, |inner| inner.queue.len())
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.0.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.receivers -= 1;
        if inner.receivers == 0 {
            // Wake senders blocked on a full buffer.
            self.0.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_in_order() {
        let (tx, rx) = bounded::<u32>(4);
        for v in 0..4 {
            tx.send_timeout(v, Duration::from_secs(1)).unwrap();
        }
        assert_eq!(rx.len(), 4);
        for v in 0..4 {
            assert_eq!(rx.recv().unwrap(), v);
        }
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn full_buffer_times_out() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send_timeout(1, Duration::from_millis(10)).unwrap();
        match tx.send_timeout(2, Duration::from_millis(10)) {
            Err(SendTimeoutError::Timeout(2)) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        let _ = rx.recv();
    }

    #[test]
    fn dropping_all_senders_disconnects_receiver() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send_timeout(7, Duration::from_millis(10)).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7), "buffered values drain first");
        assert_eq!(rx.recv(), Err(RecvTimeoutError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn dropping_receiver_disconnects_blocked_sender() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send_timeout(1, Duration::from_millis(10)).unwrap();
        let handle = std::thread::spawn(move || tx.send_timeout(2, Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(30));
        drop(rx);
        match handle.join().unwrap() {
            Err(SendTimeoutError::Disconnected(2)) => {}
            other => panic!("expected disconnect, got {other:?}"),
        }
    }

    #[test]
    fn blocked_receiver_wakes_on_send() {
        let (tx, rx) = bounded::<u32>(1);
        let handle = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20));
        tx.send_timeout(9, Duration::from_secs(1)).unwrap();
        assert_eq!(handle.join().unwrap(), Ok(9));
    }

    #[test]
    fn poisoned_lock_reads_as_disconnect_not_panic() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send_timeout(1, Duration::from_millis(10)).unwrap();
        // Poison the channel mutex by panicking while holding it.
        let shared = Arc::clone(&tx.0);
        let poisoner = std::thread::spawn(move || {
            let _guard = shared.inner.lock().unwrap();
            panic!("poison the channel lock");
        });
        assert!(poisoner.join().is_err());

        match tx.send_timeout(2, Duration::from_millis(10)) {
            Err(SendTimeoutError::Disconnected(2)) => {}
            other => panic!("expected disconnect, got {other:?}"),
        }
        assert_eq!(rx.recv(), Err(RecvTimeoutError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
        assert!(rx.try_recv().is_none());
        assert_eq!(rx.len(), 0);
        // Clone/Drop recover the guard instead of panicking.
        let tx2 = tx.clone();
        drop(tx2);
        drop(tx);
        drop(rx);
    }

    #[test]
    fn timed_recv_returns_timeout_while_senders_live() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
    }
}
