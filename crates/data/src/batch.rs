//! Epoch-aware shuffled batch sampling.
//!
//! SMA consumes "a set of batches" and removes each batch as a learner
//! takes it (Algorithm 1, lines 6–7); an epoch ends when the set is empty.
//! [`BatchSampler`] provides exactly that: a shuffled permutation of the
//! dataset handed out in batch-sized index blocks, reshuffled every epoch.

use crossbow_tensor::{Rng, RngState};

/// Hands out shuffled index batches, tracking epoch boundaries.
#[derive(Clone, Debug)]
pub struct BatchSampler {
    n: usize,
    batch: usize,
    order: Vec<usize>,
    pos: usize,
    epoch: usize,
    rng: Rng,
    drop_last: bool,
}

impl BatchSampler {
    /// Creates a sampler over `n` samples with the given batch size.
    ///
    /// `drop_last` discards a final partial batch (the common training
    /// setting, and what keeps every learning task the same shape).
    ///
    /// # Panics
    /// Panics when `batch == 0`, `n == 0`, or `drop_last` would discard
    /// everything (`batch > n`).
    pub fn new(n: usize, batch: usize, drop_last: bool, seed: u64) -> Self {
        assert!(n > 0, "empty dataset");
        assert!(batch > 0, "zero batch size");
        assert!(
            !drop_last || batch <= n,
            "batch {batch} larger than dataset {n} with drop_last"
        );
        let mut rng = Rng::new(seed);
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        BatchSampler {
            n,
            batch,
            order,
            pos: 0,
            epoch: 0,
            rng,
            drop_last,
        }
    }

    /// Batch size.
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Completed epochs (starts at 0; increments when the permutation is
    /// exhausted and reshuffled).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        if self.drop_last {
            self.n / self.batch
        } else {
            self.n.div_ceil(self.batch)
        }
    }

    /// The resume cursor: `(epoch, batches_drawn_in_epoch)`. Feeding it to
    /// [`BatchSampler::seek`] on a fresh sampler with the same seed
    /// reproduces the exact sample stream from this point onward.
    pub fn cursor(&self) -> (usize, usize) {
        (self.epoch, self.pos.div_ceil(self.batch))
    }

    /// Fast-forwards a *fresh* sampler (same `n`, `batch`, seed) to the
    /// position a cursor was taken at. Exact because the RNG is consumed
    /// only at reshuffles — one in `new` plus one per completed epoch — so
    /// replaying `epoch` shuffles and setting the intra-epoch offset lands
    /// on the identical permutation and stream position.
    pub fn seek(&mut self, epoch: usize, batches_drawn: usize) {
        for _ in 0..epoch {
            self.rng.shuffle(&mut self.order);
        }
        self.epoch = epoch;
        self.pos = (batches_drawn * self.batch).min(self.n);
    }

    /// Raw RNG state, exported for checkpoint integrity checks.
    pub fn rng_state(&self) -> RngState {
        self.rng.export_state()
    }

    /// Returns the next batch of sample indices, reshuffling at epoch
    /// boundaries. The returned epoch number is the epoch this batch
    /// belongs to.
    pub fn next_batch(&mut self) -> (Vec<usize>, usize) {
        let remaining = self.n - self.pos;
        let boundary = if self.drop_last {
            remaining < self.batch
        } else {
            remaining == 0
        };
        if boundary {
            self.epoch += 1;
            self.rng.shuffle(&mut self.order);
            self.pos = 0;
        }
        let end = (self.pos + self.batch).min(self.n);
        let batch = self.order[self.pos..end].to_vec();
        let epoch = self.epoch;
        self.pos = end;
        (batch, epoch)
    }
}

/// A static split of `n` samples into `groups` contiguous index ranges —
/// the per-learner (or per-worker) data partition of a shard-partitioned
/// run. Group `g` owns `[g*n/G, (g+1)*n/G)`, so sizes differ by at most
/// one sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionPlan {
    n: usize,
    groups: usize,
}

impl PartitionPlan {
    /// An even split of `n` samples into `groups` ranges.
    ///
    /// # Panics
    /// Panics when `groups == 0` or `groups > n`.
    pub fn even(n: usize, groups: usize) -> Self {
        assert!(groups > 0, "need at least one group");
        assert!(groups <= n, "more groups ({groups}) than samples ({n})");
        PartitionPlan { n, groups }
    }

    /// Total samples.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// The half-open global index range `[lo, hi)` owned by group `g`.
    ///
    /// # Panics
    /// Panics when `g >= groups()`.
    pub fn range(&self, g: usize) -> (usize, usize) {
        assert!(g < self.groups, "group {g} out of {}", self.groups);
        (g * self.n / self.groups, (g + 1) * self.n / self.groups)
    }

    /// Size of the smallest group — the per-group sample budget that
    /// bounds `rounds_per_epoch`.
    pub fn min_group_len(&self) -> usize {
        (0..self.groups)
            .map(|g| {
                let (lo, hi) = self.range(g);
                hi - lo
            })
            .min()
            .expect("at least one group")
    }
}

/// Shard-aware lockstep sampling: one [`BatchSampler`]-style shuffled
/// stream *per partition group*, all advancing together.
///
/// Every round draws one batch from each group (learner `j` always
/// trains on group `j`'s range), every group reshuffles at the same
/// epoch boundary — when the smallest group is exhausted, `drop_last`
/// style — and each group's RNG is consumed only at those lockstep
/// reshuffles. The cursor therefore stays a single `(epoch, rounds)`
/// pair and [`PartitionSampler::seek`] replays the shuffles exactly, so
/// a partitioned run resumes bit-identically just like a
/// [`BatchSampler`]-driven one.
#[derive(Clone, Debug)]
pub struct PartitionSampler {
    plan: PartitionPlan,
    batch: usize,
    orders: Vec<Vec<usize>>,
    rngs: Vec<Rng>,
    rounds: usize,
    epoch: usize,
    rounds_per_epoch: usize,
}

impl PartitionSampler {
    /// Creates a sampler drawing `batch`-sized index blocks from each
    /// group of `plan`. Each group's RNG is an independent fork of
    /// `seed` (stream = group index), so group streams never correlate.
    ///
    /// # Panics
    /// Panics when `batch == 0` or `batch` exceeds the smallest group.
    pub fn new(plan: PartitionPlan, batch: usize, seed: u64) -> Self {
        assert!(batch > 0, "zero batch size");
        let min_len = plan.min_group_len();
        assert!(
            batch <= min_len,
            "batch {batch} larger than the smallest group ({min_len})"
        );
        let mut orders = Vec::with_capacity(plan.groups());
        let mut rngs = Vec::with_capacity(plan.groups());
        for g in 0..plan.groups() {
            let (lo, hi) = plan.range(g);
            let mut order: Vec<usize> = (lo..hi).collect();
            let mut rng = Rng::new(seed).fork(g as u64);
            rng.shuffle(&mut order);
            orders.push(order);
            rngs.push(rng);
        }
        PartitionSampler {
            plan,
            batch,
            orders,
            rngs,
            rounds: 0,
            epoch: 0,
            rounds_per_epoch: min_len / batch,
        }
    }

    /// The partition plan.
    pub fn plan(&self) -> PartitionPlan {
        self.plan
    }

    /// Number of groups (one per learner).
    pub fn groups(&self) -> usize {
        self.plan.groups()
    }

    /// Batch size per group.
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Completed epochs (starts at 0).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Lockstep rounds per epoch: the smallest group's batch count.
    pub fn rounds_per_epoch(&self) -> usize {
        self.rounds_per_epoch
    }

    /// The resume cursor `(epoch, rounds_drawn_in_epoch)`.
    pub fn cursor(&self) -> (usize, usize) {
        (self.epoch, self.rounds)
    }

    /// Fast-forwards a *fresh* sampler (same plan, batch, seed) to a
    /// cursor position by replaying `epoch` lockstep reshuffles in every
    /// group. Exact for the same reason [`BatchSampler::seek`] is: RNGs
    /// advance only at reshuffles.
    pub fn seek(&mut self, epoch: usize, rounds: usize) {
        for (order, rng) in self.orders.iter_mut().zip(&mut self.rngs) {
            for _ in 0..epoch {
                rng.shuffle(order);
            }
        }
        self.epoch = epoch;
        self.rounds = rounds.min(self.rounds_per_epoch);
    }

    /// Raw per-group RNG states, exported for checkpoint integrity
    /// checks (group order matches slot order).
    pub fn rng_states(&self) -> Vec<RngState> {
        self.rngs.iter().map(|r| r.export_state()).collect()
    }

    /// Draws one round: a batch of global indices from every group, plus
    /// the epoch the round belongs to. All groups cross the epoch
    /// boundary together, reshuffling in lockstep.
    pub fn next_round(&mut self) -> (Vec<Vec<usize>>, usize) {
        if self.rounds >= self.rounds_per_epoch {
            self.epoch += 1;
            self.rounds = 0;
            for (order, rng) in self.orders.iter_mut().zip(&mut self.rngs) {
                rng.shuffle(order);
            }
        }
        let start = self.rounds * self.batch;
        let batches = self
            .orders
            .iter()
            .map(|order| order[start..start + self.batch].to_vec())
            .collect();
        let epoch = self.epoch;
        self.rounds += 1;
        (batches, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_sample_each_epoch() {
        let mut s = BatchSampler::new(10, 3, false, 1);
        let mut seen = vec![0usize; 10];
        for _ in 0..s.batches_per_epoch() {
            let (b, e) = s.next_batch();
            assert_eq!(e, 0);
            for i in b {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn drop_last_trims_partial_batches() {
        let mut s = BatchSampler::new(10, 3, true, 1);
        assert_eq!(s.batches_per_epoch(), 3);
        for _ in 0..3 {
            let (b, e) = s.next_batch();
            assert_eq!(b.len(), 3);
            assert_eq!(e, 0);
        }
        let (_, e) = s.next_batch();
        assert_eq!(e, 1, "fourth batch starts epoch 1");
    }

    #[test]
    fn epochs_reshuffle() {
        let mut s = BatchSampler::new(64, 64, true, 2);
        let (b0, _) = s.next_batch();
        let (b1, e1) = s.next_batch();
        assert_eq!(e1, 1);
        assert_ne!(b0, b1, "reshuffled order should differ");
        let mut sorted = b1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = BatchSampler::new(20, 4, true, 9);
        let mut b = BatchSampler::new(20, 4, true, 9);
        for _ in 0..12 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    fn seek_reproduces_the_stream_mid_epoch() {
        let mut a = BatchSampler::new(20, 4, true, 7);
        // Draw into the middle of epoch 2.
        for _ in 0..12 {
            a.next_batch();
        }
        let (epoch, batches) = a.cursor();
        assert_eq!((epoch, batches), (2, 2));
        let mut b = BatchSampler::new(20, 4, true, 7);
        b.seek(epoch, batches);
        assert_eq!(a.rng_state(), b.rng_state(), "RNG streams aligned");
        for _ in 0..15 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    fn seek_to_end_of_epoch_matches_exhausted_sampler() {
        let mut a = BatchSampler::new(12, 4, true, 3);
        for _ in 0..3 {
            a.next_batch();
        }
        // pos == n: the boundary fires on the *next* draw in both.
        let (epoch, batches) = a.cursor();
        assert_eq!((epoch, batches), (0, 3));
        let mut b = BatchSampler::new(12, 4, true, 3);
        b.seek(epoch, batches);
        for _ in 0..8 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    fn seek_to_zero_is_a_fresh_sampler() {
        let mut a = BatchSampler::new(10, 5, true, 11);
        let mut b = BatchSampler::new(10, 5, true, 11);
        b.seek(0, 0);
        for _ in 0..6 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    #[should_panic(expected = "larger than dataset")]
    fn oversized_batch_with_drop_last_rejected() {
        let _ = BatchSampler::new(5, 8, true, 0);
    }

    #[test]
    fn oversized_batch_without_drop_last_is_one_batch() {
        let mut s = BatchSampler::new(5, 8, false, 0);
        let (b, _) = s.next_batch();
        assert_eq!(b.len(), 5);
        assert_eq!(s.batches_per_epoch(), 1);
    }

    /// Property: for every (n, batch, drop_last, draw count) in the grid,
    /// `seek(cursor())` on a fresh same-seed sampler reproduces the
    /// remaining stream exactly — including at and across epoch
    /// boundaries and through partial final batches.
    #[test]
    fn property_seek_cursor_round_trips_everywhere() {
        for &(n, batch) in &[(10usize, 3usize), (12, 4), (7, 7), (9, 2), (16, 5)] {
            for &drop_last in &[true, false] {
                let per_epoch = if drop_last {
                    n / batch
                } else {
                    n.div_ceil(batch)
                };
                // Sweep draw counts across three epochs, hitting every
                // boundary-adjacent position (last batch of an epoch,
                // first of the next, mid-epoch).
                for drawn in 0..(3 * per_epoch + 2) {
                    let seed = (n * 1000 + batch * 10 + drawn) as u64;
                    let mut a = BatchSampler::new(n, batch, drop_last, seed);
                    for _ in 0..drawn {
                        a.next_batch();
                    }
                    let (epoch, batches) = a.cursor();
                    let mut b = BatchSampler::new(n, batch, drop_last, seed);
                    b.seek(epoch, batches);
                    assert_eq!(
                        a.rng_state(),
                        b.rng_state(),
                        "rng diverged at n={n} batch={batch} drop_last={drop_last} drawn={drawn}"
                    );
                    for step in 0..(2 * per_epoch + 1) {
                        assert_eq!(
                            a.next_batch(),
                            b.next_batch(),
                            "stream diverged at n={n} batch={batch} \
                             drop_last={drop_last} drawn={drawn} step={step}"
                        );
                    }
                }
            }
        }
    }

    /// Property: the cursor after the final batch of an epoch seeks to
    /// the same stream as drawing through it, and a partial final batch
    /// (`drop_last = false`) counts as one drawn batch in the cursor.
    #[test]
    fn property_partial_final_batch_counts_once() {
        // n=10, batch=3, keep-last: epoch is 3+3+3+1 samples in 4 batches.
        let mut a = BatchSampler::new(10, 3, false, 5);
        for _ in 0..4 {
            a.next_batch();
        }
        let (epoch, batches) = a.cursor();
        assert_eq!((epoch, batches), (0, 4), "partial batch drawn once");
        let mut b = BatchSampler::new(10, 3, false, 5);
        b.seek(epoch, batches);
        for _ in 0..9 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    /// Seeking past an epoch boundary (batches_drawn beyond the epoch)
    /// clamps to the epoch end rather than running off the permutation.
    #[test]
    fn seek_past_epoch_clamps_to_the_boundary() {
        let mut a = BatchSampler::new(12, 4, true, 3);
        for _ in 0..3 {
            a.next_batch(); // exhaust epoch 0
        }
        let mut b = BatchSampler::new(12, 4, true, 3);
        b.seek(0, 99); // far beyond the 3 batches of an epoch
        assert_eq!(a.rng_state(), b.rng_state());
        for _ in 0..7 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    // ---- PartitionSampler -------------------------------------------

    #[test]
    fn partition_plan_splits_evenly_and_covers() {
        let plan = PartitionPlan::even(10, 3);
        let ranges: Vec<_> = (0..3).map(|g| plan.range(g)).collect();
        assert_eq!(ranges, vec![(0, 3), (3, 6), (6, 10)]);
        assert_eq!(plan.min_group_len(), 3);
    }

    #[test]
    fn partition_groups_stay_inside_their_ranges() {
        let plan = PartitionPlan::even(20, 2);
        let mut s = PartitionSampler::new(plan, 4, 11);
        for _ in 0..10 {
            let (batches, _) = s.next_round();
            assert_eq!(batches.len(), 2);
            for (g, b) in batches.iter().enumerate() {
                let (lo, hi) = plan.range(g);
                assert!(b.iter().all(|&i| i >= lo && i < hi), "group {g}: {b:?}");
            }
        }
    }

    #[test]
    fn partition_covers_each_group_every_epoch() {
        let plan = PartitionPlan::even(12, 2);
        let mut s = PartitionSampler::new(plan, 2, 4);
        assert_eq!(s.rounds_per_epoch(), 3);
        let mut seen = vec![0usize; 12];
        for _ in 0..s.rounds_per_epoch() {
            let (batches, e) = s.next_round();
            assert_eq!(e, 0);
            for b in batches {
                for i in b {
                    seen[i] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn partition_epochs_advance_in_lockstep() {
        let plan = PartitionPlan::even(8, 2);
        let mut s = PartitionSampler::new(plan, 4, 9);
        assert_eq!(s.rounds_per_epoch(), 1);
        let (_, e0) = s.next_round();
        let (_, e1) = s.next_round();
        assert_eq!((e0, e1), (0, 1), "all groups cross the boundary together");
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn partition_seek_reproduces_the_stream_mid_epoch() {
        let plan = PartitionPlan::even(24, 3);
        let mut a = PartitionSampler::new(plan, 2, 13);
        for _ in 0..7 {
            a.next_round();
        }
        let (epoch, rounds) = a.cursor();
        assert_eq!((epoch, rounds), (1, 3));
        let mut b = PartitionSampler::new(plan, 2, 13);
        b.seek(epoch, rounds);
        assert_eq!(a.rng_states(), b.rng_states(), "all group RNGs aligned");
        for _ in 0..10 {
            assert_eq!(a.next_round(), b.next_round());
        }
    }

    #[test]
    fn partition_deterministic_per_seed_and_distinct_across_groups() {
        let plan = PartitionPlan::even(16, 2);
        let mut a = PartitionSampler::new(plan, 4, 21);
        let mut b = PartitionSampler::new(plan, 4, 21);
        for _ in 0..6 {
            assert_eq!(a.next_round(), b.next_round());
        }
        // Different seeds give different streams.
        let mut c = PartitionSampler::new(plan, 4, 22);
        let mut differs = false;
        let mut a2 = PartitionSampler::new(plan, 4, 21);
        for _ in 0..6 {
            if a2.next_round() != c.next_round() {
                differs = true;
            }
        }
        assert!(differs, "seed must steer the permutations");
    }

    #[test]
    #[should_panic(expected = "larger than the smallest group")]
    fn partition_rejects_oversized_batches() {
        let _ = PartitionSampler::new(PartitionPlan::even(10, 3), 4, 0);
    }
}
