//! Epoch-aware shuffled batch sampling.
//!
//! SMA consumes "a set of batches" and removes each batch as a learner
//! takes it (Algorithm 1, lines 6–7); an epoch ends when the set is empty.
//! [`BatchSampler`] provides exactly that: a shuffled permutation of the
//! dataset handed out in batch-sized index blocks, reshuffled every epoch.

use crossbow_tensor::{Rng, RngState};

/// Hands out shuffled index batches, tracking epoch boundaries.
#[derive(Clone, Debug)]
pub struct BatchSampler {
    n: usize,
    batch: usize,
    order: Vec<usize>,
    pos: usize,
    epoch: usize,
    rng: Rng,
    drop_last: bool,
}

impl BatchSampler {
    /// Creates a sampler over `n` samples with the given batch size.
    ///
    /// `drop_last` discards a final partial batch (the common training
    /// setting, and what keeps every learning task the same shape).
    ///
    /// # Panics
    /// Panics when `batch == 0`, `n == 0`, or `drop_last` would discard
    /// everything (`batch > n`).
    pub fn new(n: usize, batch: usize, drop_last: bool, seed: u64) -> Self {
        assert!(n > 0, "empty dataset");
        assert!(batch > 0, "zero batch size");
        assert!(
            !drop_last || batch <= n,
            "batch {batch} larger than dataset {n} with drop_last"
        );
        let mut rng = Rng::new(seed);
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        BatchSampler {
            n,
            batch,
            order,
            pos: 0,
            epoch: 0,
            rng,
            drop_last,
        }
    }

    /// Batch size.
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Completed epochs (starts at 0; increments when the permutation is
    /// exhausted and reshuffled).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        if self.drop_last {
            self.n / self.batch
        } else {
            self.n.div_ceil(self.batch)
        }
    }

    /// The resume cursor: `(epoch, batches_drawn_in_epoch)`. Feeding it to
    /// [`BatchSampler::seek`] on a fresh sampler with the same seed
    /// reproduces the exact sample stream from this point onward.
    pub fn cursor(&self) -> (usize, usize) {
        (self.epoch, self.pos.div_ceil(self.batch))
    }

    /// Fast-forwards a *fresh* sampler (same `n`, `batch`, seed) to the
    /// position a cursor was taken at. Exact because the RNG is consumed
    /// only at reshuffles — one in `new` plus one per completed epoch — so
    /// replaying `epoch` shuffles and setting the intra-epoch offset lands
    /// on the identical permutation and stream position.
    pub fn seek(&mut self, epoch: usize, batches_drawn: usize) {
        for _ in 0..epoch {
            self.rng.shuffle(&mut self.order);
        }
        self.epoch = epoch;
        self.pos = (batches_drawn * self.batch).min(self.n);
    }

    /// Raw RNG state, exported for checkpoint integrity checks.
    pub fn rng_state(&self) -> RngState {
        self.rng.export_state()
    }

    /// Returns the next batch of sample indices, reshuffling at epoch
    /// boundaries. The returned epoch number is the epoch this batch
    /// belongs to.
    pub fn next_batch(&mut self) -> (Vec<usize>, usize) {
        let remaining = self.n - self.pos;
        let boundary = if self.drop_last {
            remaining < self.batch
        } else {
            remaining == 0
        };
        if boundary {
            self.epoch += 1;
            self.rng.shuffle(&mut self.order);
            self.pos = 0;
        }
        let end = (self.pos + self.batch).min(self.n);
        let batch = self.order[self.pos..end].to_vec();
        let epoch = self.epoch;
        self.pos = end;
        (batch, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_sample_each_epoch() {
        let mut s = BatchSampler::new(10, 3, false, 1);
        let mut seen = vec![0usize; 10];
        for _ in 0..s.batches_per_epoch() {
            let (b, e) = s.next_batch();
            assert_eq!(e, 0);
            for i in b {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn drop_last_trims_partial_batches() {
        let mut s = BatchSampler::new(10, 3, true, 1);
        assert_eq!(s.batches_per_epoch(), 3);
        for _ in 0..3 {
            let (b, e) = s.next_batch();
            assert_eq!(b.len(), 3);
            assert_eq!(e, 0);
        }
        let (_, e) = s.next_batch();
        assert_eq!(e, 1, "fourth batch starts epoch 1");
    }

    #[test]
    fn epochs_reshuffle() {
        let mut s = BatchSampler::new(64, 64, true, 2);
        let (b0, _) = s.next_batch();
        let (b1, e1) = s.next_batch();
        assert_eq!(e1, 1);
        assert_ne!(b0, b1, "reshuffled order should differ");
        let mut sorted = b1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = BatchSampler::new(20, 4, true, 9);
        let mut b = BatchSampler::new(20, 4, true, 9);
        for _ in 0..12 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    fn seek_reproduces_the_stream_mid_epoch() {
        let mut a = BatchSampler::new(20, 4, true, 7);
        // Draw into the middle of epoch 2.
        for _ in 0..12 {
            a.next_batch();
        }
        let (epoch, batches) = a.cursor();
        assert_eq!((epoch, batches), (2, 2));
        let mut b = BatchSampler::new(20, 4, true, 7);
        b.seek(epoch, batches);
        assert_eq!(a.rng_state(), b.rng_state(), "RNG streams aligned");
        for _ in 0..15 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    fn seek_to_end_of_epoch_matches_exhausted_sampler() {
        let mut a = BatchSampler::new(12, 4, true, 3);
        for _ in 0..3 {
            a.next_batch();
        }
        // pos == n: the boundary fires on the *next* draw in both.
        let (epoch, batches) = a.cursor();
        assert_eq!((epoch, batches), (0, 3));
        let mut b = BatchSampler::new(12, 4, true, 3);
        b.seek(epoch, batches);
        for _ in 0..8 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    fn seek_to_zero_is_a_fresh_sampler() {
        let mut a = BatchSampler::new(10, 5, true, 11);
        let mut b = BatchSampler::new(10, 5, true, 11);
        b.seek(0, 0);
        for _ in 0..6 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    #[should_panic(expected = "larger than dataset")]
    fn oversized_batch_with_drop_last_rejected() {
        let _ = BatchSampler::new(5, 8, true, 0);
    }

    #[test]
    fn oversized_batch_without_drop_last_is_one_batch() {
        let mut s = BatchSampler::new(5, 8, false, 0);
        let (b, _) = s.next_batch();
        assert_eq!(b.len(), 5);
        assert_eq!(s.batches_per_epoch(), 1);
    }
}
