//! A minimal little-endian byte codec and the FNV-1a/64 checksum.
//!
//! The format must be stable across compilers and platforms, so every
//! multi-byte value is written explicitly little-endian; floats travel as
//! their IEEE-754 bit patterns, which is what makes restored state
//! bit-exact rather than merely close.

/// FNV-1a, 64-bit: small, dependency-free, and plenty to detect the
/// truncations and bit flips checkpointing cares about (this is integrity
/// checking, not cryptography).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Appends little-endian primitives to a byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f32` as its bit pattern.
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Writes an `f64` as its bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes an optional `u64` (presence byte + value).
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Writes an optional `f32` (presence byte + bit pattern).
    pub fn opt_f32(&mut self, v: Option<f32>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.f32(x);
            }
            None => self.u8(0),
        }
    }

    /// Writes a length-prefixed `f32` slice.
    pub fn f32_slice(&mut self, v: &[f32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f32(x);
        }
    }

    /// Writes a length-prefixed list of `f32` vectors.
    pub fn f32_slices(&mut self, v: &[Vec<f32>]) {
        self.u64(v.len() as u64);
        for x in v {
            self.f32_slice(x);
        }
    }

    /// Writes a length-prefixed `f64` slice.
    pub fn f64_slice(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f64(x);
        }
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Writes a length-prefixed opaque byte slice. Used by the distributed
    /// runtime to nest an already-encoded payload (e.g. a full checkpoint)
    /// inside a wire message.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
}

/// A decode failure: the payload ended early or held an invalid value.
/// Decoding never panics — corrupt bytes must surface as an error the
/// loader can fall back from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed checkpoint payload: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Reads little-endian primitives back out of a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(DecodeError("unexpected end of payload"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads an `f32` from its bit pattern.
    pub fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length bounded by the bytes that could plausibly remain, so
    /// a corrupt length cannot drive an enormous allocation.
    fn len(&mut self, elem_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u64()?;
        let remaining = (self.bytes.len() - self.pos) / elem_bytes.max(1);
        if n as usize > remaining {
            return Err(DecodeError("length prefix exceeds payload"));
        }
        Ok(n as usize)
    }

    /// Reads an optional `u64`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(DecodeError("invalid option tag")),
        }
    }

    /// Reads an optional `f32`.
    pub fn opt_f32(&mut self) -> Result<Option<f32>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f32()?)),
            _ => Err(DecodeError("invalid option tag")),
        }
    }

    /// Reads a length-prefixed `f32` vector.
    pub fn f32_vec(&mut self) -> Result<Vec<f32>, DecodeError> {
        let n = self.len(4)?;
        (0..n).map(|_| self.f32()).collect()
    }

    /// Reads a length-prefixed list of `f32` vectors.
    pub fn f32_vecs(&mut self) -> Result<Vec<Vec<f32>>, DecodeError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f32_vec()).collect()
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, DecodeError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError("invalid UTF-8"))
    }

    /// Reads a length-prefixed opaque byte vector.
    pub fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.len(1)?;
        Ok(self.take(n)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f32(-0.0);
        w.f64(f64::NAN);
        w.opt_u64(Some(42));
        w.opt_u64(None);
        w.opt_f32(Some(1.5));
        w.str("resumé");
        w.f32_slice(&[1.0, f32::INFINITY, -3.25]);
        w.f64_slice(&[0.125]);
        w.f32_slices(&[vec![1.0], vec![], vec![2.0, 3.0]]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.opt_u64().unwrap(), Some(42));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_f32().unwrap(), Some(1.5));
        assert_eq!(r.str().unwrap(), "resumé");
        assert_eq!(r.f32_vec().unwrap(), vec![1.0, f32::INFINITY, -3.25]);
        assert_eq!(r.f64_vec().unwrap(), vec![0.125]);
        assert_eq!(
            r.f32_vecs().unwrap(),
            vec![vec![1.0], vec![], vec![2.0, 3.0]]
        );
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_payload_errors_instead_of_panicking() {
        let mut w = Writer::new();
        w.f32_slice(&[1.0, 2.0, 3.0]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.f32_vec().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // absurd element count
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).f32_vec().is_err());
        assert!(Reader::new(&bytes).f32_vecs().is_err());
        assert!(Reader::new(&bytes).str().is_err());
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Published FNV-1a/64 test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn fnv_detects_single_bit_flips() {
        let mut w = Writer::new();
        w.f32_slice(&[0.5; 64]);
        let bytes = w.into_bytes();
        let base = fnv1a64(&bytes);
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 1;
            assert_ne!(fnv1a64(&flipped), base, "flip at byte {i} undetected");
        }
    }
}
