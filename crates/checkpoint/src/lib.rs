//! Crash-consistent checkpointing for long training runs.
//!
//! A host crash must not cost a multi-day run more than the interval since
//! the last checkpoint, and a resumed run must be *bit-exact*: the same
//! seed produces the same `TrainingCurve` whether or not the process died
//! half-way. This crate provides the durable half of that guarantee:
//!
//! * [`TrainingState`] — everything the trainer needs to re-enter the
//!   training loop exactly where it left off: the algorithm snapshot
//!   (centre, momentum history, replicas, optimiser aux buffers, τ phase),
//!   the data-pipeline cursor (shuffle epoch + batch index), every RNG
//!   stream's raw state, the divergence-guard checkpoint, loss/accuracy
//!   accumulators and the auto-tuner's learner count;
//! * [`write_checkpoint`] / [`read_checkpoint`] — a versioned, checksummed
//!   binary format written *atomically*: temp file → fsync → rename →
//!   directory fsync, so a crash mid-write can never leave a live
//!   checkpoint path with torn contents;
//! * [`CheckpointStore`] — a directory of checkpoints with a retention
//!   policy (keep the newest N plus every epoch-boundary checkpoint) and a
//!   [`CheckpointStore::load_latest`] that detects truncated or bit-flipped
//!   files and falls back to the most recent valid one.
//!
//! The crate has no registry dependencies (the encoder is a hand-rolled
//! little-endian byte codec, the checksum FNV-1a/64), matching the
//! workspace's offline-build rule.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod state;
pub mod store;

pub use state::{AlgoState, DataCursor, TrainingState};
pub use store::{
    read_checkpoint, write_checkpoint, CheckpointError, CheckpointStore, Loaded, RetentionPolicy,
    FORMAT_VERSION, MAGIC,
};
