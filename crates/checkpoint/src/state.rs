//! The checkpointed training state and its binary encoding.

use crate::codec::{DecodeError, Reader, Writer};
use crossbow_tensor::RngState;

/// Position of the data pipeline: which shuffle epoch the sampler is in
/// and how many batches of it have been handed out. Replaying the
/// per-epoch reshuffles from the seed and skipping `batch` batches puts a
/// fresh sampler in exactly this position, so resume restarts mid-epoch at
/// the right batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DataCursor {
    /// Shuffle epoch the sampler is positioned in.
    pub epoch: u64,
    /// Batches (lockstep rounds, when partitioned) already drawn within
    /// that epoch.
    pub batch: u64,
    /// Partition groups the sampler was split into; 0 = unpartitioned
    /// (a single `BatchSampler`). A resume refuses a mismatch, since the
    /// index streams of a partitioned and an unpartitioned run differ.
    pub groups: u64,
}

/// A synchronisation algorithm's complete state: the fields of an
/// `AlgoSnapshot`, flattened for serialisation. `aux` carries whatever
/// per-algorithm extras exist beyond centre/replicas — S-SGD's optimiser
/// velocity, hierarchical SMA's per-group reference models.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AlgoState {
    /// The consensus / central average model `z`.
    pub center: Vec<f32>,
    /// `z_prev`, carrying the Polyak momentum history.
    pub center_prev: Vec<f32>,
    /// All replicas.
    pub replicas: Vec<Vec<f32>>,
    /// Algorithm-specific auxiliary buffers (momentum, references, …).
    pub aux: Vec<Vec<f32>>,
    /// The iteration counter (the τ phase).
    pub iter: u64,
}

/// Everything a crashed run needs to continue bit-exactly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrainingState {
    /// Master seed of the run; a resume under a different seed is refused.
    pub seed: u64,
    /// Algorithm name, as a consistency check at restore time.
    pub algorithm: String,
    /// Applied synchronisation iterations so far.
    pub iterations: u64,
    /// Training samples consumed so far.
    pub samples_processed: u64,
    /// Loop passes so far (counts discarded NaN attempts too, so the
    /// deterministic fault-injection hooks stay aligned after resume).
    pub attempt: u64,
    /// Current epoch of the learning-rate schedule.
    pub current_epoch: u64,
    /// Running loss sum of the unfinished epoch.
    pub epoch_loss_sum: f64,
    /// Running loss count of the unfinished epoch.
    pub epoch_loss_count: u64,
    /// Best epoch-end accuracy so far (the guard's collapse baseline).
    pub best_accuracy: f64,
    /// Divergence-guard rollbacks performed so far.
    pub rollbacks: u32,
    /// Epoch at which the TTA target was met, when it already was.
    pub epochs_to_target: Option<u64>,
    /// Accuracy after each completed epoch.
    pub epoch_accuracy: Vec<f64>,
    /// Mean training loss of each completed epoch.
    pub epoch_loss: Vec<f32>,
    /// Data-pipeline position.
    pub cursor: DataCursor,
    /// The algorithm's full state.
    pub algo: AlgoState,
    /// The divergence guard's in-memory checkpoint, when the guard is on.
    pub guard: Option<AlgoState>,
    /// Raw state of every RNG stream the run owns, in a driver-defined
    /// order (the synchronous trainer stores its sampler stream first).
    pub rngs: Vec<RngState>,
    /// Auto-tuned learners per GPU, so a resumed session skips re-tuning;
    /// 0 = unknown / not applicable.
    pub learners_per_gpu: u32,
}

fn write_algo(w: &mut Writer, a: &AlgoState) {
    w.f32_slice(&a.center);
    w.f32_slice(&a.center_prev);
    w.f32_slices(&a.replicas);
    w.f32_slices(&a.aux);
    w.u64(a.iter);
}

fn read_algo(r: &mut Reader<'_>) -> Result<AlgoState, DecodeError> {
    Ok(AlgoState {
        center: r.f32_vec()?,
        center_prev: r.f32_vec()?,
        replicas: r.f32_vecs()?,
        aux: r.f32_vecs()?,
        iter: r.u64()?,
    })
}

impl TrainingState {
    /// Serialises the state to the stable little-endian payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.seed);
        w.str(&self.algorithm);
        w.u64(self.iterations);
        w.u64(self.samples_processed);
        w.u64(self.attempt);
        w.u64(self.current_epoch);
        w.f64(self.epoch_loss_sum);
        w.u64(self.epoch_loss_count);
        w.f64(self.best_accuracy);
        w.u32(self.rollbacks);
        w.opt_u64(self.epochs_to_target);
        w.f64_slice(&self.epoch_accuracy);
        w.f32_slice(&self.epoch_loss);
        w.u64(self.cursor.epoch);
        w.u64(self.cursor.batch);
        w.u64(self.cursor.groups);
        write_algo(&mut w, &self.algo);
        match &self.guard {
            Some(g) => {
                w.u8(1);
                write_algo(&mut w, g);
            }
            None => w.u8(0),
        }
        w.u64(self.rngs.len() as u64);
        for rng in &self.rngs {
            w.u64(rng.state);
            w.u64(rng.inc);
            w.opt_f32(rng.spare_normal);
        }
        w.u32(self.learners_per_gpu);
        w.into_bytes()
    }

    /// Deserialises a payload produced by [`TrainingState::encode`].
    /// Rejects trailing garbage as well as truncation, so any corruption
    /// the checksum somehow missed still cannot produce a silently wrong
    /// state.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let seed = r.u64()?;
        let algorithm = r.str()?;
        let iterations = r.u64()?;
        let samples_processed = r.u64()?;
        let attempt = r.u64()?;
        let current_epoch = r.u64()?;
        let epoch_loss_sum = r.f64()?;
        let epoch_loss_count = r.u64()?;
        let best_accuracy = r.f64()?;
        let rollbacks = r.u32()?;
        let epochs_to_target = r.opt_u64()?;
        let epoch_accuracy = r.f64_vec()?;
        let epoch_loss = r.f32_vec()?;
        let cursor = DataCursor {
            epoch: r.u64()?,
            batch: r.u64()?,
            groups: r.u64()?,
        };
        let algo = read_algo(&mut r)?;
        let guard = match r.u8()? {
            0 => None,
            1 => Some(read_algo(&mut r)?),
            _ => return Err(DecodeError("invalid guard tag")),
        };
        let n_rngs = r.u64()?;
        let mut rngs = Vec::new();
        for _ in 0..n_rngs {
            rngs.push(RngState {
                state: r.u64()?,
                inc: r.u64()?,
                spare_normal: r.opt_f32()?,
            });
        }
        let learners_per_gpu = r.u32()?;
        if !r.is_empty() {
            return Err(DecodeError("trailing bytes after payload"));
        }
        Ok(TrainingState {
            seed,
            algorithm,
            iterations,
            samples_processed,
            attempt,
            current_epoch,
            epoch_loss_sum,
            epoch_loss_count,
            best_accuracy,
            rollbacks,
            epochs_to_target,
            epoch_accuracy,
            epoch_loss,
            cursor,
            algo,
            guard,
            rngs,
            learners_per_gpu,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> TrainingState {
        TrainingState {
            seed: 42,
            algorithm: "sma".to_string(),
            iterations: 123,
            samples_processed: 123 * 32,
            attempt: 125,
            current_epoch: 3,
            epoch_loss_sum: 17.25,
            epoch_loss_count: 9,
            best_accuracy: 0.91,
            rollbacks: 1,
            epochs_to_target: Some(2),
            epoch_accuracy: vec![0.5, 0.8, 0.91],
            epoch_loss: vec![1.2, 0.6, 0.3],
            cursor: DataCursor {
                epoch: 3,
                batch: 7,
                groups: 2,
            },
            algo: AlgoState {
                center: vec![1.0, -2.0],
                center_prev: vec![0.5, -1.5],
                replicas: vec![vec![1.1, -2.1], vec![0.9, -1.9]],
                aux: vec![vec![0.01, -0.02]],
                iter: 123,
            },
            guard: Some(AlgoState {
                center: vec![0.0, 0.0],
                center_prev: vec![0.0, 0.0],
                replicas: vec![vec![0.0, 0.0]],
                aux: vec![],
                iter: 100,
            }),
            rngs: vec![crossbow_tensor::RngState {
                state: 99,
                inc: 101,
                spare_normal: Some(-0.75),
            }],
            learners_per_gpu: 4,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let state = sample_state();
        let decoded = TrainingState::decode(&state.encode()).expect("decodes");
        assert_eq!(decoded, state);
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample_state().encode();
        for cut in 0..bytes.len() {
            assert!(
                TrainingState::decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_state().encode();
        bytes.push(0);
        assert!(TrainingState::decode(&bytes).is_err());
    }

    #[test]
    fn default_state_round_trips() {
        let state = TrainingState::default();
        assert_eq!(TrainingState::decode(&state.encode()).unwrap(), state);
    }
}
