//! The on-disk checkpoint format and directory store.
//!
//! ## File layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "CBWCKPT\x01"
//! 8       4     format version (little-endian u32)
//! 12      4     flags  (bit 0 = epoch-boundary checkpoint)
//! 16      8     payload length in bytes
//! 24      8     FNV-1a/64 checksum of the payload
//! 32      n     payload ([`TrainingState::encode`])
//! ```
//!
//! ## Atomicity
//!
//! A checkpoint is written to `<name>.tmp` in the same directory, the file
//! is fsynced, renamed over the final name, and the directory is fsynced.
//! A crash at any point leaves either the previous state (no final file,
//! or the old one) or the complete new file — never a torn live
//! checkpoint. A stray `.tmp` from a crash mid-write is ignored by the
//! loader and overwritten by the next save.
//!
//! ## Corruption handling
//!
//! [`CheckpointStore::load_latest`] walks checkpoints newest-first and
//! returns the first one that passes *all* validation (magic, version,
//! length, checksum, payload decode), recording the paths it had to skip.
//! A truncated or bit-flipped newest checkpoint therefore costs the
//! iterations since the previous one, not the run.

use crate::codec::fnv1a64;
use crate::state::TrainingState;
use crossbow_telemetry::MetricsRegistry;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Magic bytes opening every checkpoint file.
pub const MAGIC: [u8; 8] = *b"CBWCKPT\x01";

/// Current format version. Version 2 added the partition-group count to
/// the data cursor; version-1 checkpoints are refused (the payload is not
/// forward-decodable) and a run restarts from scratch.
pub const FORMAT_VERSION: u32 = 2;

const HEADER_LEN: usize = 32;
const FLAG_EPOCH_BOUNDARY: u32 = 1;
const FILE_EXT: &str = "cbck";

/// Why a checkpoint could not be written or read.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file exists but is not a valid checkpoint (truncated, bit
    /// flipped, wrong magic or version, undecodable payload).
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn corrupt(why: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt(why.into())
}

/// Writes `state` to `path` atomically (temp file → fsync → rename →
/// directory fsync). Returns the number of bytes written (header +
/// payload).
///
/// # Errors
/// Returns [`CheckpointError::Io`] when any filesystem step fails.
pub fn write_checkpoint(
    path: &Path,
    state: &TrainingState,
    epoch_boundary: bool,
) -> Result<usize, CheckpointError> {
    let payload = state.encode();
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    let flags = if epoch_boundary {
        FLAG_EPOCH_BOUNDARY
    } else {
        0
    };
    bytes.extend_from_slice(&flags.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself: fsync the containing directory (no-op on
    // platforms where directories cannot be opened, e.g. Windows).
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(bytes.len())
}

/// Reads and fully validates a checkpoint file, returning the state and
/// whether it was an epoch-boundary checkpoint.
///
/// # Errors
/// [`CheckpointError::Io`] when the file cannot be read;
/// [`CheckpointError::Corrupt`] when any validation step fails.
pub fn read_checkpoint(path: &Path) -> Result<(TrainingState, bool), CheckpointError> {
    let bytes = fs::read(path)?;
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(format!(
            "{} bytes is shorter than the header",
            bytes.len()
        )));
    }
    if bytes[0..8] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4"));
    if version != FORMAT_VERSION {
        return Err(corrupt(format!("unsupported format version {version}")));
    }
    let flags = u32::from_le_bytes(bytes[12..16].try_into().expect("4"));
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8")) as usize;
    let checksum = u64::from_le_bytes(bytes[24..32].try_into().expect("8"));
    if bytes.len() != HEADER_LEN + payload_len {
        return Err(corrupt(format!(
            "file is {} bytes, header promises {}",
            bytes.len(),
            HEADER_LEN + payload_len
        )));
    }
    let payload = &bytes[HEADER_LEN..];
    if fnv1a64(payload) != checksum {
        return Err(corrupt("checksum mismatch"));
    }
    let state = TrainingState::decode(payload).map_err(|e| corrupt(e.to_string()))?;
    Ok((state, flags & FLAG_EPOCH_BOUNDARY != 0))
}

/// Which checkpoints survive a retention sweep.
#[derive(Clone, Copy, Debug)]
pub struct RetentionPolicy {
    /// Keep the newest (highest-iteration) this many checkpoints.
    pub keep_last: usize,
    /// Additionally keep every epoch-boundary checkpoint.
    pub keep_epoch_boundaries: bool,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy {
            keep_last: 3,
            keep_epoch_boundaries: true,
        }
    }
}

/// A successfully loaded checkpoint.
#[derive(Clone, Debug)]
pub struct Loaded {
    /// The restored state.
    pub state: TrainingState,
    /// The file it came from.
    pub path: PathBuf,
    /// Whether the file was an epoch-boundary checkpoint.
    pub epoch_boundary: bool,
    /// Newer files that were skipped because they failed validation.
    pub skipped: Vec<PathBuf>,
}

/// One directory entry: a parsed checkpoint filename.
#[derive(Clone, Debug)]
struct Entry {
    path: PathBuf,
    iterations: u64,
    epoch_boundary: bool,
}

/// A directory of checkpoints with a retention policy.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    retention: RetentionPolicy,
    /// When set, every save reports its size and latency here.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl CheckpointStore {
    /// Opens (creating if needed) the checkpoint directory.
    ///
    /// # Errors
    /// Returns [`CheckpointError::Io`] when the directory cannot be
    /// created.
    pub fn open(
        dir: impl Into<PathBuf>,
        retention: RetentionPolicy,
    ) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            retention,
            metrics: None,
        })
    }

    /// Attaches a metrics registry (builder style). Every subsequent
    /// [`CheckpointStore::save`] updates `checkpoint.writes` /
    /// `checkpoint.bytes` counters, a `checkpoint.last_bytes` gauge and
    /// a `checkpoint.write_latency_us` histogram in it.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The filename of the checkpoint at `iterations`. Epoch-boundary
    /// checkpoints get a distinct name so a periodic checkpoint at the
    /// same iteration cannot clobber one the retention policy must keep.
    fn file_name(iterations: u64, epoch_boundary: bool) -> String {
        if epoch_boundary {
            format!("ckpt-{iterations:012}-epoch.{FILE_EXT}")
        } else {
            format!("ckpt-{iterations:012}.{FILE_EXT}")
        }
    }

    fn parse_name(name: &str) -> Option<(u64, bool)> {
        let stem = name
            .strip_prefix("ckpt-")?
            .strip_suffix(&format!(".{FILE_EXT}"))?;
        match stem.strip_suffix("-epoch") {
            Some(digits) => Some((digits.parse().ok()?, true)),
            None => Some((stem.parse().ok()?, false)),
        }
    }

    /// Every checkpoint file in the directory, oldest first (by iteration;
    /// an epoch-boundary file sorts after a periodic one of the same
    /// iteration, matching the order the trainer writes them in).
    fn entries(&self) -> Result<Vec<Entry>, CheckpointError> {
        let mut entries = Vec::new();
        for item in fs::read_dir(&self.dir)? {
            let item = item?;
            let name = item.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some((iterations, epoch_boundary)) = Self::parse_name(name) {
                entries.push(Entry {
                    path: item.path(),
                    iterations,
                    epoch_boundary,
                });
            }
        }
        entries.sort_by_key(|e| (e.iterations, e.epoch_boundary));
        Ok(entries)
    }

    /// Every checkpoint path, oldest first.
    ///
    /// # Errors
    /// Returns [`CheckpointError::Io`] when the directory cannot be read.
    pub fn list(&self) -> Result<Vec<PathBuf>, CheckpointError> {
        Ok(self.entries()?.into_iter().map(|e| e.path).collect())
    }

    /// Writes a checkpoint of `state` atomically, then applies the
    /// retention policy. Returns the path written.
    ///
    /// # Errors
    /// Returns [`CheckpointError::Io`] when writing fails; a failed
    /// retention delete is ignored (stale files cost disk, not
    /// correctness).
    pub fn save(
        &self,
        state: &TrainingState,
        epoch_boundary: bool,
    ) -> Result<PathBuf, CheckpointError> {
        let path = self
            .dir
            .join(Self::file_name(state.iterations, epoch_boundary));
        let started = Instant::now();
        let bytes = write_checkpoint(&path, state, epoch_boundary)?;
        if let Some(metrics) = &self.metrics {
            metrics.counter("checkpoint.writes").inc();
            metrics.counter("checkpoint.bytes").add(bytes as u64);
            metrics.gauge("checkpoint.last_bytes").set(bytes as u64);
            metrics
                .histogram("checkpoint.write_latency_us")
                .record(started.elapsed());
        }
        self.sweep()?;
        Ok(path)
    }

    /// Deletes checkpoints the retention policy no longer keeps.
    fn sweep(&self) -> Result<(), CheckpointError> {
        let entries = self.entries()?;
        let keep_from = entries
            .len()
            .saturating_sub(self.retention.keep_last.max(1));
        for (i, entry) in entries.iter().enumerate() {
            let newest = i >= keep_from;
            let boundary_kept = self.retention.keep_epoch_boundaries && entry.epoch_boundary;
            if !newest && !boundary_kept {
                let _ = fs::remove_file(&entry.path);
            }
        }
        Ok(())
    }

    /// Loads the newest valid checkpoint, skipping corrupt files.
    ///
    /// Returns `Ok(None)` when the directory holds no checkpoints at all;
    /// returns the corruption error only when *every* present checkpoint
    /// fails validation (the caller then knows durable state existed but
    /// none of it is usable).
    ///
    /// # Errors
    /// [`CheckpointError::Io`] when the directory cannot be read, or the
    /// last file's error when no checkpoint validates.
    pub fn load_latest(&self) -> Result<Option<Loaded>, CheckpointError> {
        let entries = self.entries()?;
        if entries.is_empty() {
            return Ok(None);
        }
        let mut skipped = Vec::new();
        let mut last_err: Option<CheckpointError> = None;
        for entry in entries.iter().rev() {
            match read_checkpoint(&entry.path) {
                Ok((state, epoch_boundary)) => {
                    return Ok(Some(Loaded {
                        state,
                        path: entry.path.clone(),
                        epoch_boundary,
                        skipped,
                    }));
                }
                Err(e) => {
                    skipped.push(entry.path.clone());
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("non-empty entries with no success has an error"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{AlgoState, DataCursor};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch directory per test (no tempfile dependency).
    fn scratch(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("crossbow-ckpt-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn state_at(iterations: u64) -> TrainingState {
        TrainingState {
            seed: 7,
            algorithm: "sma".to_string(),
            iterations,
            samples_processed: iterations * 8,
            cursor: DataCursor {
                epoch: iterations / 10,
                batch: iterations % 10,
                groups: 0,
            },
            algo: AlgoState {
                center: vec![iterations as f32],
                center_prev: vec![0.0],
                replicas: vec![vec![1.0]],
                aux: vec![],
                iter: iterations,
            },
            ..TrainingState::default()
        }
    }

    #[test]
    fn save_load_round_trips() {
        let store =
            CheckpointStore::open(scratch("roundtrip"), RetentionPolicy::default()).expect("open");
        store.save(&state_at(10), false).expect("save");
        let loaded = store.load_latest().expect("load").expect("present");
        assert_eq!(loaded.state, state_at(10));
        assert!(!loaded.epoch_boundary);
        assert!(loaded.skipped.is_empty());
    }

    #[test]
    fn empty_store_loads_none() {
        let store =
            CheckpointStore::open(scratch("empty"), RetentionPolicy::default()).expect("open");
        assert!(store.load_latest().expect("ok").is_none());
    }

    #[test]
    fn latest_wins_and_no_temp_files_remain() {
        let store =
            CheckpointStore::open(scratch("latest"), RetentionPolicy::default()).expect("open");
        for i in [5u64, 15, 10] {
            store.save(&state_at(i), false).expect("save");
        }
        let loaded = store.load_latest().expect("load").expect("present");
        assert_eq!(loaded.state.iterations, 15);
        let stray_tmp = fs::read_dir(store.dir())
            .expect("readdir")
            .filter_map(|e| e.ok())
            .any(|e| e.path().extension().is_some_and(|x| x == "tmp"));
        assert!(!stray_tmp, "atomic write must clean up its temp file");
    }

    #[test]
    fn truncated_checkpoint_falls_back_to_previous() {
        let store =
            CheckpointStore::open(scratch("trunc"), RetentionPolicy::default()).expect("open");
        store.save(&state_at(10), false).expect("save");
        let newest = store.save(&state_at(20), false).expect("save");
        let full = fs::read(&newest).expect("read");
        fs::write(&newest, &full[..full.len() / 2]).expect("truncate");
        let loaded = store.load_latest().expect("load").expect("present");
        assert_eq!(loaded.state.iterations, 10, "fell back past the torn file");
        assert_eq!(loaded.skipped, vec![newest]);
    }

    #[test]
    fn bit_flip_falls_back_to_previous() {
        let store =
            CheckpointStore::open(scratch("flip"), RetentionPolicy::default()).expect("open");
        store.save(&state_at(10), false).expect("save");
        let newest = store.save(&state_at(20), false).expect("save");
        let mut bytes = fs::read(&newest).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&newest, &bytes).expect("rewrite");
        let loaded = store.load_latest().expect("load").expect("present");
        assert_eq!(loaded.state.iterations, 10);
        assert_eq!(loaded.skipped.len(), 1);
    }

    #[test]
    fn all_corrupt_is_an_error_not_a_fresh_start() {
        let store =
            CheckpointStore::open(scratch("allbad"), RetentionPolicy::default()).expect("open");
        let path = store.save(&state_at(10), false).expect("save");
        fs::write(&path, b"junk").expect("clobber");
        match store.load_latest() {
            Err(CheckpointError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn retention_keeps_newest_and_epoch_boundaries() {
        let store = CheckpointStore::open(
            scratch("retain"),
            RetentionPolicy {
                keep_last: 2,
                keep_epoch_boundaries: true,
            },
        )
        .expect("open");
        store.save(&state_at(10), true).expect("save"); // epoch boundary
        for i in [20u64, 30, 40, 50] {
            store.save(&state_at(i), false).expect("save");
        }
        let names: Vec<String> = store
            .list()
            .expect("list")
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec![
                "ckpt-000000000010-epoch.cbck",
                "ckpt-000000000040.cbck",
                "ckpt-000000000050.cbck",
            ]
        );
    }

    #[test]
    fn retention_without_boundary_keeping_prunes_them_too() {
        let store = CheckpointStore::open(
            scratch("noboundary"),
            RetentionPolicy {
                keep_last: 1,
                keep_epoch_boundaries: false,
            },
        )
        .expect("open");
        store.save(&state_at(10), true).expect("save");
        store.save(&state_at(20), false).expect("save");
        let list = store.list().expect("list");
        assert_eq!(list.len(), 1);
        assert_eq!(
            list[0].file_name().unwrap().to_string_lossy(),
            "ckpt-000000000020.cbck"
        );
    }

    #[test]
    fn version_mismatch_is_corrupt() {
        let store =
            CheckpointStore::open(scratch("version"), RetentionPolicy::default()).expect("open");
        let path = store.save(&state_at(10), false).expect("save");
        let mut bytes = fs::read(&path).expect("read");
        bytes[8] = 0xFF; // version field
        fs::write(&path, &bytes).expect("rewrite");
        match read_checkpoint(&path) {
            Err(CheckpointError::Corrupt(why)) => {
                assert!(why.contains("version"), "{why}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn save_reports_bytes_and_latency_metrics() {
        let metrics = Arc::new(MetricsRegistry::new());
        let store = CheckpointStore::open(scratch("metrics"), RetentionPolicy::default())
            .expect("open")
            .with_metrics(Arc::clone(&metrics));
        store.save(&state_at(10), false).expect("save");
        let path = store.save(&state_at(20), false).expect("save");
        let on_disk = fs::metadata(&path).expect("stat").len();
        assert_eq!(metrics.counter("checkpoint.writes").get(), 2);
        assert!(metrics.counter("checkpoint.bytes").get() >= on_disk);
        assert_eq!(metrics.gauge("checkpoint.last_bytes").get(), on_disk);
        assert_eq!(
            metrics
                .histogram("checkpoint.write_latency_us")
                .snapshot()
                .total(),
            2
        );
    }

    #[test]
    fn foreign_files_are_ignored() {
        let store =
            CheckpointStore::open(scratch("foreign"), RetentionPolicy::default()).expect("open");
        fs::write(store.dir().join("README.txt"), b"not a checkpoint").expect("write");
        store.save(&state_at(10), false).expect("save");
        assert_eq!(store.list().expect("list").len(), 1);
        assert!(store.load_latest().expect("load").is_some());
    }
}
