//! Mmap-backed shard readers and the multi-shard dataset view.

use crate::error::{corrupt, ShardError};
use crate::format::{decode_header, DatasetMeta, PageEntry, FILE_EXT, FLAG_SEALED, HEADER_LEN};
use crate::mmap::Mapping;
use crossbow_checkpoint::codec::fnv1a64;
use crossbow_data::{DataError, SampleSource};
use crossbow_telemetry::MetricsRegistry;
use crossbow_tensor::{Shape, Tensor};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One validated, memory-mapped shard file.
pub struct ShardReader {
    map: Mapping,
    meta: DatasetMeta,
    shard_index: u32,
    samples: usize,
    page_samples: usize,
    pages: Vec<PageEntry>,
    path: PathBuf,
}

impl std::fmt::Debug for ShardReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardReader")
            .field("path", &self.path)
            .field("shard_index", &self.shard_index)
            .field("samples", &self.samples)
            .field("mmap", &self.map.is_mmap())
            .finish_non_exhaustive()
    }
}

impl ShardReader {
    /// Opens and *fully validates* a sealed shard: header checksum,
    /// index checksum, page-table geometry and every page checksum. All
    /// offsets are bounds-checked against the mapped length, so any
    /// corruption — truncation, a flipped bit, a stale version — yields
    /// a typed [`ShardError`], never a fault through the mapping.
    ///
    /// # Errors
    /// [`ShardError::Io`] when the file cannot be opened;
    /// [`ShardError::Version`] for a foreign format version;
    /// [`ShardError::Corrupt`] for any other validation failure.
    pub fn open(path: &Path) -> Result<Self, ShardError> {
        let map = Mapping::open(path)?;
        let mut scratch = Vec::new();
        let head = map
            .bytes(0, HEADER_LEN.min(map.len()), &mut scratch)
            .map_err(|e| corrupt(e.to_string()))?;
        let header = decode_header(head)?;
        if header.flags & FLAG_SEALED == 0 {
            return Err(corrupt("shard was never sealed"));
        }
        let samples = usize::try_from(header.samples)
            .map_err(|_| corrupt("sample count overflows this platform"))?;
        let sample_len = header.meta.sample_len();
        let page_samples = header.page_samples as usize;

        // Index section: page count, entries, trailing checksum.
        let index_offset = usize::try_from(header.index_offset)
            .ok()
            .filter(|&o| o >= HEADER_LEN && o <= map.len())
            .ok_or_else(|| corrupt("index offset outside the file"))?;
        let mut count_buf = Vec::new();
        let count_bytes = map
            .bytes(index_offset, 4, &mut count_buf)
            .map_err(|e| corrupt(format!("index truncated: {e}")))?;
        let page_count = u32::from_le_bytes(count_bytes.try_into().expect("4")) as usize;
        let expected_pages = samples.div_ceil(page_samples);
        if page_count != expected_pages {
            return Err(corrupt(format!(
                "index lists {page_count} pages, {samples} samples at {page_samples}/page need \
                 {expected_pages}"
            )));
        }
        let table_len = 4 + page_count * 12;
        let mut table_buf = Vec::new();
        let table = map
            .bytes(index_offset, table_len, &mut table_buf)
            .map_err(|e| corrupt(format!("index truncated: {e}")))?;
        let mut sum_buf = Vec::new();
        let stored_sum = map
            .bytes(index_offset + table_len, 8, &mut sum_buf)
            .map_err(|e| corrupt(format!("index checksum truncated: {e}")))?;
        if fnv1a64(table) != u64::from_le_bytes(stored_sum.try_into().expect("8")) {
            return Err(corrupt("index checksum mismatch"));
        }
        let mut pages = Vec::with_capacity(page_count);
        let mut remaining = samples;
        let mut cursor = HEADER_LEN as u64;
        for p in 0..page_count {
            let at = 4 + p * 12;
            let offset = u64::from_le_bytes(table[at..at + 8].try_into().expect("8"));
            let n = u32::from_le_bytes(table[at + 8..at + 12].try_into().expect("4"));
            let expect_n = remaining.min(page_samples);
            if n as usize != expect_n || offset != cursor {
                return Err(corrupt(format!(
                    "page {p} geometry mismatch (offset {offset}, {n} samples)"
                )));
            }
            remaining -= n as usize;
            cursor += n as u64 * (4 + 4 * sample_len as u64) + 8;
            pages.push(PageEntry { offset, samples: n });
        }
        if cursor != index_offset as u64 {
            return Err(corrupt("pages do not meet the index section"));
        }

        // Verify every page checksum now, with bounds-checked reads, so
        // reads after open cannot trip over corruption.
        let mut page_buf = Vec::new();
        for (p, page) in pages.iter().enumerate() {
            let payload_len = page.samples as usize * (4 + 4 * sample_len);
            let offset = page.offset as usize;
            let payload = map
                .bytes(offset, payload_len, &mut page_buf)
                .map_err(|e| corrupt(format!("page {p} truncated: {e}")))?;
            let sum = fnv1a64(payload);
            let mut sum_buf = Vec::new();
            let stored = map
                .bytes(offset + payload_len, 8, &mut sum_buf)
                .map_err(|e| corrupt(format!("page {p} checksum truncated: {e}")))?;
            if sum != u64::from_le_bytes(stored.try_into().expect("8")) {
                return Err(corrupt(format!("page {p} checksum mismatch")));
            }
        }

        Ok(ShardReader {
            map,
            meta: header.meta,
            shard_index: header.shard_index,
            samples,
            page_samples,
            pages,
            path: path.to_path_buf(),
        })
    }

    /// Dataset metadata recorded in the header.
    pub fn meta(&self) -> &DatasetMeta {
        &self.meta
    }

    /// This shard's index within its set.
    pub fn shard_index(&self) -> u32 {
        self.shard_index
    }

    /// Samples in this shard.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Samples per full record page.
    pub fn page_samples(&self) -> usize {
        self.page_samples
    }

    /// The file this reader maps.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// File size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.map.len() as u64
    }

    /// Whether the OS mapping engaged (vs the positioned-read fallback).
    pub fn is_mmap(&self) -> bool {
        self.map.is_mmap()
    }

    fn locate(&self, local: usize) -> (usize, usize) {
        (local / self.page_samples, local % self.page_samples)
    }

    /// Label of local sample `local`.
    pub(crate) fn label(&self, local: usize) -> Result<usize, DataError> {
        let (p, li) = self.locate(local);
        let page = &self.pages[p];
        let mut buf = [0u8; 4];
        let offset = page.offset as usize + li * 4;
        self.map
            .read_into(offset, &mut buf)
            .map_err(|e| DataError::Io(e.to_string()))?;
        Ok(u32::from_le_bytes(buf) as usize)
    }

    /// Copies local sample `local`'s image into `dst` (bit-exact: the
    /// stored `f32` bit patterns). Returns the bytes read.
    pub(crate) fn copy_image(&self, local: usize, dst: &mut Vec<f32>) -> Result<u64, DataError> {
        let (p, li) = self.locate(local);
        let page = &self.pages[p];
        let sample_len = self.meta.sample_len();
        let offset = page.offset as usize + page.samples as usize * 4 + li * sample_len * 4;
        let mut scratch = Vec::new();
        let bytes = self
            .map
            .bytes(offset, sample_len * 4, &mut scratch)
            .map_err(|e| DataError::Io(e.to_string()))?;
        dst.extend(
            bytes
                .chunks_exact(4)
                .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("4")))),
        );
        Ok(sample_len as u64 * 4)
    }
}

/// A directory of sealed shards presented as one [`SampleSource`].
///
/// Opening walks `shard-*.cbws` in name (= shard-index) order, fully
/// validating each; shards that fail validation are *skipped* and
/// recorded — mirroring `load_latest`'s corruption fallback in
/// `crossbow-checkpoint` — so one flipped bit costs one shard's samples,
/// not the dataset. Global sample index `i` maps to (shard, local) by
/// cumulative counts; gathers are bit-identical to the in-memory
/// [`crossbow_data::Dataset`] the shards were packed from as long as no
/// shard was skipped.
pub struct ShardedDataset {
    shards: Vec<ShardReader>,
    /// `starts[s]` = global index of shard `s`'s first sample.
    starts: Vec<usize>,
    len: usize,
    meta: DatasetMeta,
    skipped: Vec<(PathBuf, ShardError)>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl std::fmt::Debug for ShardedDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDataset")
            .field("shards", &self.shards)
            .field("len", &self.len)
            .field("skipped", &self.skipped.len())
            .finish_non_exhaustive()
    }
}

impl ShardedDataset {
    /// Opens every valid shard under `dir`.
    ///
    /// # Errors
    /// [`ShardError::Io`] when the directory cannot be read;
    /// [`ShardError::Inconsistent`] when no valid shard remains (the
    /// last validation error is embedded) or when valid shards disagree
    /// on sample shape or class count.
    pub fn open(dir: &Path) -> Result<Self, ShardError> {
        Self::open_inner(dir, None)
    }

    /// As [`ShardedDataset::open`], publishing `data.shard_open` (one
    /// per validated shard) and `data.read_bytes` (bytes gathered) on
    /// `metrics`.
    ///
    /// # Errors
    /// As [`ShardedDataset::open`].
    pub fn open_with_metrics(
        dir: &Path,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<Self, ShardError> {
        Self::open_inner(dir, Some(metrics))
    }

    fn open_inner(dir: &Path, metrics: Option<Arc<MetricsRegistry>>) -> Result<Self, ShardError> {
        let mut paths = Vec::new();
        for item in std::fs::read_dir(dir)? {
            let item = item?;
            let name = item.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("shard-") && name.ends_with(&format!(".{FILE_EXT}")) {
                paths.push(item.path());
            }
        }
        paths.sort();
        if paths.is_empty() {
            return Err(ShardError::Inconsistent(format!(
                "no shard files under {}",
                dir.display()
            )));
        }
        let mut shards = Vec::new();
        let mut skipped = Vec::new();
        for path in paths {
            match ShardReader::open(&path) {
                Ok(shard) => {
                    if let Some(m) = &metrics {
                        m.counter("data.shard_open").inc();
                    }
                    shards.push(shard);
                }
                Err(e) => skipped.push((path, e)),
            }
        }
        let Some(first) = shards.first() else {
            let (path, why) = skipped.pop().expect("at least one candidate");
            return Err(ShardError::Inconsistent(format!(
                "every shard failed validation; last: {} ({why})",
                path.display()
            )));
        };
        let meta = first.meta().clone();
        for s in &shards {
            if s.meta() != &meta {
                return Err(ShardError::Inconsistent(format!(
                    "{} disagrees on dataset metadata",
                    s.path().display()
                )));
            }
        }
        let mut starts = Vec::with_capacity(shards.len());
        let mut len = 0usize;
        for s in &shards {
            starts.push(len);
            len += s.samples();
        }
        if len == 0 {
            return Err(ShardError::Inconsistent(
                "shard set holds no samples".into(),
            ));
        }
        Ok(ShardedDataset {
            shards,
            starts,
            len,
            meta,
            skipped,
            metrics,
        })
    }

    /// Shards that failed validation and were skipped at open, with the
    /// typed reason.
    pub fn skipped(&self) -> &[(PathBuf, ShardError)] {
        &self.skipped
    }

    /// Valid shards in the set.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total on-disk bytes of the valid shards — the figure to compare
    /// against a RAM budget when proving larger-than-memory training.
    pub fn total_file_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.file_bytes()).sum()
    }

    /// Whether every shard engaged a real OS mapping.
    pub fn fully_mmapped(&self) -> bool {
        self.shards.iter().all(|s| s.is_mmap())
    }

    /// Maps a global sample index to `(shard, local)`.
    fn locate(&self, i: usize) -> Result<(usize, usize), DataError> {
        if i >= self.len {
            return Err(DataError::IndexOutOfRange {
                index: i,
                len: self.len,
            });
        }
        let s = match self.starts.binary_search(&i) {
            Ok(s) => s,
            Err(ins) => ins - 1,
        };
        Ok((s, i - self.starts[s]))
    }

    fn observe_read(&self, bytes: u64) {
        if let Some(m) = &self.metrics {
            m.counter("data.read_bytes").add(bytes);
        }
    }
}

impl SampleSource for ShardedDataset {
    fn len(&self) -> usize {
        self.len
    }

    fn sample_shape(&self) -> &Shape {
        &self.meta.sample_shape
    }

    fn classes(&self) -> usize {
        self.meta.classes
    }

    fn label(&self, i: usize) -> Result<usize, DataError> {
        let (s, local) = self.locate(i)?;
        let label = self.shards[s].label(local)?;
        self.observe_read(4);
        Ok(label)
    }

    fn gather(&self, indices: &[usize]) -> Result<(Tensor, Vec<usize>), DataError> {
        if indices.is_empty() {
            return Err(DataError::EmptyBatch);
        }
        let sample_len = self.meta.sample_len();
        let mut data = Vec::with_capacity(indices.len() * sample_len);
        let mut labels = Vec::with_capacity(indices.len());
        let mut bytes = 0u64;
        for &i in indices {
            let (s, local) = self.locate(i)?;
            let shard = &self.shards[s];
            bytes += shard.copy_image(local, &mut data)? + 4;
            labels.push(shard.label(local)?);
        }
        self.observe_read(bytes);
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(self.meta.sample_shape.dims());
        Ok((Tensor::from_vec(Shape::new(&dims), data), labels))
    }
}
