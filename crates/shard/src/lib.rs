//! # crossbow-shard — the on-disk data plane
//!
//! Crossbow's training loop was fed from in-memory synthetic datasets;
//! this crate adds the *real* data plane the paper's data pre-processors
//! assume (§4.1): a versioned, checksummed, sharded on-disk dataset
//! format, a streaming ingestion path with back-pressure, and an
//! mmap-backed zero-copy reader that slots in behind the same
//! [`SampleSource`](crossbow_data::SampleSource) trait the in-memory
//! [`Dataset`](crossbow_data::Dataset) implements — so the trainer,
//! prefetcher and distributed coordinator are agnostic to whether the
//! data lives in RAM, on disk, or split across workers.
//!
//! - **Format** ([`mod@format`]): fixed 80-byte header, FNV-checksummed
//!   record pages, a per-shard sample index, and the atomic
//!   tmp → fsync → rename seal discipline shared with
//!   `crossbow-checkpoint`.
//! - **Ingestion** ([`pack_source`] / [`pack_stream`]): a producer
//!   streams samples through a bounded [`crossbow_data::chan`] channel
//!   into a rotating [`ShardWriter`]; channel capacity is the
//!   back-pressure window.
//! - **Reading** ([`ShardReader`] / [`ShardedDataset`]): shards are
//!   memory-mapped (raw syscall on Linux/x86-64, positioned-read
//!   fallback elsewhere) and *fully validated at open* — corruption
//!   yields typed errors and per-shard fallback, never UB through the
//!   mapping.
//!
//! Determinism invariant: packing preserves sample order and `f32` bit
//! patterns, so for an intact shard set, `gather` over any index list is
//! bit-identical to the same gather on the source dataset — which is
//! what lets a training run produce bit-identical curves from RAM or
//! disk.
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
pub mod format;
mod mmap;
mod reader;

pub use error::ShardError;
pub use format::{
    pack_source, pack_stream, shard_file_name, DatasetMeta, PackConfig, PackReport, Sample,
    ShardWriter, FILE_EXT, FLAG_SEALED, FORMAT_VERSION, HEADER_LEN, MAGIC, MAX_DIMS,
};
pub use reader::{ShardReader, ShardedDataset};

#[cfg(test)]
mod tests {
    use super::*;
    use crossbow_data::synth::gaussian_mixture;
    use crossbow_data::{Dataset, SampleSource};
    use std::fs;
    use std::path::PathBuf;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("crossbow-shard-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn small_pack() -> PackConfig {
        PackConfig {
            samples_per_shard: 40,
            page_samples: 16,
            channel_capacity: 8,
        }
    }

    fn demo_set() -> Dataset {
        gaussian_mixture(4, 6, 130, 0.35, 7)
    }

    #[test]
    fn pack_then_open_round_trips_bit_exactly() {
        let dir = scratch_dir("roundtrip");
        let set = demo_set();
        let report = pack_source(&dir, &set, small_pack()).expect("pack");
        assert_eq!(report.samples, 130);
        assert_eq!(report.shards, 4, "130 samples at 40/shard");

        let on_disk = ShardedDataset::open(&dir).expect("open");
        assert!(on_disk.skipped().is_empty());
        assert_eq!(on_disk.shard_count(), 4);
        assert_eq!(SampleSource::len(&on_disk), set.len());
        assert_eq!(on_disk.classes(), set.classes());
        assert_eq!(on_disk.sample_shape(), set.sample_shape());
        assert_eq!(on_disk.total_file_bytes(), report.bytes);

        // Bit-exact gathers, including across shard boundaries and with
        // repeats, in arbitrary order.
        let indices = [0usize, 129, 39, 40, 41, 79, 80, 5, 5, 127];
        let (disk_t, disk_l) = on_disk.gather(&indices).expect("disk gather");
        let (mem_t, mem_l) = set.gather(&indices).expect("mem gather");
        assert_eq!(disk_l, mem_l);
        assert_eq!(disk_t.shape(), mem_t.shape());
        let bits =
            |t: &crossbow_tensor::Tensor| t.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&disk_t),
            bits(&mem_t),
            "f32 bit patterns must survive the disk trip"
        );
        for i in 0..set.len() {
            assert_eq!(
                on_disk.label(i).expect("label"),
                set.label(i).expect("label")
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_shard_is_skipped_with_a_typed_error() {
        let dir = scratch_dir("truncated");
        pack_source(&dir, &demo_set(), small_pack()).expect("pack");
        // Cut the second shard short, inside its page data.
        let victim = dir.join(shard_file_name(1));
        let bytes = fs::read(&victim).expect("read");
        fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate");

        let on_disk = ShardedDataset::open(&dir).expect("valid shards remain");
        assert_eq!(on_disk.shard_count(), 3);
        assert_eq!(SampleSource::len(&on_disk), 130 - 40);
        assert_eq!(on_disk.skipped().len(), 1);
        let (path, err) = &on_disk.skipped()[0];
        assert_eq!(path, &victim);
        assert!(matches!(err, ShardError::Corrupt(_)), "got {err}");
        // The survivors still gather fine.
        on_disk.gather(&[0, 89]).expect("gather survivors");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_payload_byte_fails_the_page_checksum() {
        let dir = scratch_dir("bitflip");
        pack_source(&dir, &demo_set(), small_pack()).expect("pack");
        let victim = dir.join(shard_file_name(2));
        let mut bytes = fs::read(&victim).expect("read");
        // Flip one byte inside the first page payload (past the header).
        bytes[HEADER_LEN + 5] ^= 0x40;
        fs::write(&victim, &bytes).expect("write back");

        let err = ShardReader::open(&victim).expect_err("must fail validation");
        assert!(matches!(err, ShardError::Corrupt(_)), "got {err}");
        assert!(err.to_string().contains("checksum"), "got {err}");

        let on_disk = ShardedDataset::open(&dir).expect("fallback");
        assert_eq!(on_disk.shard_count(), 3);
        assert_eq!(on_disk.skipped().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_header_version_is_a_version_error() {
        let dir = scratch_dir("version");
        pack_source(&dir, &demo_set(), small_pack()).expect("pack");
        let victim = dir.join(shard_file_name(0));
        let mut bytes = fs::read(&victim).expect("read");
        // Bump the version field and re-stamp the header checksum so only
        // the version check can object.
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 9).to_le_bytes());
        let sum = crossbow_checkpoint::codec::fnv1a64(&bytes[0..72]);
        bytes[72..80].copy_from_slice(&sum.to_le_bytes());
        fs::write(&victim, &bytes).expect("write back");

        let err = ShardReader::open(&victim).expect_err("must fail");
        match err {
            ShardError::Version { found, expected } => {
                assert_eq!(found, FORMAT_VERSION + 9);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected Version, got {other}"),
        }
        let on_disk = ShardedDataset::open(&dir).expect("fallback");
        assert_eq!(on_disk.shard_count(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_shards_corrupt_is_a_hard_error_and_tmp_files_are_ignored() {
        let dir = scratch_dir("allbad");
        pack_source(
            &dir,
            &demo_set(),
            PackConfig {
                samples_per_shard: 200,
                ..small_pack()
            },
        )
        .expect("pack");
        // One shard; corrupt its magic. Also drop in a stray .tmp, which
        // the directory scan must ignore.
        let victim = dir.join(shard_file_name(0));
        let mut bytes = fs::read(&victim).expect("read");
        bytes[0] ^= 0xff;
        fs::write(&victim, &bytes).expect("write back");
        fs::write(dir.join("shard-00009.cbws.tmp"), b"torn").expect("tmp");

        let err = ShardedDataset::open(&dir).expect_err("nothing valid");
        assert!(matches!(err, ShardError::Inconsistent(_)), "got {err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsealed_and_out_of_bounds_reads_stay_typed() {
        let dir = scratch_dir("unsealed");
        let meta = DatasetMeta {
            sample_shape: crossbow_tensor::Shape::new(&[3]),
            classes: 2,
        };
        let mut w = ShardWriter::create(&dir, 0, &meta, 4).expect("create");
        w.append(&[1.0, 2.0, 3.0], 1).expect("append");
        // Never sealed: the .tmp placeholder header must be rejected.
        let tmp = dir.join(format!("{}.tmp", shard_file_name(0)));
        let err = ShardReader::open(&tmp).expect_err("unsealed");
        assert!(err.to_string().contains("sealed"), "got {err}");
        drop(w);

        // Appending wrong-shaped samples or bad labels is typed too.
        let mut w = ShardWriter::create(&dir, 1, &meta, 4).expect("create");
        assert!(matches!(
            w.append(&[1.0], 0),
            Err(ShardError::Inconsistent(_))
        ));
        assert!(matches!(
            w.append(&[1.0, 2.0, 3.0], 7),
            Err(ShardError::Inconsistent(_))
        ));
        let (path, _) = {
            w.append(&[4.0, 5.0, 6.0], 0).expect("append");
            w.seal().expect("seal")
        };
        let reader = ShardReader::open(&path).expect("open sealed");
        assert_eq!(reader.samples(), 1);
        let ds = ShardedDataset::open(&dir).expect("open dir");
        // Out-of-range access through the trait is a typed DataError.
        let err = ds.gather(&[99]).expect_err("oob");
        assert!(matches!(
            err,
            crossbow_data::DataError::IndexOutOfRange { index: 99, len: 1 }
        ));
        assert!(ds.gather(&[]).is_err(), "empty batch stays typed");
        let _ = fs::remove_dir_all(&dir);
    }
}
