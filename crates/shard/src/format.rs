//! The on-disk shard format and the streaming writer.
//!
//! ## File layout (`shard-NNNNN.cbws`)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "CBWSHRD\x01"
//! 8       4     format version (little-endian u32)
//! 12      4     flags  (bit 0 = sealed)
//! 16      4     shard index within the dataset
//! 20      4     classes
//! 24      4     sample dim count (1..=6)
//! 28      24    sample dims (6 × u32; unused trail zero)
//! 52      8     samples in this shard (u64)
//! 60      4     samples per full page
//! 64      8     index section offset (u64)
//! 72      8     FNV-1a/64 over bytes 0..72
//! 80      …     record pages
//! …       …     index section
//! ```
//!
//! A *record page* holds up to `page_samples` samples as a block of
//! little-endian `u32` labels, then the samples' `f32` image data (bit
//! patterns, so a round trip is bit-exact), then an FNV-1a/64 checksum of
//! the page's payload. The *index section* is `u32 page_count`, one
//! `{u64 offset, u32 samples}` entry per page, and a trailing FNV-1a/64
//! over the entries — the per-shard sample index that lets a reader jump
//! to any sample in O(1).
//!
//! ## Atomicity
//!
//! The writer streams pages into `<name>.tmp`, then seals: index, final
//! header (sealed flag set, checksum last), fsync, rename over the final
//! name, directory fsync — the PR-2 checkpoint discipline, so a crash
//! mid-pack leaves a `.tmp` the reader ignores, never a torn shard.

use crate::error::{corrupt, ShardError};
use crossbow_checkpoint::codec::fnv1a64;
use crossbow_data::chan::Receiver;
use crossbow_data::SampleSource;
use crossbow_tensor::Shape;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic bytes opening every shard file.
pub const MAGIC: [u8; 8] = *b"CBWSHRD\x01";

/// Current shard format version.
pub const FORMAT_VERSION: u32 = 1;

/// Header length in bytes.
pub const HEADER_LEN: usize = 80;

/// Flag bit: the shard was sealed (index + checksums complete).
pub const FLAG_SEALED: u32 = 1;

/// Maximum sample rank the fixed-size header can record.
pub const MAX_DIMS: usize = 6;

/// Shard file extension.
pub const FILE_EXT: &str = "cbws";

/// Dataset-level metadata every shard of a set must agree on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetMeta {
    /// Per-sample shape.
    pub sample_shape: Shape,
    /// Number of classes.
    pub classes: usize,
}

impl DatasetMeta {
    /// Metadata describing `source`'s samples.
    pub fn of(source: &dyn SampleSource) -> Self {
        DatasetMeta {
            sample_shape: source.sample_shape().clone(),
            classes: source.classes(),
        }
    }

    /// Elements per sample.
    pub fn sample_len(&self) -> usize {
        self.sample_shape.len()
    }
}

/// The canonical file name of shard `index`.
pub fn shard_file_name(index: u32) -> String {
    format!("shard-{index:05}.{FILE_EXT}")
}

/// One page's placement, as recorded in the index section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct PageEntry {
    /// Byte offset of the page payload within the file.
    pub offset: u64,
    /// Samples in this page.
    pub samples: u32,
}

/// Streaming single-shard writer: append samples, then seal.
pub struct ShardWriter {
    file: fs::File,
    tmp: PathBuf,
    path: PathBuf,
    meta: DatasetMeta,
    shard_index: u32,
    page_samples: u32,
    // The page under construction.
    page_labels: Vec<u32>,
    page_images: Vec<u8>,
    pages: Vec<PageEntry>,
    offset: u64,
    samples: u64,
    bytes_written: u64,
}

impl ShardWriter {
    /// Creates `shard-<index>.cbws.tmp` in `dir` and writes a placeholder
    /// header (sealed flag clear) that [`ShardWriter::seal`] rewrites.
    ///
    /// # Errors
    /// [`ShardError::Io`] on filesystem failures;
    /// [`ShardError::Inconsistent`] for unrepresentable metadata (rank
    /// over [`MAX_DIMS`], zero page size).
    pub fn create(
        dir: &Path,
        shard_index: u32,
        meta: &DatasetMeta,
        page_samples: usize,
    ) -> Result<Self, ShardError> {
        if meta.sample_shape.dims().len() > MAX_DIMS {
            return Err(ShardError::Inconsistent(format!(
                "sample rank {} exceeds the format maximum {MAX_DIMS}",
                meta.sample_shape.dims().len()
            )));
        }
        if page_samples == 0 || page_samples > u32::MAX as usize {
            return Err(ShardError::Inconsistent(
                "page size must be in 1..=u32::MAX samples".into(),
            ));
        }
        fs::create_dir_all(dir)?;
        let path = dir.join(shard_file_name(shard_index));
        let tmp = dir.join(format!("{}.tmp", shard_file_name(shard_index)));
        let mut file = fs::File::create(&tmp)?;
        // Placeholder header: correct magic/geometry, sealed flag clear,
        // zero sample count. A crash before seal leaves this .tmp behind
        // and the directory reader ignores it.
        let header = encode_header(meta, shard_index, page_samples as u32, 0, 0, 0);
        file.write_all(&header)?;
        Ok(ShardWriter {
            file,
            tmp,
            path,
            meta: meta.clone(),
            shard_index,
            page_samples: page_samples as u32,
            page_labels: Vec::new(),
            page_images: Vec::new(),
            pages: Vec::new(),
            offset: HEADER_LEN as u64,
            samples: 0,
            bytes_written: HEADER_LEN as u64,
        })
    }

    /// Samples appended so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The shard index this writer fills.
    pub fn shard_index(&self) -> u32 {
        self.shard_index
    }

    /// Appends one sample, flushing a page to disk whenever one fills.
    ///
    /// # Errors
    /// [`ShardError::Inconsistent`] when `image` does not match the
    /// sample shape or `label` is out of class range; [`ShardError::Io`]
    /// on write failures.
    pub fn append(&mut self, image: &[f32], label: usize) -> Result<(), ShardError> {
        if image.len() != self.meta.sample_len() {
            return Err(ShardError::Inconsistent(format!(
                "sample of {} elements appended to a shard of {}-element samples",
                image.len(),
                self.meta.sample_len()
            )));
        }
        if label >= self.meta.classes {
            return Err(ShardError::Inconsistent(format!(
                "label {label} out of range for {} classes",
                self.meta.classes
            )));
        }
        self.page_labels.push(label as u32);
        for &x in image {
            self.page_images
                .extend_from_slice(&x.to_bits().to_le_bytes());
        }
        self.samples += 1;
        if self.page_labels.len() == self.page_samples as usize {
            self.flush_page()?;
        }
        Ok(())
    }

    fn flush_page(&mut self) -> Result<(), ShardError> {
        if self.page_labels.is_empty() {
            return Ok(());
        }
        let n = self.page_labels.len() as u32;
        let mut payload = Vec::with_capacity(self.page_labels.len() * 4 + self.page_images.len());
        for &l in &self.page_labels {
            payload.extend_from_slice(&l.to_le_bytes());
        }
        payload.extend_from_slice(&self.page_images);
        let checksum = fnv1a64(&payload);
        self.file.write_all(&payload)?;
        self.file.write_all(&checksum.to_le_bytes())?;
        self.pages.push(PageEntry {
            offset: self.offset,
            samples: n,
        });
        let page_bytes = payload.len() as u64 + 8;
        self.offset += page_bytes;
        self.bytes_written += page_bytes;
        self.page_labels.clear();
        self.page_images.clear();
        Ok(())
    }

    /// Flushes the final partial page, writes the index section, rewrites
    /// the header with the sealed flag, fsyncs, renames the temp file
    /// over the final name and fsyncs the directory. Returns the sealed
    /// path and the total bytes written.
    ///
    /// # Errors
    /// [`ShardError::Io`] on any filesystem step.
    pub fn seal(mut self) -> Result<(PathBuf, u64), ShardError> {
        self.flush_page()?;
        let index_offset = self.offset;
        let mut index = Vec::with_capacity(4 + self.pages.len() * 12);
        index.extend_from_slice(&(self.pages.len() as u32).to_le_bytes());
        for page in &self.pages {
            index.extend_from_slice(&page.offset.to_le_bytes());
            index.extend_from_slice(&page.samples.to_le_bytes());
        }
        let index_checksum = fnv1a64(&index);
        self.file.write_all(&index)?;
        self.file.write_all(&index_checksum.to_le_bytes())?;
        self.bytes_written += index.len() as u64 + 8;
        // Rewrite the header with the final geometry and the sealed flag.
        let header = encode_header(
            &self.meta,
            self.shard_index,
            self.page_samples,
            FLAG_SEALED,
            self.samples,
            index_offset,
        );
        use std::io::Seek as _;
        self.file.seek(std::io::SeekFrom::Start(0))?;
        self.file.write_all(&header)?;
        self.file.sync_all()?;
        fs::rename(&self.tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok((self.path, self.bytes_written))
    }
}

/// Encodes the 80-byte header.
fn encode_header(
    meta: &DatasetMeta,
    shard_index: u32,
    page_samples: u32,
    flags: u32,
    samples: u64,
    index_offset: u64,
) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..8].copy_from_slice(&MAGIC);
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&flags.to_le_bytes());
    h[16..20].copy_from_slice(&shard_index.to_le_bytes());
    h[20..24].copy_from_slice(&(meta.classes as u32).to_le_bytes());
    let dims = meta.sample_shape.dims();
    h[24..28].copy_from_slice(&(dims.len() as u32).to_le_bytes());
    for (i, &d) in dims.iter().enumerate().take(MAX_DIMS) {
        h[28 + 4 * i..32 + 4 * i].copy_from_slice(&(d as u32).to_le_bytes());
    }
    h[52..60].copy_from_slice(&samples.to_le_bytes());
    h[60..64].copy_from_slice(&page_samples.to_le_bytes());
    h[64..72].copy_from_slice(&index_offset.to_le_bytes());
    let checksum = fnv1a64(&h[0..72]);
    h[72..80].copy_from_slice(&checksum.to_le_bytes());
    h
}

/// Decoded header fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Header {
    pub meta: DatasetMeta,
    pub shard_index: u32,
    pub page_samples: u32,
    pub flags: u32,
    pub samples: u64,
    pub index_offset: u64,
}

/// Validates and decodes a header.
pub(crate) fn decode_header(bytes: &[u8]) -> Result<Header, ShardError> {
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(format!(
            "{} bytes is shorter than the {HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if bytes[0..8] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4"));
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8"));
    let version = u32_at(8);
    if version != FORMAT_VERSION {
        return Err(ShardError::Version {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let stored = u64_at(72);
    if fnv1a64(&bytes[0..72]) != stored {
        return Err(corrupt("header checksum mismatch"));
    }
    let dim_count = u32_at(24) as usize;
    if dim_count == 0 || dim_count > MAX_DIMS {
        return Err(corrupt(format!("impossible sample rank {dim_count}")));
    }
    let dims: Vec<usize> = (0..dim_count)
        .map(|i| u32_at(28 + 4 * i) as usize)
        .collect();
    if dims.contains(&0) {
        return Err(corrupt("zero-length sample dimension"));
    }
    let classes = u32_at(20) as usize;
    if classes == 0 {
        return Err(corrupt("zero classes"));
    }
    let page_samples = u32_at(60);
    if page_samples == 0 {
        return Err(corrupt("zero page size"));
    }
    Ok(Header {
        meta: DatasetMeta {
            sample_shape: Shape::new(&dims),
            classes,
        },
        shard_index: u32_at(16),
        page_samples,
        flags: u32_at(12),
        samples: u64_at(52),
        index_offset: u64_at(64),
    })
}

/// Ingestion knobs for [`pack_stream`] / [`pack_source`].
#[derive(Clone, Copy, Debug)]
pub struct PackConfig {
    /// Samples per shard file (the rotation threshold).
    pub samples_per_shard: usize,
    /// Samples per checksummed record page.
    pub page_samples: usize,
    /// Bounded-channel capacity, in samples, between the producer and
    /// the writer — the ingestion back-pressure window.
    pub channel_capacity: usize,
}

impl Default for PackConfig {
    fn default() -> Self {
        PackConfig {
            samples_per_shard: 4096,
            page_samples: 64,
            channel_capacity: 256,
        }
    }
}

/// What a pack run produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackReport {
    /// Sealed shard files.
    pub shards: usize,
    /// Total samples across them.
    pub samples: u64,
    /// Total bytes written (headers, pages, indices, checksums).
    pub bytes: u64,
}

/// One in-flight ingestion record.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Image data (`sample_len` elements).
    pub image: Vec<f32>,
    /// Class label.
    pub label: usize,
}

/// Drains `rx` into sealed shards under `dir`, rotating every
/// `cfg.samples_per_shard` samples. The bounded channel the caller
/// created provides the back-pressure: a slow disk blocks the producer.
///
/// # Errors
/// [`ShardError`] from any writer step; on error, partly-written `.tmp`
/// files are left for the reader to ignore.
pub fn pack_stream(
    dir: &Path,
    meta: &DatasetMeta,
    rx: &Receiver<Sample>,
    cfg: PackConfig,
) -> Result<PackReport, ShardError> {
    if cfg.samples_per_shard == 0 {
        return Err(ShardError::Inconsistent("zero samples_per_shard".into()));
    }
    let mut report = PackReport {
        shards: 0,
        samples: 0,
        bytes: 0,
    };
    let mut writer: Option<ShardWriter> = None;
    while let Ok(sample) = rx.recv() {
        let w = match writer.as_mut() {
            Some(w) => w,
            None => {
                writer = Some(ShardWriter::create(
                    dir,
                    report.shards as u32,
                    meta,
                    cfg.page_samples,
                )?);
                writer.as_mut().expect("just set")
            }
        };
        w.append(&sample.image, sample.label)?;
        report.samples += 1;
        if w.samples() as usize >= cfg.samples_per_shard {
            let (_, bytes) = writer.take().expect("live writer").seal()?;
            report.bytes += bytes;
            report.shards += 1;
        }
    }
    if let Some(w) = writer.take() {
        let (_, bytes) = w.seal()?;
        report.bytes += bytes;
        report.shards += 1;
    }
    Ok(report)
}

/// Packs every sample of `source` (in index order, so a shard-set gather
/// is bit-identical to an in-memory gather) into shards under `dir`,
/// streaming through a bounded [`crossbow_data::chan`] channel: a
/// producer thread gathers samples while this thread writes, and the
/// channel capacity bounds the samples in flight.
///
/// # Errors
/// [`ShardError`] from the writer, or a producer-side gather failure
/// surfaced as [`ShardError::Io`].
pub fn pack_source(
    dir: &Path,
    source: &dyn SampleSource,
    cfg: PackConfig,
) -> Result<PackReport, ShardError> {
    let meta = DatasetMeta::of(source);
    let (tx, rx) = crossbow_data::chan::bounded::<Sample>(cfg.channel_capacity.max(1));
    let sample_len = meta.sample_len();
    std::thread::scope(|scope| {
        let producer = scope.spawn(move || -> Result<(), String> {
            for i in 0..source.len() {
                let (image, labels) = source.gather(&[i]).map_err(|e| e.to_string())?;
                let mut pending = Sample {
                    image: image.into_vec(),
                    label: labels[0],
                };
                debug_assert_eq!(pending.image.len(), sample_len);
                loop {
                    match tx.send_timeout(pending, std::time::Duration::from_millis(50)) {
                        Ok(()) => break,
                        Err(crossbow_data::chan::SendTimeoutError::Timeout(s)) => pending = s,
                        Err(crossbow_data::chan::SendTimeoutError::Disconnected(_)) => {
                            return Err("writer hung up".into());
                        }
                    }
                }
            }
            Ok(())
        });
        let report = pack_stream(dir, &meta, &rx, cfg);
        // Drain so a blocked producer can observe the hang-up on error.
        while rx.try_recv().is_some() {}
        drop(rx);
        let produced = producer.join();
        // The writer-side error is the root cause; the producer's
        // "writer hung up" is just its echo.
        let report = report?;
        match produced {
            Ok(Ok(())) => Ok(report),
            Ok(Err(why)) => Err(ShardError::Io(std::io::Error::other(why))),
            Err(_) => Err(ShardError::Io(std::io::Error::other("producer panicked"))),
        }
    })
}
