//! Typed failures of the shard data plane.

/// Why a shard could not be written, opened or read.
///
/// Every validation failure is a *typed error*, never UB: the reader
/// bounds-checks all offsets against the mapped file length before
/// dereferencing anything, so a truncated file, a flipped bit or a stale
/// header version surfaces here instead of in a fault handler.
#[derive(Debug)]
pub enum ShardError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file exists but fails validation (bad magic, truncated,
    /// checksum mismatch, impossible geometry).
    Corrupt(String),
    /// The header carries a format version this build does not read.
    Version {
        /// The version found in the header.
        found: u32,
        /// The version this build writes and reads.
        expected: u32,
    },
    /// Shards in a directory disagree on dataset metadata, or no valid
    /// shard remains after corruption fallback.
    Inconsistent(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard I/O error: {e}"),
            ShardError::Corrupt(why) => write!(f, "corrupt shard: {why}"),
            ShardError::Version { found, expected } => {
                write!(
                    f,
                    "unsupported shard format version {found} (expected {expected})"
                )
            }
            ShardError::Inconsistent(why) => write!(f, "inconsistent shard set: {why}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

pub(crate) fn corrupt(why: impl Into<String>) -> ShardError {
    ShardError::Corrupt(why.into())
}
