//! Read-only file mappings without libc.
//!
//! On Linux/x86-64 the file is mapped with a raw `mmap` syscall
//! (`PROT_READ`, `MAP_PRIVATE`) so batch gathers copy straight from the
//! page cache — the zero-copy read path of the paper's data
//! pre-processors. Everywhere else (and for empty files) the fallback
//! reads on demand with positioned reads, which preserves the
//! larger-than-RAM property: neither variant ever materialises the whole
//! file in a heap buffer.
//!
//! Every access is bounds-checked against the length captured at open
//! time, so a short or corrupt file yields a typed error, not UB. Shard
//! files are sealed (written once, renamed into place) and never
//! truncated in place, which is what makes the mapping's length stable.

use std::fs::File;
use std::io;
use std::path::Path;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    const SYS_MMAP: isize = 9;
    const SYS_MUNMAP: isize = 11;
    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// Maps `len` bytes of `fd` read-only. Returns `None` on any kernel
    /// error (the caller falls back to positioned reads).
    pub(super) fn mmap_readonly(fd: i32, len: usize) -> Option<*const u8> {
        let ret: isize;
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MMAP => ret,
                in("rdi") 0usize,
                in("rsi") len,
                in("rdx") PROT_READ,
                in("r10") MAP_PRIVATE,
                in("r8") fd as isize,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        // The kernel returns -errno in (-4096, 0) on failure.
        if (-4095..0).contains(&ret) {
            None
        } else {
            Some(ret as *const u8)
        }
    }

    pub(super) fn munmap(ptr: *const u8, len: usize) {
        let ret: isize;
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MUNMAP => ret,
                in("rdi") ptr,
                in("rsi") len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        let _ = ret;
    }
}

/// A read-only view of a file: an `mmap` when the platform provides one,
/// positioned reads otherwise.
pub(crate) enum Mapping {
    /// Raw memory mapping (Linux/x86-64).
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Mapped {
        /// Page-aligned base returned by the kernel.
        ptr: *const u8,
        /// Mapped (= file) length in bytes.
        len: usize,
    },
    /// Positioned-read fallback.
    Direct {
        /// The open file.
        file: File,
        /// File length at open time.
        len: usize,
    },
}

// The mapping is immutable after open: the raw pointer is only ever read.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe impl Send for Mapping {}
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Opens `path` and maps it read-only.
    pub(crate) fn open(path: &Path) -> io::Result<Mapping> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if len > 0 {
            use std::os::fd::AsRawFd;
            if let Some(ptr) = sys::mmap_readonly(file.as_raw_fd(), len) {
                // The fd can close now; the mapping keeps the pages.
                return Ok(Mapping::Mapped { ptr, len });
            }
        }
        Ok(Mapping::Direct { file, len })
    }

    /// Whether this mapping is a real `mmap` (vs the read fallback).
    pub(crate) fn is_mmap(&self) -> bool {
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Mapping::Mapped { .. } => true,
            Mapping::Direct { .. } => false,
        }
    }

    /// File length in bytes.
    pub(crate) fn len(&self) -> usize {
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Mapping::Mapped { len, .. } => *len,
            Mapping::Direct { len, .. } => *len,
        }
    }

    /// Reads `[offset, offset + dst.len())` into `dst`. Fails (rather
    /// than faulting) when the range leaves the file.
    pub(crate) fn read_into(&self, offset: usize, dst: &mut [u8]) -> io::Result<()> {
        let end = offset
            .checked_add(dst.len())
            .filter(|&e| e <= self.len())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!(
                        "read of {} bytes at {} beyond file of {}",
                        dst.len(),
                        offset,
                        self.len()
                    ),
                )
            })?;
        let _ = end;
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Mapping::Mapped { ptr, .. } => {
                // In bounds by the check above; the mapping is immutable.
                unsafe {
                    std::ptr::copy_nonoverlapping(ptr.add(offset), dst.as_mut_ptr(), dst.len());
                }
                Ok(())
            }
            Mapping::Direct { file, .. } => {
                use std::os::unix::fs::FileExt;
                file.read_exact_at(dst, offset as u64)
            }
        }
    }

    /// Borrowed view of `[offset, offset + len)`: the mapped bytes when
    /// this is an `mmap`, else a read into `scratch`. Bounds-checked.
    pub(crate) fn bytes<'a>(
        &'a self,
        offset: usize,
        len: usize,
        scratch: &'a mut Vec<u8>,
    ) -> io::Result<&'a [u8]> {
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Mapping::Mapped { ptr, len: mapped } => {
                if offset.checked_add(len).map_or(true, |e| e > *mapped) {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("range {offset}+{len} beyond file of {mapped}"),
                    ));
                }
                // In bounds by the check above; the mapping is immutable.
                Ok(unsafe { std::slice::from_raw_parts(ptr.add(offset), len) })
            }
            Mapping::Direct { .. } => {
                scratch.resize(len, 0);
                self.read_into(offset, scratch)?;
                Ok(&scratch[..])
            }
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if let Mapping::Mapped { ptr, len } = self {
            sys::munmap(*ptr, *len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn scratch_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("crossbow-mmap-{}-{tag}.bin", std::process::id()));
        let mut f = File::create(&path).expect("create");
        f.write_all(bytes).expect("write");
        path
    }

    #[test]
    fn reads_match_file_contents() {
        let data: Vec<u8> = (0..=255u8).collect();
        let path = scratch_file("roundtrip", &data);
        let map = Mapping::open(&path).expect("open");
        assert_eq!(map.len(), 256);
        let mut buf = [0u8; 16];
        map.read_into(100, &mut buf).expect("read");
        assert_eq!(&buf[..], &data[100..116]);
        let mut sc = Vec::new();
        assert_eq!(map.bytes(0, 4, &mut sc).expect("bytes"), &data[..4]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn out_of_bounds_reads_fail_without_faulting() {
        let path = scratch_file("oob", &[1, 2, 3, 4]);
        let map = Mapping::open(&path).expect("open");
        let mut buf = [0u8; 8];
        assert!(map.read_into(0, &mut buf).is_err());
        assert!(map.read_into(usize::MAX - 2, &mut buf).is_err());
        let mut sc = Vec::new();
        assert!(map.bytes(2, 3, &mut sc).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_files_fall_back_to_direct() {
        let path = scratch_file("empty", &[]);
        let map = Mapping::open(&path).expect("open");
        assert_eq!(map.len(), 0);
        assert!(!map.is_mmap());
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn linux_x86_64_uses_the_real_mmap() {
        let path = scratch_file("realmap", &[7u8; 64]);
        let map = Mapping::open(&path).expect("open");
        assert!(map.is_mmap(), "syscall mapping must engage on this target");
        let mut sc = Vec::new();
        // The zero-copy view must not touch the scratch buffer.
        assert_eq!(map.bytes(8, 8, &mut sc).expect("bytes"), &[7u8; 8]);
        assert!(sc.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
