//! Counters, gauges and log2 histograms behind a named registry.
//!
//! Instruments are `Arc`-shared cells: a runtime looks its instrument up
//! once (get-or-create by name) and then updates it with atomic
//! operations, so the hot path never touches the registry lock.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const BUCKETS: usize = 64;

/// A log2-bucketed latency histogram over microseconds.
///
/// Bucket `i` counts samples whose microsecond value has its highest set
/// bit at position `i` (bucket 0 additionally holds 0µs), giving ~2×
/// resolution over the full `u64` range in a fixed 64-slot array.
/// Percentiles are reported as the *upper bound* of the bucket the
/// percentile falls in, so they never understate latency.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket(micros: u64) -> usize {
        if micros == 0 {
            0
        } else {
            (63 - micros.leading_zeros()) as usize
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[Self::bucket(micros)] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The latency at quantile `q` (0.0–1.0), as the upper bound of its
    /// bucket; `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // Upper bound of bucket i: 2^(i+1) - 1 microseconds.
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return Some(Duration::from_micros(upper));
            }
        }
        None
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The standard serving percentiles, or zeros when empty.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            p50: self.quantile(0.50).unwrap_or(Duration::ZERO),
            p95: self.quantile(0.95).unwrap_or(Duration::ZERO),
            p99: self.quantile(0.99).unwrap_or(Duration::ZERO),
        }
    }
}

/// p50/p95/p99 of a latency distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median latency (bucket upper bound).
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value gauge that also tracks its high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// Sets the current value (and folds it into the maximum).
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Last value set.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Largest value ever set.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// A registry-held histogram, safe to record into from many threads.
#[derive(Debug, Default)]
pub struct HistogramCell {
    inner: Mutex<Histogram>,
}

impl HistogramCell {
    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        self.inner.lock().unwrap().record(latency);
    }

    /// A copy of the current histogram.
    pub fn snapshot(&self) -> Histogram {
        self.inner.lock().unwrap().clone()
    }
}

/// Named counters, gauges and histograms, created on first use.
///
/// Names are owned `String`s so runtimes can mint per-instance
/// instruments (the fleet registers `fleet.<model>.*` per model); the
/// common case of a `&'static str` literal still works unchanged.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created if absent.
    pub fn counter(&self, name: impl Into<String>) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .unwrap()
                .entry(name.into())
                .or_default(),
        )
    }

    /// The gauge named `name`, created if absent.
    pub fn gauge(&self, name: impl Into<String>) -> Arc<Gauge> {
        Arc::clone(self.gauges.lock().unwrap().entry(name.into()).or_default())
    }

    /// The histogram named `name`, created if absent.
    pub fn histogram(&self, name: impl Into<String>) -> Arc<HistogramCell> {
        Arc::clone(
            self.histograms
                .lock()
                .unwrap()
                .entry(name.into())
                .or_default(),
        )
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        GaugeValue {
                            value: v.get(),
                            max: v.max(),
                        },
                    )
                })
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A gauge's last value and high-water mark at snapshot time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeValue {
    /// Last value set.
    pub value: u64,
    /// Largest value ever set.
    pub max: u64,
}

/// Frozen registry contents, ordered by name for deterministic display.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, GaugeValue>,
    /// Histogram copies by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "{name} = {v}")?;
        }
        for (name, g) in &self.gauges {
            writeln!(f, "{name} = {} (max {})", g.value, g.max)?;
        }
        for (name, h) in &self.histograms {
            let s = h.summary();
            writeln!(
                f,
                "{name}: {} samples, p50 {:?} p95 {:?} p99 {:?}",
                h.total(),
                s.p50,
                s.p95,
                s.p99
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.summary().p99, Duration::ZERO);
    }

    #[test]
    fn quantiles_bound_the_recorded_values() {
        let mut h = Histogram::new();
        for micros in [10u64, 20, 30, 40, 1000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.total(), 5);
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 >= Duration::from_micros(20) && p50 < Duration::from_micros(1000));
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= Duration::from_micros(1000));
    }

    #[test]
    fn merge_is_the_sum_of_both() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Duration::from_micros(5));
        b.record(Duration::from_micros(500));
        b.record(Duration::from_micros(600));
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert!(a.quantile(1.0).unwrap() >= Duration::from_micros(500));
    }

    #[test]
    fn zero_latency_lands_in_the_first_bucket() {
        let mut h = Histogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.quantile(1.0), Some(Duration::from_micros(1)));
    }

    #[test]
    fn registry_returns_the_same_instrument_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("x").add(2);
        reg.counter("x").inc();
        assert_eq!(reg.counter("x").get(), 3);
        reg.gauge("depth").set(5);
        reg.gauge("depth").set(2);
        assert_eq!(reg.gauge("depth").get(), 2);
        assert_eq!(reg.gauge("depth").max(), 5);
        reg.histogram("lat").record(Duration::from_micros(10));
        assert_eq!(reg.histogram("lat").snapshot().total(), 1);
    }

    #[test]
    fn snapshot_is_ordered_and_displayable() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count").inc();
        reg.counter("a.count").add(4);
        reg.gauge("q.depth").set(7);
        reg.histogram("h.lat").record(Duration::from_micros(100));
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters.keys().map(String::as_str).collect::<Vec<_>>(),
            vec!["a.count", "b.count"]
        );
        assert_eq!(snap.gauges["q.depth"].max, 7);
        let text = snap.to_string();
        assert!(text.contains("a.count = 4"), "{text}");
        assert!(text.contains("h.lat: 1 samples"), "{text}");
    }

    #[test]
    fn gauge_updates_race_safely() {
        let reg = Arc::new(MetricsRegistry::new());
        let g = reg.gauge("depth");
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for v in 0..1000 {
                        g.set(i * 1000 + v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.max(), 3999);
    }
}
