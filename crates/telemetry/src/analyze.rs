//! Timeline analysis: sync–compute overlap and per-phase breakdown.
//!
//! The overlap ratio is the paper's hardware-efficiency lens (§4.2–4.3):
//! of all time spent in global synchronisation, what fraction ran
//! concurrently with learning tasks? A serial engine scores ~0; the
//! Crossbow engine hides sync behind the next iteration's compute.

use crate::span::{Span, SpanKind};
use std::fmt;

/// Total time and span count for one phase kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseTotal {
    /// The phase.
    pub kind: SpanKind,
    /// Sum of span durations (may exceed wall time when lanes overlap).
    pub total_ns: u64,
    /// Number of spans.
    pub count: u64,
}

/// Per-phase time totals, in [`SpanKind::ALL`] order, empty phases
/// omitted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Non-empty phases.
    pub phases: Vec<PhaseTotal>,
}

impl PhaseBreakdown {
    /// Total time of one kind (0 when absent).
    pub fn total_ns(&self, kind: SpanKind) -> u64 {
        self.phases
            .iter()
            .find(|p| p.kind == kind)
            .map_or(0, |p| p.total_ns)
    }
}

impl fmt::Display for PhaseBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let grand: u64 = self.phases.iter().map(|p| p.total_ns).sum();
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let pct = if grand == 0 {
                0.0
            } else {
                100.0 * p.total_ns as f64 / grand as f64
            };
            write!(
                f,
                "{} {:.1}ms ({:.0}%, {} spans)",
                p.kind,
                p.total_ns as f64 / 1e6,
                pct,
                p.count
            )?;
        }
        Ok(())
    }
}

/// How much global-sync time overlapped learning-task time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OverlapStats {
    /// Total time inside [`SpanKind::GlobalSync`] spans (union over
    /// lanes is *not* taken: each span contributes its full duration).
    pub sync_ns: u64,
    /// Portion of `sync_ns` during which at least one
    /// [`SpanKind::Learn`] span was running.
    pub overlapped_ns: u64,
    /// `overlapped_ns / sync_ns` (0 when no sync time was recorded).
    pub ratio: f64,
}

impl fmt::Display for OverlapStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sync {:.2}ms, overlapped {:.2}ms ({:.0}%)",
            self.sync_ns as f64 / 1e6,
            self.overlapped_ns as f64 / 1e6,
            self.ratio * 100.0
        )
    }
}

/// Merges intervals into a sorted, disjoint union.
fn interval_union(mut intervals: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    intervals.retain(|&(s, e)| e > s);
    intervals.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for (s, e) in intervals {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

/// Length of `[s, e)` ∩ the union (which must be sorted and disjoint).
fn intersect_len(s: u64, e: u64, union: &[(u64, u64)]) -> u64 {
    // First interval that could overlap: the one before the partition
    // point as well, since it may extend past `s`.
    let mut idx = union.partition_point(|&(us, _)| us < s);
    idx = idx.saturating_sub(1);
    let mut covered = 0;
    for &(us, ue) in &union[idx..] {
        if us >= e {
            break;
        }
        let lo = us.max(s);
        let hi = ue.min(e);
        if hi > lo {
            covered += hi - lo;
        }
    }
    covered
}

/// Sync–compute overlap over a span set: for every global-sync span, the
/// time it shares with the union of learning spans.
pub fn overlap(spans: &[Span]) -> OverlapStats {
    let learn_union = interval_union(
        spans
            .iter()
            .filter(|s| s.kind == SpanKind::Learn)
            .map(|s| (s.start_ns, s.end_ns))
            .collect(),
    );
    let mut sync_ns = 0u64;
    let mut overlapped_ns = 0u64;
    for s in spans.iter().filter(|s| s.kind == SpanKind::GlobalSync) {
        sync_ns += s.duration_ns();
        overlapped_ns += intersect_len(s.start_ns, s.end_ns, &learn_union);
    }
    OverlapStats {
        sync_ns,
        overlapped_ns,
        ratio: if sync_ns == 0 {
            0.0
        } else {
            overlapped_ns as f64 / sync_ns as f64
        },
    }
}

/// Per-kind totals over a span set.
pub fn phase_breakdown(spans: &[Span]) -> PhaseBreakdown {
    let mut phases = Vec::new();
    for kind in SpanKind::ALL {
        let mut total_ns = 0u64;
        let mut count = 0u64;
        for s in spans.iter().filter(|s| s.kind == kind) {
            total_ns += s.duration_ns();
            count += 1;
        }
        if count > 0 {
            phases.push(PhaseTotal {
                kind,
                total_ns,
                count,
            });
        }
    }
    PhaseBreakdown { phases }
}

/// Figure 8 pipelining: counts `(sync, learn)` span pairs where the
/// learning span belongs to a *later* iteration yet overlaps the sync
/// span in time. Requires iteration attribution on both kinds.
pub fn pipeline_overlaps(spans: &[Span]) -> usize {
    let syncs: Vec<&Span> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::GlobalSync && s.iteration.is_some())
        .collect();
    let learns: Vec<&Span> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Learn && s.iteration.is_some())
        .collect();
    let mut pairs = 0;
    for sync in &syncs {
        for learn in &learns {
            if learn.iteration > sync.iteration && sync.overlaps(learn) {
                pairs += 1;
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, start: u64, end: u64, iteration: Option<u64>) -> Span {
        Span {
            kind,
            label: kind.name(),
            start_ns: start,
            end_ns: end,
            device: 0,
            lane: 0,
            iteration,
        }
    }

    #[test]
    fn serial_schedule_has_zero_overlap() {
        let spans = vec![
            span(SpanKind::Learn, 0, 100, Some(0)),
            span(SpanKind::GlobalSync, 100, 150, Some(0)),
            span(SpanKind::Learn, 150, 250, Some(1)),
        ];
        let o = overlap(&spans);
        assert_eq!(o.sync_ns, 50);
        assert_eq!(o.overlapped_ns, 0);
        assert_eq!(o.ratio, 0.0);
        assert_eq!(pipeline_overlaps(&spans), 0);
    }

    #[test]
    fn pipelined_schedule_overlaps_fully() {
        // sync(0) runs 100..150 while learn(1) runs 120..260.
        let spans = vec![
            span(SpanKind::Learn, 0, 100, Some(0)),
            span(SpanKind::GlobalSync, 100, 150, Some(0)),
            span(SpanKind::Learn, 120, 260, Some(1)),
        ];
        let o = overlap(&spans);
        assert_eq!(o.sync_ns, 50);
        assert_eq!(o.overlapped_ns, 30);
        assert!((o.ratio - 0.6).abs() < 1e-12);
        assert_eq!(pipeline_overlaps(&spans), 1);
    }

    #[test]
    fn learn_union_merges_overlapping_lanes() {
        // Two learners covering 0..100 and 50..200: union is 0..200, so
        // a sync at 80..180 is fully hidden.
        let spans = vec![
            span(SpanKind::Learn, 0, 100, Some(1)),
            span(SpanKind::Learn, 50, 200, Some(2)),
            span(SpanKind::GlobalSync, 80, 180, Some(0)),
        ];
        let o = overlap(&spans);
        assert_eq!(o.overlapped_ns, 100);
        assert_eq!(o.ratio, 1.0);
    }

    #[test]
    fn pipeline_requires_later_iteration() {
        // learn(0) overlapping sync(0) is a straggler, not pipelining.
        let spans = vec![
            span(SpanKind::Learn, 90, 140, Some(0)),
            span(SpanKind::GlobalSync, 100, 150, Some(0)),
        ];
        assert!(overlap(&spans).overlapped_ns > 0);
        assert_eq!(pipeline_overlaps(&spans), 0);
    }

    #[test]
    fn breakdown_totals_and_display() {
        let spans = vec![
            span(SpanKind::Learn, 0, 100, None),
            span(SpanKind::Learn, 100, 200, None),
            span(SpanKind::GlobalSync, 200, 250, None),
        ];
        let b = phase_breakdown(&spans);
        assert_eq!(b.total_ns(SpanKind::Learn), 200);
        assert_eq!(b.total_ns(SpanKind::GlobalSync), 50);
        assert_eq!(b.total_ns(SpanKind::Eval), 0);
        assert_eq!(b.phases.len(), 2);
        let text = b.to_string();
        assert!(text.contains("learn"), "{text}");
        assert!(text.contains("global-sync"), "{text}");
    }

    #[test]
    fn intersect_len_handles_partial_cover() {
        let union = vec![(0, 10), (20, 30), (40, 50)];
        assert_eq!(intersect_len(5, 45, &union), 5 + 10 + 5);
        assert_eq!(intersect_len(10, 20, &union), 0);
        assert_eq!(intersect_len(25, 26, &union), 1);
    }
}
