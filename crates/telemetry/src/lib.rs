//! Unified tracing and metrics for the Crossbow runtimes.
//!
//! Every runtime in the workspace — the simulator (`exec_sim`/`gpu-sim`),
//! the concurrent CPU engine (`exec_cpu`), the synchronous trainer, the
//! checkpointer, and the inference server — needs to answer the same
//! question the paper answers with Figure 8: *where did the time go, and
//! does synchronisation of iteration N overlap with learning of iteration
//! N+1?* This crate is the shared substrate they all report against:
//!
//! * [`Clock`] abstracts the time source: [`WallClock`] for real runs,
//!   [`ManualClock`] for simulated nanoseconds, so spans from both render
//!   identically.
//! * [`Recorder`] collects typed [`Span`]s through cheap per-thread
//!   [`Shard`]s (no shared lock on the hot path; shards flush on drop).
//! * [`chrome`] exports spans in Chrome Trace Event Format, viewable in
//!   `chrome://tracing` or Perfetto; [`json`] is the minimal parser used
//!   to validate emitted traces without external dependencies.
//! * [`MetricsRegistry`] holds named [`Counter`]s, [`Gauge`]s and
//!   log2-bucketed [`Histogram`]s (the one implementation, shared with
//!   `crossbow-serve`).
//! * the analyzer ([`Timeline::overlap`], [`Timeline::phase_breakdown`],
//!   [`Timeline::pipeline_overlaps`]) computes the paper-style
//!   sync–compute overlap ratio and per-phase time breakdown from a
//!   recorded [`Timeline`].
//!
//! The crate is std-only and dependency-free by design: it sits below
//! every other crate in the workspace.

mod analyze;
pub mod chrome;
mod clock;
pub mod json;
mod metrics;
mod span;

pub use analyze::{OverlapStats, PhaseBreakdown, PhaseTotal};
pub use clock::{Clock, ManualClock, WallClock};
pub use metrics::{
    Counter, Gauge, GaugeValue, HistogramCell, LatencySummary, MetricsRegistry, MetricsSnapshot,
};
pub use span::{Recorder, Shard, Span, SpanKind, Timeline};

// Re-export under the historical name too: `serve::metrics` grew the
// first log2 histogram and other crates import it as `Histogram`.
pub use metrics::Histogram;

use std::sync::Arc;

/// Process id used in Chrome traces for host-side (wall-clock) spans, so
/// they never collide with simulated GPU device ids.
pub const HOST_DEVICE: u32 = 1000;

/// The sink handle threaded through runtime configs: a span recorder plus
/// a metrics registry, shared by reference.
///
/// Cloning is cheap (two `Arc`s); all clones feed the same recorder and
/// registry.
#[derive(Clone, Debug)]
pub struct Telemetry {
    /// Span recorder for timeline/trace output.
    pub recorder: Arc<Recorder>,
    /// Named counters, gauges and histograms.
    pub metrics: Arc<MetricsRegistry>,
}

impl Telemetry {
    /// An enabled sink on the wall clock — what the CLI `--trace` flag
    /// constructs.
    pub fn wall() -> Self {
        Telemetry {
            recorder: Recorder::wall(),
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// An enabled sink on an explicit clock (e.g. a [`ManualClock`]
    /// driven by simulated time).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Telemetry {
            recorder: Recorder::new(clock),
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// A disabled sink: spans are dropped at record time, metrics still
    /// work (they are cheap and always useful).
    pub fn disabled() -> Self {
        Telemetry {
            recorder: Recorder::disabled(),
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }
}
