//! Chrome Trace Event Format export.
//!
//! Emits the JSON object form (`{"traceEvents": [...]}`) with complete
//! events (`"ph":"X"`), which both `chrome://tracing` and Perfetto load
//! directly. Timestamps and durations are microseconds (fractional, so
//! nanosecond spans survive); `pid` is the device, `tid` the lane.
//! The emitter is hand-rolled because the workspace builds offline with
//! no serde.

use crate::span::Span;
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn micros(ns: u64) -> String {
    // Fixed 3 decimal places keeps output deterministic and exact for
    // nanosecond inputs.
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Renders spans as Chrome Trace Event JSON. `process_names` maps a
/// device id (the trace `pid`) to a display name via `"M"` metadata
/// events; devices without an entry keep their numeric pid.
pub fn to_chrome_json(spans: &[Span], process_names: &[(u32, &str)]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for &(pid, name) in process_names {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        );
    }
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{}",
            escape(s.label),
            s.kind.name(),
            micros(s.start_ns),
            micros(s.duration_ns()),
            s.device,
            s.lane
        );
        if let Some(iter) = s.iteration {
            let _ = write!(out, ",\"args\":{{\"iteration\":{iter}}}");
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::span::SpanKind;

    fn span(label: &'static str, start: u64, end: u64) -> Span {
        Span {
            kind: SpanKind::Learn,
            label,
            start_ns: start,
            end_ns: end,
            device: 1,
            lane: 2,
            iteration: Some(9),
        }
    }

    #[test]
    fn emits_parseable_complete_events() {
        let text = to_chrome_json(&[span("batch", 1_500, 4_000)], &[(1, "gpu 1")]);
        let doc = Json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 2); // metadata + span
        let meta = &events[0];
        assert_eq!(meta.get("ph").and_then(Json::as_str), Some("M"));
        let ev = &events[1];
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(ev.get("name").and_then(Json::as_str), Some("batch"));
        assert_eq!(ev.get("cat").and_then(Json::as_str), Some("learn"));
        assert_eq!(ev.get("ts").and_then(Json::as_f64), Some(1.5));
        assert_eq!(ev.get("dur").and_then(Json::as_f64), Some(2.5));
        assert_eq!(ev.get("pid").and_then(Json::as_f64), Some(1.0));
        assert_eq!(ev.get("tid").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            ev.get("args")
                .and_then(|a| a.get("iteration"))
                .and_then(Json::as_f64),
            Some(9.0)
        );
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_span_set_is_still_valid_json() {
        let doc = Json::parse(&to_chrome_json(&[], &[])).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert!(events.is_empty());
    }
}
