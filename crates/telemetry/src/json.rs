//! A minimal JSON parser, enough to validate emitted traces.
//!
//! The workspace builds offline with no serde, but the CI trace-validity
//! gate and the golden tests need to *parse back* what
//! [`chrome`](crate::chrome) emits. This is a small recursive-descent
//! parser over the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, literals); it favours clarity over speed.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. BTreeMap keeps iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos.saturating_sub(1),
                got.map(|g| g as char)
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos.saturating_sub(1),
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos.saturating_sub(1),
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pair handling for completeness.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err("lone high surrogate".into());
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate".into());
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined).ok_or("invalid surrogate pair")?
                        } else {
                            char::from_u32(code).ok_or("invalid unicode escape")?
                        };
                        out.push(c);
                    }
                    other => {
                        return Err(format!(
                            "invalid escape {:?} at byte {}",
                            other.map(|b| b as char),
                            self.pos.saturating_sub(1)
                        ))
                    }
                },
                Some(b) if b < 0x20 => return Err(format!("raw control byte {b:#x} in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 (input is &str, so it
                    // is valid; find the char boundary).
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    self.pos = start + len;
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or("truncated unicode escape")?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit {:?}", b as char))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = Json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#)
            .unwrap();
        assert_eq!(
            doc.get("a").and_then(Json::as_array).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            doc.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\ny")
        );
        assert_eq!(doc.get("b").and_then(|b| b.get("e")), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let doc = Json::parse(r#""é 😀""#).unwrap();
        assert_eq!(doc.as_str(), Some("é 😀"));
        let doc = Json::parse("\"héllo\"").unwrap();
        assert_eq!(doc.as_str(), Some("héllo"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
    }
}
