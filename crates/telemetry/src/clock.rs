//! Time sources for span recording.
//!
//! The recorder never calls `Instant::now` directly: it reads a [`Clock`],
//! so the same span/exporter/analyzer machinery serves both real runs
//! (wall clock, nanoseconds since recorder creation) and the simulator
//! (a [`ManualClock`] advanced to the simulated `SimTime`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond time source.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's origin.
    fn now_ns(&self) -> u64;
}

/// Wall-clock time, anchored at construction so traces start near zero.
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is now.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }
}

/// An externally driven clock: the simulator sets it to the current
/// simulated time before recording spans.
#[derive(Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves the clock to `ns`. Time never goes backwards: an earlier
    /// value is ignored so concurrent advancers stay monotonic.
    pub fn advance_to(&self, ns: u64) {
        self.now.fetch_max(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_never_rewinds() {
        let c = ManualClock::new();
        c.advance_to(50);
        c.advance_to(10);
        assert_eq!(c.now_ns(), 50);
        c.advance_to(90);
        assert_eq!(c.now_ns(), 90);
    }
}
