//! Typed spans and the sharded recorder.
//!
//! Hot paths (learner threads, serve workers) record into a thread-local
//! [`Shard`] — a plain `Vec` push, no shared state — and the shard folds
//! itself into the recorder when dropped (or on explicit
//! [`Shard::flush`]). Reading the [`Timeline`] is the cold path.

use crate::analyze::{self, OverlapStats, PhaseBreakdown};
use crate::chrome;
use crate::clock::{Clock, WallClock};
use std::fmt;
use std::sync::{Arc, Mutex};

/// What a span measures. The taxonomy follows the paper's task model:
/// a *learning task* computes a gradient, a *local sync* folds it into
/// the device's replicas, a *global sync* averages across devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Gradient computation for one batch (the learning task).
    Learn,
    /// Intra-device synchronisation (model update against the local
    /// difference, `reduce-local` style work).
    LocalSync,
    /// Inter-device/global synchronisation (all-reduce, average apply,
    /// or the CPU engine's ordered aggregation + publish).
    GlobalSync,
    /// Checkpoint serialisation + durable write.
    CheckpointWrite,
    /// Publishing a model snapshot to servers.
    SnapshotPublish,
    /// Fetching/gathering an input batch.
    BatchFetch,
    /// Time spent blocked on the prefetch queue.
    PrefetchWait,
    /// Held-out evaluation pass.
    Eval,
    /// Inference forward pass (serving).
    Infer,
    /// Host→device / device→host copy (simulator).
    Copy,
    /// Host-side bookkeeping (simulator scheduler, misc).
    Host,
    /// A framed message written to a socket (distributed runtime).
    NetSend,
    /// A framed message read from a socket (distributed runtime).
    NetRecv,
    /// An autoscaler decision evaluation (fleet serving): one probe of a
    /// pool's SLO health plus the resulting grow/shrink/hold verdict.
    Autoscale,
}

impl SpanKind {
    /// Stable lowercase name, used as the Chrome-trace category.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Learn => "learn",
            SpanKind::LocalSync => "local-sync",
            SpanKind::GlobalSync => "global-sync",
            SpanKind::CheckpointWrite => "checkpoint-write",
            SpanKind::SnapshotPublish => "snapshot-publish",
            SpanKind::BatchFetch => "batch-fetch",
            SpanKind::PrefetchWait => "prefetch-wait",
            SpanKind::Eval => "eval",
            SpanKind::Infer => "infer",
            SpanKind::Copy => "copy",
            SpanKind::Host => "host",
            SpanKind::NetSend => "net-send",
            SpanKind::NetRecv => "net-recv",
            SpanKind::Autoscale => "autoscale",
        }
    }

    /// All kinds, in display order for breakdowns.
    pub const ALL: [SpanKind; 14] = [
        SpanKind::Learn,
        SpanKind::LocalSync,
        SpanKind::GlobalSync,
        SpanKind::CheckpointWrite,
        SpanKind::SnapshotPublish,
        SpanKind::BatchFetch,
        SpanKind::PrefetchWait,
        SpanKind::Eval,
        SpanKind::Infer,
        SpanKind::Copy,
        SpanKind::Host,
        SpanKind::NetSend,
        SpanKind::NetRecv,
        SpanKind::Autoscale,
    ];
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded interval with device/lane/iteration attribution.
///
/// `device` becomes the Chrome-trace `pid` (GPU index, or
/// [`crate::HOST_DEVICE`] for host runtimes) and `lane` the `tid`
/// (stream, learner or worker index).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Phase taxonomy entry.
    pub kind: SpanKind,
    /// Human-readable event name shown in the trace viewer.
    pub label: &'static str,
    /// Start, clock nanoseconds.
    pub start_ns: u64,
    /// End, clock nanoseconds (`>= start_ns`).
    pub end_ns: u64,
    /// Device attribution (Chrome `pid`).
    pub device: u32,
    /// Lane within the device: stream / learner / worker (Chrome `tid`).
    pub lane: u32,
    /// Training iteration this span belongs to, when meaningful.
    pub iteration: Option<u64>,
}

impl Span {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Whether two spans overlap in time (open intervals: touching
    /// endpoints do not count).
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start_ns < other.end_ns && other.start_ns < self.end_ns
    }
}

/// Collects spans from many threads through per-thread [`Shard`]s.
pub struct Recorder {
    clock: Arc<dyn Clock>,
    enabled: bool,
    shards: Mutex<Vec<Vec<Span>>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

impl Recorder {
    /// An enabled recorder on the given clock.
    pub fn new(clock: Arc<dyn Clock>) -> Arc<Self> {
        Arc::new(Recorder {
            clock,
            enabled: true,
            shards: Mutex::new(Vec::new()),
        })
    }

    /// An enabled recorder on a fresh wall clock.
    pub fn wall() -> Arc<Self> {
        Recorder::new(Arc::new(WallClock::new()))
    }

    /// A recorder that drops every span at record time. Runtimes that
    /// were not handed a sink use this so their instrumentation code has
    /// a single shape.
    pub fn disabled() -> Arc<Self> {
        Arc::new(Recorder {
            clock: Arc::new(WallClock::new()),
            enabled: false,
            shards: Mutex::new(Vec::new()),
        })
    }

    /// Whether spans are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Current clock reading in nanoseconds. Valid (monotonic) even when
    /// the recorder is disabled, so callers can use it for elapsed-time
    /// measurements unconditionally.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// A new shard for the calling thread. Spans pushed into the shard
    /// are folded into the recorder when the shard is dropped.
    pub fn shard(self: &Arc<Self>) -> Shard {
        Shard {
            recorder: Arc::clone(self),
            spans: Vec::new(),
        }
    }

    fn absorb(&self, spans: Vec<Span>) {
        if !spans.is_empty() {
            self.shards.lock().unwrap().push(spans);
        }
    }

    /// Snapshot of everything flushed so far, sorted by start time.
    /// Live (undropped) shards are not included — flush or drop them
    /// first.
    pub fn timeline(&self) -> Timeline {
        let shards = self.shards.lock().unwrap();
        let mut spans: Vec<Span> = shards.iter().flatten().cloned().collect();
        drop(shards);
        spans.sort_by_key(|s| (s.start_ns, s.end_ns, s.device, s.lane));
        Timeline { spans }
    }
}

/// A per-thread span buffer. Push is a `Vec` append; the buffer flushes
/// into its [`Recorder`] on drop.
pub struct Shard {
    recorder: Arc<Recorder>,
    spans: Vec<Span>,
}

impl Shard {
    /// Clock reading, for bracketing a phase manually.
    pub fn now_ns(&self) -> u64 {
        self.recorder.now_ns()
    }

    /// Whether this shard keeps spans. When false, [`Shard::record`] is
    /// a no-op and callers may skip building span arguments.
    pub fn is_enabled(&self) -> bool {
        self.recorder.enabled
    }

    /// Records a fully built span (dropped when the recorder is
    /// disabled).
    pub fn record(&mut self, span: Span) {
        if self.recorder.enabled {
            self.spans.push(span);
        }
    }

    /// Convenience: records `[start_ns, now]` with attribution.
    #[allow(clippy::too_many_arguments)]
    pub fn close(
        &mut self,
        kind: SpanKind,
        label: &'static str,
        start_ns: u64,
        device: u32,
        lane: u32,
        iteration: Option<u64>,
    ) {
        if self.recorder.enabled {
            let end_ns = self.recorder.now_ns().max(start_ns);
            self.spans.push(Span {
                kind,
                label,
                start_ns,
                end_ns,
                device,
                lane,
                iteration,
            });
        }
    }

    /// Folds buffered spans into the recorder now (also happens on
    /// drop).
    pub fn flush(&mut self) {
        self.recorder.absorb(std::mem::take(&mut self.spans));
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.flush();
    }
}

/// An immutable, time-sorted set of spans with analysis helpers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Timeline {
    spans: Vec<Span>,
}

impl Timeline {
    /// A timeline from already-collected spans (sorts them).
    pub fn from_spans(mut spans: Vec<Span>) -> Self {
        spans.sort_by_key(|s| (s.start_ns, s.end_ns, s.device, s.lane));
        Timeline { spans }
    }

    /// The spans, sorted by start time.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of spans of one kind.
    pub fn count(&self, kind: SpanKind) -> usize {
        self.spans.iter().filter(|s| s.kind == kind).count()
    }

    /// Earliest start and latest end, or `None` when empty.
    pub fn extent_ns(&self) -> Option<(u64, u64)> {
        let start = self.spans.iter().map(|s| s.start_ns).min()?;
        let end = self.spans.iter().map(|s| s.end_ns).max()?;
        Some((start, end))
    }

    /// Per-kind total time and span counts.
    pub fn phase_breakdown(&self) -> PhaseBreakdown {
        analyze::phase_breakdown(&self.spans)
    }

    /// The paper-style sync–compute overlap: how much of global-sync
    /// time ran concurrently with learning tasks.
    pub fn overlap(&self) -> OverlapStats {
        analyze::overlap(&self.spans)
    }

    /// Count of `(sync(N), learn(M))` span pairs with `M > N` that
    /// overlap in time — the Figure 8 property that synchronisation of
    /// one iteration overlaps the next iteration's learning.
    pub fn pipeline_overlaps(&self) -> usize {
        analyze::pipeline_overlaps(&self.spans)
    }

    /// Chrome Trace Event Format JSON for this timeline.
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(&self.spans, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn span(kind: SpanKind, start: u64, end: u64) -> Span {
        Span {
            kind,
            label: kind.name(),
            start_ns: start,
            end_ns: end,
            device: 0,
            lane: 0,
            iteration: None,
        }
    }

    #[test]
    fn shards_flush_on_drop_and_timeline_sorts() {
        let clock = Arc::new(ManualClock::new());
        let rec = Recorder::new(clock);
        let mut a = rec.shard();
        let mut b = rec.shard();
        b.record(span(SpanKind::GlobalSync, 50, 60));
        a.record(span(SpanKind::Learn, 10, 20));
        drop(a);
        drop(b);
        let tl = rec.timeline();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.spans()[0].kind, SpanKind::Learn);
        assert_eq!(tl.count(SpanKind::GlobalSync), 1);
    }

    #[test]
    fn disabled_recorder_drops_spans_but_keeps_time() {
        let rec = Recorder::disabled();
        let mut shard = rec.shard();
        let t0 = shard.now_ns();
        shard.record(span(SpanKind::Learn, 0, 1));
        shard.close(SpanKind::Eval, "eval", t0, 0, 0, None);
        drop(shard);
        assert!(rec.timeline().is_empty());
        assert!(rec.now_ns() >= t0);
    }

    #[test]
    fn concurrent_shards_from_many_threads() {
        let rec = Recorder::new(Arc::new(ManualClock::new()));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    let mut shard = rec.shard();
                    for j in 0..25 {
                        let t = (i * 100 + j) as u64;
                        shard.record(Span {
                            device: 0,
                            lane: i,
                            ..span(SpanKind::Learn, t, t + 1)
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.timeline().len(), 100);
    }

    #[test]
    fn close_records_the_bracketed_interval() {
        let clock = Arc::new(ManualClock::new());
        let rec = Recorder::new(Arc::clone(&clock) as Arc<dyn Clock>);
        let mut shard = rec.shard();
        clock.advance_to(100);
        let t0 = shard.now_ns();
        clock.advance_to(250);
        shard.close(SpanKind::Learn, "batch", t0, 2, 3, Some(7));
        drop(shard);
        let tl = rec.timeline();
        let s = &tl.spans()[0];
        assert_eq!((s.start_ns, s.end_ns), (100, 250));
        assert_eq!((s.device, s.lane, s.iteration), (2, 3, Some(7)));
    }

    #[test]
    fn extent_covers_all_spans() {
        let tl = Timeline::from_spans(vec![
            span(SpanKind::Learn, 30, 90),
            span(SpanKind::GlobalSync, 10, 40),
        ]);
        assert_eq!(tl.extent_ns(), Some((10, 90)));
        assert!(Timeline::default().extent_ns().is_none());
    }
}
