//! Per-device state: the SM pool and the copy engines.
//!
//! The duration model is the heart of the hardware-efficiency reproduction:
//!
//! * a kernel granted `g` SMs runs for
//!   `kernel_latency + max(flops / (g · flops_per_sm · efficiency),
//!   bytes / mem_bandwidth)` — compute-bound or memory-bound, whichever
//!   dominates;
//! * a kernel's grant is `min(sm_demand, free SMs)` (at least one) at
//!   launch time and is held until completion, like CUDA's SM residency:
//!   launching into a busy device yields fewer SMs and a slower kernel,
//!   which is exactly the sequentialisation the paper warns about when too
//!   many learners share a GPU (§3.4);
//! * each device has one host-to-device and one device-to-host copy engine;
//!   transfers on one engine serialise, but overlap with compute (§2.2).

use crate::config::DeviceConfig;
use crate::kernel::KernelDesc;
use crate::stream::StreamId;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Dynamic state of one simulated GPU.
#[derive(Debug)]
pub(crate) struct Device {
    pub(crate) config: DeviceConfig,
    /// SMs not currently held by a running kernel.
    pub(crate) free_sms: u32,
    /// Streams whose head kernel found no free SMs, in arrival order.
    pub(crate) sm_waiters: VecDeque<StreamId>,
    /// Earliest time the host-to-device copy engine is free.
    pub(crate) h2d_free: SimTime,
    /// Earliest time the device-to-host copy engine is free.
    pub(crate) d2h_free: SimTime,
    /// Cumulative SM-nanoseconds consumed; used to report utilisation.
    pub(crate) sm_busy_ns: u128,
}

impl Device {
    pub(crate) fn new(config: DeviceConfig) -> Self {
        Device {
            free_sms: config.sm_total,
            config,
            sm_waiters: VecDeque::new(),
            h2d_free: SimTime::ZERO,
            d2h_free: SimTime::ZERO,
            sm_busy_ns: 0,
        }
    }

    /// SMs the device would grant a kernel right now, or `None` when no SM
    /// is free.
    pub(crate) fn grant(&self, demand: u32) -> Option<u32> {
        if self.free_sms == 0 {
            None
        } else {
            Some(demand.clamp(1, self.free_sms))
        }
    }

    /// Takes `sms` out of the pool.
    pub(crate) fn acquire(&mut self, sms: u32) {
        debug_assert!(sms <= self.free_sms);
        self.free_sms -= sms;
    }

    /// Returns `sms` to the pool.
    pub(crate) fn release(&mut self, sms: u32) {
        self.free_sms += sms;
        debug_assert!(self.free_sms <= self.config.sm_total);
    }

    /// Modelled duration of `kernel` when granted `sms` multiprocessors.
    pub(crate) fn kernel_duration(&self, kernel: &KernelDesc, sms: u32) -> SimDuration {
        debug_assert!(sms >= 1);
        let compute = kernel.flops as f64 / self.config.effective_flops(sms);
        let memory = kernel.bytes as f64 / self.config.mem_bandwidth;
        self.config.kernel_latency + SimDuration::from_secs_f64(compute.max(memory))
    }

    /// Fraction of SM capacity used over `elapsed` simulated time.
    pub(crate) fn utilisation(&self, elapsed: SimDuration) -> f64 {
        let capacity = u128::from(self.config.sm_total) * u128::from(elapsed.as_nanos());
        if capacity == 0 {
            0.0
        } else {
            self.sm_busy_ns as f64 / capacity as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::new(DeviceConfig::titan_x_pascal())
    }

    #[test]
    fn grant_respects_pool() {
        let mut d = dev();
        let total = d.config.sm_total;
        assert_eq!(d.grant(total + 10), Some(total));
        assert_eq!(d.grant(4), Some(4));
        d.acquire(total);
        assert_eq!(d.grant(1), None);
        d.release(total);
        assert_eq!(d.grant(1), Some(1));
    }

    #[test]
    fn kernel_duration_scales_inversely_with_sms() {
        let d = dev();
        let k = KernelDesc::compute("k", 1_000_000_000, 24);
        let t1 = d.kernel_duration(&k, 1).as_nanos() as f64;
        let t24 = d.kernel_duration(&k, 24).as_nanos() as f64;
        let lat = d.config.kernel_latency.as_nanos() as f64;
        // Strip the fixed launch latency and compare compute portions.
        assert!(((t1 - lat) / (t24 - lat) - 24.0).abs() < 0.1);
    }

    #[test]
    fn memory_bound_kernels_are_bound_by_bandwidth() {
        let d = dev();
        // 480 MB of traffic at 480 GB/s = 1 ms regardless of SMs.
        let k = KernelDesc::memory("axpy", 480_000_000, 1);
        let t = d.kernel_duration(&k, 1);
        let expect = d.config.kernel_latency + SimDuration::from_millis(1);
        assert_eq!(t, expect);
        assert_eq!(d.kernel_duration(&k, 24), expect);
    }

    #[test]
    fn tiny_kernel_cost_is_dominated_by_latency() {
        let d = dev();
        let k = KernelDesc::compute("tiny", 1_000, 1);
        let t = d.kernel_duration(&k, 1);
        assert!(t < d.config.kernel_latency + SimDuration::from_micros(1));
    }

    #[test]
    fn utilisation_is_a_fraction() {
        let mut d = dev();
        let elapsed = SimDuration::from_millis(10);
        d.sm_busy_ns = u128::from(d.config.sm_total) * u128::from(elapsed.as_nanos()) / 2;
        assert!((d.utilisation(elapsed) - 0.5).abs() < 1e-12);
        assert_eq!(d.utilisation(SimDuration::ZERO), 0.0);
    }
}
