//! Work items — the vocabulary of things a host can submit to a stream.

use crate::kernel::KernelDesc;
use crate::stream::{CollectiveId, EventId};
use crate::time::SimDuration;

/// Direction/route of a DMA copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CopyKind {
    /// Host memory to the stream's device (input batches; uses the device's
    /// host-to-device copy engine).
    HostToDevice,
    /// Stream's device to host memory (metrics, checkpoints).
    DeviceToHost,
    /// Peer-to-peer to another device over the PCIe tree.
    PeerToPeer {
        /// Destination device index.
        to: u32,
    },
}

/// One unit of work submitted to a stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkItem {
    /// Occupy SMs for the kernel's modelled duration.
    Kernel(KernelDesc),
    /// Move `bytes` over the copy engine / PCIe path.
    Copy {
        /// Route of the transfer.
        kind: CopyKind,
        /// Bytes transferred.
        bytes: u64,
        /// Label recorded in the trace.
        label: &'static str,
    },
    /// Signal an event when all preceding work on this stream is done.
    RecordEvent(EventId),
    /// Block this stream until the event is signalled.
    WaitEvent(EventId),
    /// Deliver `(now, tag)` to the host completion queue. Zero duration.
    Callback {
        /// Opaque host cookie.
        tag: u64,
    },
    /// Rendezvous: the collective begins when every participating stream
    /// reaches its join item, and occupies all of them for the collective's
    /// modelled duration (ring all-reduce).
    JoinCollective(CollectiveId),
    /// Occupies the stream (but no SMs or copy engines) for a fixed span.
    /// Models host-side stalls such as per-task scheduling overhead.
    Delay {
        /// Length of the stall.
        duration: SimDuration,
        /// Label recorded in the trace.
        label: &'static str,
    },
}

impl WorkItem {
    /// Short label for traces and debugging.
    pub fn label(&self) -> &'static str {
        match self {
            WorkItem::Kernel(k) => k.label,
            WorkItem::Copy { label, .. } => label,
            WorkItem::RecordEvent(_) => "record-event",
            WorkItem::WaitEvent(_) => "wait-event",
            WorkItem::Callback { .. } => "callback",
            WorkItem::JoinCollective(_) => "collective",
            WorkItem::Delay { label, .. } => label,
        }
    }

    /// True for items that consume simulated time when dispatched.
    pub fn is_timed(&self) -> bool {
        matches!(
            self,
            WorkItem::Kernel(_)
                | WorkItem::Copy { .. }
                | WorkItem::JoinCollective(_)
                | WorkItem::Delay { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_timing() {
        let k = WorkItem::Kernel(KernelDesc::compute("conv", 1, 1));
        assert_eq!(k.label(), "conv");
        assert!(k.is_timed());
        let cb = WorkItem::Callback { tag: 0 };
        assert_eq!(cb.label(), "callback");
        assert!(!cb.is_timed());
        let w = WorkItem::WaitEvent(EventId(0));
        assert!(!w.is_timed());
        let c = WorkItem::Copy {
            kind: CopyKind::HostToDevice,
            bytes: 10,
            label: "h2d",
        };
        assert!(c.is_timed());
        assert_eq!(c.label(), "h2d");
    }
}
