//! Deterministic fault injection for the simulated machine.
//!
//! The paper's motivation (§2.3) is that synchronous training is hostage
//! to its slowest participant; evaluating the reproduction's recovery
//! machinery therefore needs *repeatable* misbehaviour. A [`FaultPlan`] is
//! an immutable schedule of faults, fixed before the simulation starts and
//! queried by the [`Machine`](crate::Machine) as it dispatches work, so
//! faults interleave with real work exactly like device errors interleave
//! with CUDA streams:
//!
//! * **stragglers** stretch the duration of every kernel launched on a
//!   device inside a time window — a thermally throttled or contended GPU;
//! * **transient kernel/collective faults** let the doomed item consume
//!   its full duration and then poison its stream(s) with a *sticky
//!   error*, which the next host callback on the stream observes as a
//!   [`WorkOutcome::Failed`] (mirroring CUDA's sticky per-context errors
//!   being reported by the next synchronising call). Observation clears
//!   the error, so the host can retry on the same stream;
//! * **offline windows** take a device out of service: its streams stop
//!   dispatching new work until the device comes back, at which point the
//!   machine wakes them — in-flight work is not interrupted.
//!
//! All scheduling is in simulated time and all matching is by
//! deterministic indices (the n-th kernel launch on a device, the n-th
//! collective started machine-wide), so a plan plus a workload replays
//! identically. [`FaultPlan::from_seed`] derives a small random plan from
//! a seed with an inline SplitMix64, giving `SessionConfig::seed`-level
//! reproducibility without any dependency.

use crate::time::{SimDuration, SimTime};

/// What kind of injected fault poisoned a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A kernel failed after launch.
    Kernel,
    /// A collective failed; every participant observes it.
    Collective,
}

/// Outcome of the work preceding a host callback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkOutcome {
    /// Everything before the callback completed normally.
    Success,
    /// An injected fault poisoned the stream since the last observation.
    /// Observing the outcome clears the sticky error, permitting retries.
    Failed(FaultKind),
}

impl WorkOutcome {
    /// True for [`WorkOutcome::Success`].
    pub fn is_success(self) -> bool {
        self == WorkOutcome::Success
    }
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultSpec {
    /// Kernels launched on `device` within `[from, until)` run
    /// `factor` times slower.
    Straggler {
        /// Afflicted device index.
        device: usize,
        /// Window start (inclusive, launch time).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Duration multiplier (> 1 slows the device down).
        factor: f64,
    },
    /// The `after`-th (0-based) kernel launch on `device`, and the
    /// `count - 1` launches after it, fail after consuming their duration.
    TransientKernel {
        /// Afflicted device index.
        device: usize,
        /// Index of the first failing launch on that device.
        after: u64,
        /// Number of consecutive failing launches.
        count: u32,
    },
    /// The `after`-th (0-based) collective started machine-wide, and the
    /// `count - 1` collectives after it, fail on every participant.
    TransientCollective {
        /// Index of the first failing collective.
        after: u64,
        /// Number of consecutive failing collectives.
        count: u32,
    },
    /// `device` dispatches no new work during `[from, until)`; its streams
    /// park and are woken at `until`.
    Offline {
        /// Afflicted device index.
        device: usize,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// The whole host dies at `at`: the training process is gone and only
    /// durable state (on-disk checkpoints) survives. Unlike device faults
    /// the machine cannot recover in-run; drivers observe the crash point
    /// and abandon the simulation, then a fresh process resumes from the
    /// checkpoint store.
    HostCrash {
        /// Simulated time of the crash.
        at: SimTime,
    },
}

/// An immutable, deterministic schedule of faults.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The scheduled faults.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Adds a straggler window (builder style).
    ///
    /// # Panics
    /// Panics on an empty window or a factor below 1.
    pub fn straggler(mut self, device: usize, from: SimTime, until: SimTime, factor: f64) -> Self {
        assert!(from < until, "straggler window must be non-empty");
        assert!(factor >= 1.0, "straggler factor must be >= 1");
        self.specs.push(FaultSpec::Straggler {
            device,
            from,
            until,
            factor,
        });
        self
    }

    /// Adds a transient kernel fault (builder style).
    ///
    /// # Panics
    /// Panics on a zero count.
    pub fn transient_kernel(mut self, device: usize, after: u64, count: u32) -> Self {
        assert!(count > 0, "need at least one failing launch");
        self.specs.push(FaultSpec::TransientKernel {
            device,
            after,
            count,
        });
        self
    }

    /// Adds a transient collective fault (builder style).
    ///
    /// # Panics
    /// Panics on a zero count.
    pub fn transient_collective(mut self, after: u64, count: u32) -> Self {
        assert!(count > 0, "need at least one failing collective");
        self.specs
            .push(FaultSpec::TransientCollective { after, count });
        self
    }

    /// Adds an offline window (builder style).
    ///
    /// # Panics
    /// Panics on an empty window.
    pub fn offline(mut self, device: usize, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "offline window must be non-empty");
        self.specs.push(FaultSpec::Offline {
            device,
            from,
            until,
        });
        self
    }

    /// Derives a small plan deterministically from a seed: one straggler
    /// window (2–4x on a random device) and one transient collective
    /// fault, both placed inside the first `horizon` of simulated time.
    /// The same `(seed, n_gpus, horizon)` always yields the same plan.
    ///
    /// # Panics
    /// Panics on zero GPUs or a zero horizon.
    pub fn from_seed(seed: u64, n_gpus: usize, horizon: SimDuration) -> Self {
        assert!(n_gpus > 0, "need at least one GPU");
        assert!(horizon > SimDuration::ZERO, "need a non-empty horizon");
        let mut state = seed;
        let mut next = move || -> u64 {
            // SplitMix64: the statelessness of the plan (relative to the
            // simulation) is what makes runs replayable.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let horizon_ns = horizon.as_nanos();
        let device = (next() % n_gpus as u64) as usize;
        // Straggler: starts in the first half, lasts a quarter of the
        // horizon, slows the device 2-4x.
        let from = SimTime::from_nanos(next() % (horizon_ns / 2).max(1));
        let until = from + SimDuration::from_nanos((horizon_ns / 4).max(1));
        let factor = 2.0 + (next() % 3) as f64;
        // Transient collective: one of the first 16 collectives fails once.
        let after = next() % 16;
        FaultPlan::none()
            .straggler(device, from, until, factor)
            .transient_collective(after, 1)
    }

    /// Schedules a host crash (builder style).
    pub fn host_crash(mut self, at: SimTime) -> Self {
        self.specs.push(FaultSpec::HostCrash { at });
        self
    }

    /// The earliest scheduled host crash, when the plan has one.
    pub fn host_crash_at(&self) -> Option<SimTime> {
        self.specs
            .iter()
            .filter_map(|s| match *s {
                FaultSpec::HostCrash { at } => Some(at),
                _ => None,
            })
            .min()
    }

    /// Combined duration multiplier for a kernel launched on `device` at
    /// `now` (overlapping windows compound).
    pub fn stretch(&self, device: usize, now: SimTime) -> f64 {
        self.specs
            .iter()
            .filter_map(|s| match *s {
                FaultSpec::Straggler {
                    device: d,
                    from,
                    until,
                    factor,
                } if d == device && from <= now && now < until => Some(factor),
                _ => None,
            })
            .product()
    }

    /// True when the `launch_index`-th kernel launch on `device` must fail.
    pub fn kernel_fails(&self, device: usize, launch_index: u64) -> bool {
        self.specs.iter().any(|s| match *s {
            FaultSpec::TransientKernel {
                device: d,
                after,
                count,
            } => d == device && launch_index >= after && launch_index < after + u64::from(count),
            _ => false,
        })
    }

    /// True when the `start_index`-th collective started machine-wide must
    /// fail.
    pub fn collective_fails(&self, start_index: u64) -> bool {
        self.specs.iter().any(|s| match *s {
            FaultSpec::TransientCollective { after, count } => {
                start_index >= after && start_index < after + u64::from(count)
            }
            _ => false,
        })
    }

    /// When `device` is offline at `now`, the time it comes back; `None`
    /// when the device is in service.
    pub fn offline_until(&self, device: usize, now: SimTime) -> Option<SimTime> {
        self.specs
            .iter()
            .filter_map(|s| match *s {
                FaultSpec::Offline {
                    device: d,
                    from,
                    until,
                } if d == device && from <= now && now < until => Some(until),
                _ => None,
            })
            .max()
    }
}

/// Counters of injected faults, kept by the machine as the plan fires.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Kernels that failed after launch.
    pub kernel_faults: u64,
    /// Collectives that failed (counted once per collective, not per
    /// participant).
    pub collective_faults: u64,
    /// Kernel launches stretched by a straggler window.
    pub straggler_kernels: u64,
    /// Times a stream parked because its device was offline.
    pub offline_stalls: u64,
}

impl FaultStats {
    /// Total injected faults of all kinds.
    pub fn total(&self) -> u64 {
        self.kernel_faults + self.collective_faults + self.straggler_kernels + self.offline_stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.stretch(0, SimTime::from_nanos(5)), 1.0);
        assert!(!p.kernel_fails(0, 0));
        assert!(!p.collective_fails(0));
        assert!(p.offline_until(0, SimTime::ZERO).is_none());
    }

    #[test]
    fn straggler_window_is_half_open_and_per_device() {
        let p = FaultPlan::none().straggler(
            1,
            SimTime::from_nanos(10 * MS),
            SimTime::from_nanos(20 * MS),
            3.0,
        );
        assert_eq!(p.stretch(1, SimTime::from_nanos(10 * MS)), 3.0);
        assert_eq!(p.stretch(1, SimTime::from_nanos(20 * MS)), 1.0);
        assert_eq!(p.stretch(0, SimTime::from_nanos(15 * MS)), 1.0);
    }

    #[test]
    fn overlapping_stragglers_compound() {
        let p = FaultPlan::none()
            .straggler(0, SimTime::ZERO, SimTime::from_nanos(MS), 2.0)
            .straggler(0, SimTime::ZERO, SimTime::from_nanos(MS), 3.0);
        assert_eq!(p.stretch(0, SimTime::ZERO), 6.0);
    }

    #[test]
    fn transient_faults_match_index_ranges() {
        let p = FaultPlan::none()
            .transient_kernel(2, 5, 2)
            .transient_collective(1, 1);
        assert!(!p.kernel_fails(2, 4));
        assert!(p.kernel_fails(2, 5));
        assert!(p.kernel_fails(2, 6));
        assert!(!p.kernel_fails(2, 7));
        assert!(!p.kernel_fails(0, 5), "other devices unaffected");
        assert!(!p.collective_fails(0));
        assert!(p.collective_fails(1));
        assert!(!p.collective_fails(2));
    }

    #[test]
    fn offline_reports_latest_return_time() {
        let p = FaultPlan::none()
            .offline(0, SimTime::ZERO, SimTime::from_nanos(10))
            .offline(0, SimTime::from_nanos(5), SimTime::from_nanos(30));
        assert_eq!(
            p.offline_until(0, SimTime::from_nanos(7)),
            Some(SimTime::from_nanos(30))
        );
        assert_eq!(
            p.offline_until(0, SimTime::from_nanos(2)),
            Some(SimTime::from_nanos(10)),
            "only the first window covers t=2"
        );
        assert!(p.offline_until(0, SimTime::from_nanos(30)).is_none());
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let h = SimDuration::from_millis(500);
        let a = FaultPlan::from_seed(7, 8, h);
        let b = FaultPlan::from_seed(7, 8, h);
        let c = FaultPlan::from_seed(8, 8, h);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds give different plans");
        assert_eq!(a.specs().len(), 2);
    }

    #[test]
    fn host_crash_reports_earliest_time() {
        let p = FaultPlan::none();
        assert!(p.host_crash_at().is_none());
        let p = p
            .host_crash(SimTime::from_nanos(40 * MS))
            .host_crash(SimTime::from_nanos(10 * MS));
        assert_eq!(p.host_crash_at(), Some(SimTime::from_nanos(10 * MS)));
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn speedup_factor_rejected() {
        let _ = FaultPlan::none().straggler(0, SimTime::ZERO, SimTime::from_nanos(1), 0.5);
    }
}
