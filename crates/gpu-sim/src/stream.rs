//! Streams, stream state and the id newtypes shared across the simulator.
//!
//! A stream is an in-order queue of device work, mirroring a CUDA stream:
//! items on one stream execute in issue order; items on different streams
//! may execute concurrently subject to SM and copy-engine availability, and
//! can be ordered across streams with events.

use crate::fault::FaultKind;
use crate::work::WorkItem;
use std::collections::VecDeque;

/// Identifier of a simulated GPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub(crate) u32);

/// Identifier of a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub(crate) u32);

/// Identifier of a one-shot synchronisation event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u32);

/// Identifier of a collective rendezvous.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CollectiveId(pub(crate) u32);

impl DeviceId {
    /// Raw index, usable for indexing per-device tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl StreamId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EventId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl CollectiveId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Execution status of a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum StreamState {
    /// Ready to dispatch the item at the front of its queue.
    Idle,
    /// The head item occupies the device (kernel, copy or collective span).
    Running,
    /// Blocked on an unsignalled event.
    BlockedOnEvent(EventId),
    /// A kernel is at the head but no SMs are free.
    WaitingForSms,
    /// Arrived at a collective; waiting for the other participants.
    InCollective(CollectiveId),
    /// Parked because the stream's device is offline; a scheduled wake
    /// re-idles the stream when the device returns.
    Offline,
}

/// Internal stream bookkeeping.
#[derive(Debug)]
pub(crate) struct Stream {
    pub(crate) device: DeviceId,
    pub(crate) queue: VecDeque<WorkItem>,
    pub(crate) state: StreamState,
    /// Total items ever submitted; used for idleness accounting and tests.
    pub(crate) submitted: u64,
    /// Total items fully retired.
    pub(crate) retired: u64,
    /// Sticky injected-fault error, observed (and cleared) by the next
    /// host callback on this stream — CUDA-style sticky error semantics.
    pub(crate) error: Option<FaultKind>,
}

impl Stream {
    pub(crate) fn new(device: DeviceId) -> Self {
        Stream {
            device,
            queue: VecDeque::new(),
            state: StreamState::Idle,
            submitted: 0,
            retired: 0,
            error: None,
        }
    }

    /// True when the stream has no queued or in-flight work.
    pub(crate) fn is_quiescent(&self) -> bool {
        self.queue.is_empty() && self.state == StreamState::Idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_stream_is_quiescent() {
        let s = Stream::new(DeviceId(0));
        assert!(s.is_quiescent());
        assert_eq!(s.submitted, 0);
        assert_eq!(s.retired, 0);
    }

    #[test]
    fn queued_work_breaks_quiescence() {
        let mut s = Stream::new(DeviceId(0));
        s.queue.push_back(WorkItem::Callback { tag: 1 });
        assert!(!s.is_quiescent());
    }

    #[test]
    fn ids_expose_indices() {
        assert_eq!(DeviceId(3).index(), 3);
        assert_eq!(StreamId(4).index(), 4);
        assert_eq!(EventId(5).index(), 5);
        assert_eq!(CollectiveId(6).index(), 6);
    }
}
