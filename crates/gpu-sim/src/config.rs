//! Machine configuration and presets.

use crate::fault::FaultPlan;
use crate::time::SimDuration;
use crate::topology::{Topology, PCIE3_X16};

/// Static parameters of one simulated GPU.
#[derive(Clone, Copy, Debug)]
pub struct DeviceConfig {
    /// Number of streaming multiprocessors.
    pub sm_total: u32,
    /// Peak floating-point throughput of one SM (FLOP/s).
    pub flops_per_sm: f64,
    /// Fraction of peak a real kernel achieves; folds cuDNN/algorithm
    /// efficiency into the cost model (calibrated so that, e.g., a
    /// ResNet-50 learning task takes ~220 ms, matching §5.2).
    pub efficiency: f64,
    /// Device memory bandwidth (bytes/s).
    pub mem_bandwidth: f64,
    /// Fixed cost to launch one kernel (driver + dispatch).
    pub kernel_latency: SimDuration,
    /// Fixed cost to start one DMA transfer.
    pub copy_latency: SimDuration,
}

impl DeviceConfig {
    /// A GTX Titan X (Pascal): 28 SMs (3,584/128... the paper's card
    /// reports 3,072 cores = 24 SMs at 128 cores/SM), ~10 TFLOPS fp32 peak,
    /// 480 GB/s memory bandwidth.
    pub fn titan_x_pascal() -> Self {
        let sm_total = 24;
        DeviceConfig {
            sm_total,
            flops_per_sm: 10.0e12 / sm_total as f64,
            // DNN kernels on small batches reach a modest fraction of
            // peak. Calibrated so a batch-32 ResNet-50 learning task takes
            // ~220 ms, the figure the paper reports in §5.2.
            efficiency: 0.17,
            mem_bandwidth: 480.0e9,
            kernel_latency: SimDuration::from_micros(5),
            copy_latency: SimDuration::from_micros(10),
        }
    }

    /// Effective FLOP/s of `sms` granted multiprocessors.
    pub fn effective_flops(&self, sms: u32) -> f64 {
        self.flops_per_sm * self.efficiency * f64::from(sms)
    }
}

/// Static parameters of the whole simulated server.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Per-GPU configuration (homogeneous, like the paper's testbed).
    pub device: DeviceConfig,
    /// Number of GPUs.
    pub n_gpus: usize,
    /// Interconnect topology.
    pub topology: Topology,
    /// Per-step latency of a collective (software + link setup).
    pub collective_step_latency: SimDuration,
    /// Whether to record a full execution trace (cheap, but grows with the
    /// number of items; benches on long runs can disable it).
    pub record_trace: bool,
    /// Deterministic fault schedule ([`FaultPlan::none`] = healthy run).
    pub fault_plan: FaultPlan,
}

impl MachineConfig {
    /// The paper's testbed scaled to `n_gpus`: Titan X GPUs on a PCIe 3.0
    /// x16 binary-tree topology (§5.1).
    pub fn titan_x_server(n_gpus: usize) -> Self {
        MachineConfig {
            device: DeviceConfig::titan_x_pascal(),
            n_gpus,
            topology: Topology::binary_tree(n_gpus, PCIE3_X16),
            collective_step_latency: SimDuration::from_micros(20),
            record_trace: true,
            fault_plan: FaultPlan::none(),
        }
    }

    /// Disables trace recording (builder style).
    pub fn without_trace(mut self) -> Self {
        self.record_trace = false;
        self
    }

    /// Installs a fault schedule (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_preset_is_consistent() {
        let c = MachineConfig::titan_x_server(8);
        assert_eq!(c.n_gpus, 8);
        assert_eq!(c.topology.gpu_count(), 8);
        assert!(c.device.sm_total > 0);
        assert!(c.device.effective_flops(c.device.sm_total) > 1e12);
    }

    #[test]
    fn effective_flops_scales_with_sms() {
        let d = DeviceConfig::titan_x_pascal();
        let one = d.effective_flops(1);
        let all = d.effective_flops(d.sm_total);
        assert!((all / one - f64::from(d.sm_total)).abs() < 1e-9);
    }

    #[test]
    fn without_trace_clears_flag() {
        let c = MachineConfig::titan_x_server(1).without_trace();
        assert!(!c.record_trace);
    }
}
