//! Collective operations (ring all-reduce).
//!
//! CROSSBOW's global synchronisation tasks aggregate the per-GPU reference
//! models with a collective all-reduce (paper §4.2, citing Horovod \[56\]).
//! A ring all-reduce over `k` participants splits the buffer into `k`
//! chunks and performs `2(k-1)` steps (a reduce-scatter phase followed by
//! an all-gather phase); each step moves one chunk between every pair of
//! ring neighbours concurrently, so a step's duration is bounded by the
//! slowest link on the ring.
//!
//! The rendezvous semantics mirror NCCL: the collective starts when every
//! participating stream has reached its join item, occupies all of them for
//! the modelled duration and completes simultaneously on all of them.

use crate::stream::StreamId;
use crate::time::SimDuration;

/// A pending or running collective.
#[derive(Debug)]
pub(crate) struct Collective {
    pub(crate) participants: Vec<StreamId>,
    pub(crate) arrived: u32,
    pub(crate) bytes: u64,
    pub(crate) label: &'static str,
    pub(crate) started: bool,
}

impl Collective {
    pub(crate) fn new(participants: Vec<StreamId>, bytes: u64, label: &'static str) -> Self {
        assert!(!participants.is_empty(), "collective needs participants");
        Collective {
            participants,
            arrived: 0,
            bytes,
            label,
            started: false,
        }
    }

    /// Records one participant's arrival; true when all have arrived.
    pub(crate) fn arrive(&mut self) -> bool {
        self.arrived += 1;
        debug_assert!(self.arrived as usize <= self.participants.len());
        self.arrived as usize == self.participants.len()
    }
}

/// Duration of a ring all-reduce of `bytes` over `k` participants with the
/// given bottleneck link bandwidth (bytes/s) and per-step latency.
///
/// `k == 1` degenerates to a device-local reduction: only one step latency.
pub fn ring_all_reduce_duration(
    bytes: u64,
    k: usize,
    bottleneck_bw: f64,
    step_latency: SimDuration,
) -> SimDuration {
    assert!(k >= 1, "all-reduce needs at least one participant");
    assert!(bottleneck_bw > 0.0, "bandwidth must be positive");
    if k == 1 {
        return step_latency;
    }
    let steps = 2 * (k - 1) as u64;
    let chunk = bytes as f64 / k as f64;
    let per_step = SimDuration::from_secs_f64(chunk / bottleneck_bw) + step_latency;
    let mut total = SimDuration::ZERO;
    for _ in 0..steps {
        total = total + per_step;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn single_participant_costs_one_latency() {
        let d = ring_all_reduce_duration(1 << 30, 1, 12e9, SimDuration::from_micros(20));
        assert_eq!(d, SimDuration::from_micros(20));
    }

    #[test]
    fn duration_grows_with_participants_but_sublinearly_in_bytes_per_gpu() {
        let bw = 12e9;
        let lat = SimDuration::from_micros(20);
        let bytes = 100_000_000u64; // 100 MB model
        let d2 = ring_all_reduce_duration(bytes, 2, bw, lat);
        let d8 = ring_all_reduce_duration(bytes, 8, bw, lat);
        assert!(d8 > d2);
        // Ring property: total wire time approaches 2 * bytes / bw as k
        // grows, so d8 < 2 * d2.
        assert!(d8.as_nanos() < 2 * d2.as_nanos(), "{d8} vs {d2}");
    }

    #[test]
    fn matches_closed_form() {
        // 12 MB over 4 GPUs at 12 GB/s: chunk 3 MB, step 0.25 ms, 6 steps
        // = 1.5 ms + 6 * 20 us = 1.62 ms.
        let d = ring_all_reduce_duration(12_000_000, 4, 12e9, SimDuration::from_micros(20));
        assert_eq!(d.as_nanos(), 1_500_000 + 6 * 20_000);
        let _ = MS;
    }

    #[test]
    fn arrive_counts_to_full() {
        let mut c = Collective::new(vec![StreamId(0), StreamId(1)], 10, "ar");
        assert!(!c.arrive());
        assert!(c.arrive());
    }

    #[test]
    #[should_panic(expected = "participants")]
    fn empty_collective_rejected() {
        let _ = Collective::new(vec![], 10, "ar");
    }
}
