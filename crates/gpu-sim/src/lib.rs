//! A deterministic discrete-event simulator of a multi-GPU server.
//!
//! The CROSSBOW paper evaluates on a server with 8 GTX Titan X GPUs, CUDA
//! streams/events and NCCL collectives. None of that hardware is available
//! to this reproduction, so this crate substitutes it with an event-driven
//! model that preserves the *scheduling* phenomena the paper measures:
//!
//! * **streams** execute work in issue order; work on different streams may
//!   overlap ([`stream`]);
//! * **events** provide publish/subscribe synchronisation across streams
//!   without stalling the whole device ([`work::WorkItem::RecordEvent`] /
//!   [`work::WorkItem::WaitEvent`]);
//! * **kernels** occupy streaming multiprocessors (SMs): a kernel grabs up
//!   to its SM demand at launch and runs for a duration derived from its
//!   FLOP count and granted SMs — small kernels leave SMs free, so
//!   concurrent streams genuinely overlap, which is what makes training
//!   multiple model replicas per GPU profitable and then saturate
//!   ([`device`]);
//! * **copy engines** move data over a PCIe tree topology concurrently with
//!   compute ([`topology`]);
//! * **collectives** implement a ring all-reduce rendezvous with the cost
//!   model `2(k-1)` chunk steps over the slowest link ([`collective`]).
//!
//! The host (the CROSSBOW task engine in the `crossbow` crate) drives a
//! [`Machine`] by submitting work items to streams and reacting to
//! completion callbacks, exactly like a CUDA host thread. Simulation is
//! fully deterministic: equal submissions produce identical traces.
//!
//! # Example
//!
//! ```
//! use crossbow_gpu_sim::{Machine, MachineConfig, KernelDesc};
//!
//! let mut machine = Machine::new(MachineConfig::titan_x_server(2));
//! let dev = machine.device(0);
//! let stream = machine.create_stream(dev);
//! machine.submit_kernel(stream, KernelDesc::compute("gemm", 1_000_000_000, 8));
//! machine.callback(stream, 42);
//! let completions = machine.run();
//! assert_eq!(completions[0].tag, 42);
//! assert!(machine.now().as_nanos() > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod collective;
pub mod config;
pub mod device;
pub mod fault;
pub mod kernel;
pub mod machine;
pub mod stream;
pub mod time;
pub mod topology;
pub mod trace;
pub mod work;

pub use config::{DeviceConfig, MachineConfig};
pub use fault::{FaultKind, FaultPlan, FaultSpec, FaultStats, WorkOutcome};
pub use kernel::KernelDesc;
pub use machine::{Completion, Machine};
pub use stream::{DeviceId, EventId, StreamId};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceKind, TraceRecord};
pub use work::{CopyKind, WorkItem};
