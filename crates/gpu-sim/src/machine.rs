//! The simulated machine: devices, streams, events, collectives and the
//! discrete-event engine that drives them.
//!
//! # Driving model
//!
//! The host (CROSSBOW's task engine) interacts with a [`Machine`] like a
//! CUDA host thread interacts with a driver:
//!
//! 1. create streams on devices and events;
//! 2. submit work items — all submissions are non-blocking;
//! 3. advance the simulation with [`Machine::run`] (until quiescent) or
//!    [`Machine::run_until_callback`] (until a host callback fires), and
//!    react to [`Completion`]s by submitting more work.
//!
//! Host reactions take zero simulated time; per-task host overhead is
//! modelled explicitly by the task engine where it matters (the paper's
//! LeNet experiment shows scheduling overhead dominating sub-millisecond
//! tasks, §5.2).
//!
//! The engine is deterministic: ties in the event queue are broken by
//! submission order, and all wake-ups process waiters in FIFO order.

use crate::collective::{ring_all_reduce_duration, Collective};
use crate::config::MachineConfig;
use crate::device::Device;
use crate::fault::{FaultKind, FaultStats, WorkOutcome};
use crate::kernel::KernelDesc;
use crate::stream::{CollectiveId, DeviceId, EventId, Stream, StreamId, StreamState};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceKind, TraceRecord};
use crate::work::{CopyKind, WorkItem};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A host-visible completion, produced by [`WorkItem::Callback`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// Simulated time at which the callback fired.
    pub time: SimTime,
    /// The tag given at submission.
    pub tag: u64,
    /// Whether the work preceding the callback succeeded. Injected faults
    /// poison the stream with a sticky error; the callback that observes
    /// it reports [`WorkOutcome::Failed`] and clears it, so the host can
    /// resubmit on the same stream.
    pub outcome: WorkOutcome,
}

#[derive(Debug, PartialEq, Eq)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    action: Action,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Action {
    KernelDone {
        stream: StreamId,
        sms: u32,
    },
    CopyDone {
        stream: StreamId,
    },
    CollectiveDone {
        stream: StreamId,
    },
    /// Re-idles a stream parked by an offline window when its device
    /// returns to service.
    StreamWake {
        stream: StreamId,
    },
}

#[derive(Debug, Default)]
struct EventState {
    signalled: bool,
    waiters: Vec<StreamId>,
}

/// A simulated multi-GPU server.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Scheduled>>,
    devices: Vec<Device>,
    streams: Vec<Stream>,
    events: Vec<EventState>,
    collectives: Vec<Collective>,
    completions: VecDeque<Completion>,
    trace: Trace,
    /// Kernel launches so far, per device — the index faults match on.
    kernel_launches: Vec<u64>,
    /// Collectives started machine-wide — the index faults match on.
    collectives_started: u64,
    fault_stats: FaultStats,
}

impl Machine {
    /// Builds a machine from a configuration.
    pub fn new(config: MachineConfig) -> Self {
        let devices = (0..config.n_gpus)
            .map(|_| Device::new(config.device))
            .collect();
        let trace = Trace::new(config.record_trace);
        let kernel_launches = vec![0; config.n_gpus];
        Machine {
            config,
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            devices,
            streams: Vec::new(),
            events: Vec::new(),
            collectives: Vec::new(),
            completions: VecDeque::new(),
            trace,
            kernel_launches,
            collectives_started: 0,
            fault_stats: FaultStats::default(),
        }
    }

    /// Counters of injected faults fired so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Number of GPUs.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Id of the `i`-th GPU.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn device(&self, i: usize) -> DeviceId {
        assert!(i < self.devices.len(), "device {i} out of range");
        DeviceId(i as u32)
    }

    /// Creates a stream on a device.
    pub fn create_stream(&mut self, device: DeviceId) -> StreamId {
        assert!(device.index() < self.devices.len(), "unknown device");
        self.streams.push(Stream::new(device));
        StreamId((self.streams.len() - 1) as u32)
    }

    /// The device a stream belongs to.
    pub fn stream_device(&self, stream: StreamId) -> DeviceId {
        self.streams[stream.index()].device
    }

    /// Creates a one-shot event.
    pub fn create_event(&mut self) -> EventId {
        self.events.push(EventState::default());
        EventId((self.events.len() - 1) as u32)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The execution trace (empty when recording is disabled).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Clears the trace without affecting machine state; useful to discard
    /// warm-up iterations before measuring.
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }

    /// SM utilisation of a device over the elapsed simulated time.
    pub fn utilisation(&self, device: DeviceId) -> f64 {
        self.devices[device.index()].utilisation(self.now - SimTime::ZERO)
    }

    /// True when no stream has queued or in-flight work.
    pub fn is_quiescent(&self) -> bool {
        self.heap.is_empty() && self.streams.iter().all(|s| s.is_quiescent())
    }

    /// Submits a work item to a stream (non-blocking).
    pub fn submit(&mut self, stream: StreamId, item: WorkItem) {
        let s = &mut self.streams[stream.index()];
        s.queue.push_back(item);
        s.submitted += 1;
        if s.state == StreamState::Idle {
            self.pump(vec![stream]);
        }
    }

    /// Submits a kernel.
    pub fn submit_kernel(&mut self, stream: StreamId, kernel: KernelDesc) {
        self.submit(stream, WorkItem::Kernel(kernel));
    }

    /// Submits a copy.
    pub fn submit_copy(
        &mut self,
        stream: StreamId,
        kind: CopyKind,
        bytes: u64,
        label: &'static str,
    ) {
        self.submit(stream, WorkItem::Copy { kind, bytes, label });
    }

    /// Records an event on a stream: the event signals once all previously
    /// submitted work on that stream has completed.
    pub fn record_event(&mut self, stream: StreamId, event: EventId) {
        self.submit(stream, WorkItem::RecordEvent(event));
    }

    /// Makes a stream wait for an event before running later work.
    pub fn wait_event(&mut self, stream: StreamId, event: EventId) {
        self.submit(stream, WorkItem::WaitEvent(event));
    }

    /// Enqueues a host callback behind all prior work on the stream.
    pub fn callback(&mut self, stream: StreamId, tag: u64) {
        self.submit(stream, WorkItem::Callback { tag });
    }

    /// Stalls the stream for a fixed span (host scheduling overhead).
    pub fn delay(&mut self, stream: StreamId, duration: SimDuration, label: &'static str) {
        self.submit(stream, WorkItem::Delay { duration, label });
    }

    /// Starts a ring all-reduce across `streams` (one join item per
    /// stream). The collective begins when every stream reaches its join
    /// item and occupies all of them for the modelled duration.
    ///
    /// # Panics
    /// Panics if `streams` is empty.
    pub fn all_reduce(&mut self, streams: &[StreamId], bytes: u64, label: &'static str) {
        assert!(!streams.is_empty(), "all_reduce needs at least one stream");
        self.collectives
            .push(Collective::new(streams.to_vec(), bytes, label));
        let cid = CollectiveId((self.collectives.len() - 1) as u32);
        for &s in streams {
            self.submit(s, WorkItem::JoinCollective(cid));
        }
    }

    /// Takes the oldest pending completion, if any, without advancing time.
    pub fn poll_completion(&mut self) -> Option<Completion> {
        self.completions.pop_front()
    }

    /// Advances the simulation until a completion is available (returning
    /// it) or the machine is quiescent (returning `None`).
    pub fn run_until_callback(&mut self) -> Option<Completion> {
        loop {
            if let Some(c) = self.completions.pop_front() {
                return Some(c);
            }
            if !self.step() {
                return None;
            }
        }
    }

    /// Runs the machine until quiescent and returns all completions fired
    /// along the way (including previously pending ones), in time order.
    pub fn run(&mut self) -> Vec<Completion> {
        while self.step() {}
        let mut out: Vec<Completion> = self.completions.drain(..).collect();
        out.sort_by_key(|c| (c.time, c.tag));
        out
    }

    /// Processes the next scheduled action. Returns `false` when nothing
    /// is scheduled.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(sch)) = self.heap.pop() else {
            return false;
        };
        debug_assert!(sch.time >= self.now, "time went backwards");
        self.now = sch.time;
        let mut worklist = Vec::new();
        match sch.action {
            Action::KernelDone { stream, sms } => {
                let dev_id = self.streams[stream.index()].device;
                let dev = &mut self.devices[dev_id.index()];
                dev.release(sms);
                // Wake SM waiters while capacity remains; a woken stream
                // re-enters the wait queue if others grab the SMs first.
                while dev.free_sms > 0 {
                    let Some(w) = dev.sm_waiters.pop_front() else {
                        break;
                    };
                    self.streams[w.index()].state = StreamState::Idle;
                    worklist.push(w);
                }
                self.finish_item(stream, &mut worklist);
            }
            Action::CopyDone { stream } | Action::CollectiveDone { stream } => {
                self.finish_item(stream, &mut worklist);
            }
            Action::StreamWake { stream } => {
                debug_assert_eq!(self.streams[stream.index()].state, StreamState::Offline);
                self.streams[stream.index()].state = StreamState::Idle;
                worklist.push(stream);
            }
        }
        self.pump(worklist);
        true
    }

    fn finish_item(&mut self, stream: StreamId, worklist: &mut Vec<StreamId>) {
        let s = &mut self.streams[stream.index()];
        debug_assert!(matches!(
            s.state,
            StreamState::Running | StreamState::InCollective(_)
        ));
        s.state = StreamState::Idle;
        s.retired += 1;
        worklist.push(stream);
    }

    fn schedule(&mut self, time: SimTime, action: Action) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { time, seq, action }));
    }

    /// Dispatches ready work on every stream in the worklist until each is
    /// running, blocked or drained. Iterative (no recursion) so deep
    /// event chains cannot overflow the stack.
    fn pump(&mut self, mut worklist: Vec<StreamId>) {
        while let Some(s) = worklist.pop() {
            self.advance_stream(s, &mut worklist);
        }
    }

    fn advance_stream(&mut self, sid: StreamId, worklist: &mut Vec<StreamId>) {
        loop {
            if self.streams[sid.index()].state != StreamState::Idle {
                return;
            }
            let Some(&item) = self.streams[sid.index()].queue.front() else {
                return;
            };
            // An offline device dispatches nothing; park the stream and
            // schedule its wake for when the device returns. In-flight
            // work (already Running) is not interrupted.
            {
                let dev_id = self.streams[sid.index()].device;
                if let Some(until) = self
                    .config
                    .fault_plan
                    .offline_until(dev_id.index(), self.now)
                {
                    self.streams[sid.index()].state = StreamState::Offline;
                    self.fault_stats.offline_stalls += 1;
                    self.schedule(until, Action::StreamWake { stream: sid });
                    return;
                }
            }
            match item {
                WorkItem::Kernel(k) => {
                    let dev_id = self.streams[sid.index()].device;
                    let stretch = self.config.fault_plan.stretch(dev_id.index(), self.now);
                    let launch_index = self.kernel_launches[dev_id.index()];
                    let fails = self
                        .config
                        .fault_plan
                        .kernel_fails(dev_id.index(), launch_index);
                    let dev = &mut self.devices[dev_id.index()];
                    let Some(granted) = dev.grant(k.sm_demand) else {
                        dev.sm_waiters.push_back(sid);
                        self.streams[sid.index()].state = StreamState::WaitingForSms;
                        return;
                    };
                    dev.acquire(granted);
                    let mut dur = dev.kernel_duration(&k, granted);
                    if stretch > 1.0 {
                        // Straggler window: the device runs slow.
                        dur = SimDuration::from_secs_f64(dur.as_secs_f64() * stretch);
                    }
                    dev.sm_busy_ns += u128::from(granted) * u128::from(dur.as_nanos());
                    self.kernel_launches[dev_id.index()] = launch_index + 1;
                    if stretch > 1.0 {
                        self.fault_stats.straggler_kernels += 1;
                    }
                    if fails {
                        // The kernel consumes its duration, then the sticky
                        // error surfaces at the next callback.
                        self.streams[sid.index()].error = Some(FaultKind::Kernel);
                        self.fault_stats.kernel_faults += 1;
                    }
                    let end = self.now + dur;
                    self.trace.push(TraceRecord {
                        stream: sid,
                        device: dev_id,
                        kind: TraceKind::Kernel,
                        label: k.label,
                        start: self.now,
                        end,
                        sms: granted,
                    });
                    self.streams[sid.index()].queue.pop_front();
                    self.streams[sid.index()].state = StreamState::Running;
                    self.schedule(
                        end,
                        Action::KernelDone {
                            stream: sid,
                            sms: granted,
                        },
                    );
                    return;
                }
                WorkItem::Copy { kind, bytes, label } => {
                    let dev_id = self.streams[sid.index()].device;
                    let (engine_free, bandwidth) = self.copy_route(dev_id, kind);
                    let start = self.now.max(engine_free);
                    let dur = self.config.device.copy_latency
                        + SimDuration::from_secs_f64(bytes as f64 / bandwidth);
                    let end = start + dur;
                    self.set_copy_engine_free(dev_id, kind, end);
                    self.trace.push(TraceRecord {
                        stream: sid,
                        device: dev_id,
                        kind: TraceKind::Copy,
                        label,
                        start,
                        end,
                        sms: 0,
                    });
                    self.streams[sid.index()].queue.pop_front();
                    self.streams[sid.index()].state = StreamState::Running;
                    self.schedule(end, Action::CopyDone { stream: sid });
                    return;
                }
                WorkItem::RecordEvent(e) => {
                    self.streams[sid.index()].queue.pop_front();
                    self.streams[sid.index()].retired += 1;
                    let ev = &mut self.events[e.index()];
                    ev.signalled = true;
                    for w in ev.waiters.drain(..) {
                        // Waiters re-examine their WaitEvent item, which now
                        // passes immediately.
                        self.streams[w.index()].state = StreamState::Idle;
                        worklist.push(w);
                    }
                }
                WorkItem::WaitEvent(e) => {
                    if self.events[e.index()].signalled {
                        self.streams[sid.index()].queue.pop_front();
                        self.streams[sid.index()].retired += 1;
                    } else {
                        self.events[e.index()].waiters.push(sid);
                        self.streams[sid.index()].state = StreamState::BlockedOnEvent(e);
                        return;
                    }
                }
                WorkItem::Callback { tag } => {
                    self.streams[sid.index()].queue.pop_front();
                    self.streams[sid.index()].retired += 1;
                    let outcome = match self.streams[sid.index()].error.take() {
                        Some(kind) => WorkOutcome::Failed(kind),
                        None => WorkOutcome::Success,
                    };
                    self.completions.push_back(Completion {
                        time: self.now,
                        tag,
                        outcome,
                    });
                }
                WorkItem::Delay { duration, label } => {
                    let dev_id = self.streams[sid.index()].device;
                    let end = self.now + duration;
                    self.trace.push(TraceRecord {
                        stream: sid,
                        device: dev_id,
                        kind: TraceKind::Host,
                        label,
                        start: self.now,
                        end,
                        sms: 0,
                    });
                    self.streams[sid.index()].queue.pop_front();
                    self.streams[sid.index()].state = StreamState::Running;
                    self.schedule(end, Action::CopyDone { stream: sid });
                    return;
                }
                WorkItem::JoinCollective(cid) => {
                    self.streams[sid.index()].queue.pop_front();
                    self.streams[sid.index()].state = StreamState::InCollective(cid);
                    if self.collectives[cid.index()].arrive() {
                        self.start_collective(cid);
                    }
                    return;
                }
            }
        }
    }

    fn start_collective(&mut self, cid: CollectiveId) {
        let (participants, bytes, label) = {
            let c = &mut self.collectives[cid.index()];
            debug_assert!(!c.started, "collective started twice");
            c.started = true;
            (c.participants.clone(), c.bytes, c.label)
        };
        let k = participants.len();
        let bottleneck = self.collective_bottleneck(&participants);
        let dur =
            ring_all_reduce_duration(bytes, k, bottleneck, self.config.collective_step_latency);
        let start_index = self.collectives_started;
        self.collectives_started += 1;
        let fails = self.config.fault_plan.collective_fails(start_index);
        if fails {
            // The rendezvous still costs its full duration, then every
            // participant's stream carries the sticky error.
            self.fault_stats.collective_faults += 1;
        }
        let end = self.now + dur;
        for &p in &participants {
            if fails {
                self.streams[p.index()].error = Some(FaultKind::Collective);
            }
            let dev = self.streams[p.index()].device;
            self.trace.push(TraceRecord {
                stream: p,
                device: dev,
                kind: TraceKind::Collective,
                label,
                start: self.now,
                end,
                sms: 0,
            });
            self.schedule(end, Action::CollectiveDone { stream: p });
        }
    }

    /// Slowest neighbour link around the participants' device ring.
    fn collective_bottleneck(&self, participants: &[StreamId]) -> f64 {
        if participants.len() <= 1 {
            return 1e12;
        }
        let devices: Vec<usize> = participants
            .iter()
            .map(|p| self.streams[p.index()].device.index())
            .collect();
        let k = devices.len();
        (0..k)
            .map(|i| {
                self.config
                    .topology
                    .gpu_to_gpu_bandwidth(devices[i], devices[(i + 1) % k])
            })
            .fold(f64::INFINITY, f64::min)
    }

    fn copy_route(&self, device: DeviceId, kind: CopyKind) -> (SimTime, f64) {
        let dev = &self.devices[device.index()];
        match kind {
            CopyKind::HostToDevice => (
                dev.h2d_free,
                self.config.topology.host_to_gpu_bandwidth(device.index()),
            ),
            CopyKind::DeviceToHost => (
                dev.d2h_free,
                self.config.topology.host_to_gpu_bandwidth(device.index()),
            ),
            CopyKind::PeerToPeer { to } => (
                dev.d2h_free,
                self.config
                    .topology
                    .gpu_to_gpu_bandwidth(device.index(), to as usize),
            ),
        }
    }

    fn set_copy_engine_free(&mut self, device: DeviceId, kind: CopyKind, free_at: SimTime) {
        let dev = &mut self.devices[device.index()];
        match kind {
            CopyKind::HostToDevice => dev.h2d_free = free_at,
            CopyKind::DeviceToHost | CopyKind::PeerToPeer { .. } => dev.d2h_free = free_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(gpus: usize) -> Machine {
        Machine::new(MachineConfig::titan_x_server(gpus))
    }

    /// A kernel with an exactly predictable duration: `ms` milliseconds of
    /// compute on `sms` SMs (plus kernel latency).
    fn timed_kernel(label: &'static str, ms: u64, sms: u32) -> KernelDesc {
        let cfg = crate::config::DeviceConfig::titan_x_pascal();
        let flops = (cfg.effective_flops(sms) * ms as f64 / 1e3) as u64;
        KernelDesc::compute(label, flops, sms)
    }

    #[test]
    fn same_stream_work_serialises() {
        let mut m = machine(1);
        let s = m.create_stream(m.device(0));
        m.submit_kernel(s, timed_kernel("a", 10, 24));
        m.submit_kernel(s, timed_kernel("b", 10, 24));
        m.run();
        let recs = m.trace().records();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].end <= recs[1].start, "in-order execution");
    }

    #[test]
    fn different_streams_overlap_when_sms_allow() {
        let mut m = machine(1);
        let s1 = m.create_stream(m.device(0));
        let s2 = m.create_stream(m.device(0));
        m.submit_kernel(s1, timed_kernel("a", 10, 8));
        m.submit_kernel(s2, timed_kernel("b", 10, 8));
        m.run();
        let recs = m.trace().records();
        assert!(recs[0].overlaps(&recs[1]), "independent streams overlap");
        assert_eq!(recs[0].sms, 8);
        assert_eq!(recs[1].sms, 8);
    }

    #[test]
    fn sm_exhaustion_queues_kernels() {
        let mut m = machine(1);
        let s1 = m.create_stream(m.device(0));
        let s2 = m.create_stream(m.device(0));
        // First kernel takes the whole device.
        m.submit_kernel(s1, timed_kernel("big", 10, 24));
        m.submit_kernel(s2, timed_kernel("queued", 1, 4));
        m.run();
        let recs = m.trace().records();
        assert!(
            recs[1].start >= recs[0].end,
            "second kernel must wait for SMs"
        );
    }

    #[test]
    fn partial_grant_slows_kernel_down() {
        let mut m = machine(1);
        let s1 = m.create_stream(m.device(0));
        let s2 = m.create_stream(m.device(0));
        m.submit_kernel(s1, timed_kernel("hog", 50, 20));
        // Demands 24 but only 4 are free: runs 6x slower.
        m.submit_kernel(s2, timed_kernel("starved", 10, 24));
        m.run();
        let recs = m.trace().records();
        assert_eq!(recs[1].sms, 4);
        let slowdown =
            recs[1].duration().as_nanos() as f64 / SimDuration::from_millis(10).as_nanos() as f64;
        assert!(
            slowdown > 5.0,
            "granted 4/24 SMs -> ~6x slower, got {slowdown}"
        );
    }

    #[test]
    fn events_order_across_streams() {
        let mut m = machine(1);
        let s1 = m.create_stream(m.device(0));
        let s2 = m.create_stream(m.device(0));
        let e = m.create_event();
        // s2 waits for s1's kernel even though s2's kernel was submitted
        // first in wall-clock terms.
        m.wait_event(s2, e);
        m.submit_kernel(s2, timed_kernel("after", 1, 4));
        m.submit_kernel(s1, timed_kernel("before", 10, 4));
        m.record_event(s1, e);
        m.run();
        let recs = m.trace().records();
        let before = recs.iter().find(|r| r.label == "before").unwrap();
        let after = recs.iter().find(|r| r.label == "after").unwrap();
        assert!(after.start >= before.end, "event enforces ordering");
    }

    #[test]
    fn wait_on_already_signalled_event_passes() {
        let mut m = machine(1);
        let s1 = m.create_stream(m.device(0));
        let s2 = m.create_stream(m.device(0));
        let e = m.create_event();
        m.record_event(s1, e);
        m.run();
        m.wait_event(s2, e);
        m.callback(s2, 7);
        let done = m.run();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 7);
    }

    #[test]
    fn callbacks_fire_in_order_with_time() {
        let mut m = machine(1);
        let s = m.create_stream(m.device(0));
        m.submit_kernel(s, timed_kernel("k", 5, 24));
        m.callback(s, 1);
        m.submit_kernel(s, timed_kernel("k", 5, 24));
        m.callback(s, 2);
        let done = m.run();
        assert_eq!(done.iter().map(|c| c.tag).collect::<Vec<_>>(), vec![1, 2]);
        assert!(done[0].time < done[1].time);
    }

    #[test]
    fn run_until_callback_pauses_for_host() {
        let mut m = machine(1);
        let s = m.create_stream(m.device(0));
        m.submit_kernel(s, timed_kernel("k", 5, 24));
        m.callback(s, 1);
        let c = m.run_until_callback().expect("one callback");
        assert_eq!(c.tag, 1);
        // Host reacts by submitting more work at the paused time.
        m.submit_kernel(s, timed_kernel("k2", 5, 24));
        m.callback(s, 2);
        let c2 = m.run_until_callback().expect("second callback");
        assert_eq!(c2.tag, 2);
        assert!(c2.time > c.time);
        assert!(m.run_until_callback().is_none());
        assert!(m.is_quiescent());
    }

    #[test]
    fn copies_serialise_per_engine_but_overlap_compute() {
        let mut m = machine(1);
        let sc = m.create_stream(m.device(0));
        let s1 = m.create_stream(m.device(0));
        let s2 = m.create_stream(m.device(0));
        m.submit_kernel(sc, timed_kernel("compute", 50, 12));
        // Two 120 MB H2D copies at 12 GB/s = 10 ms each.
        m.submit_copy(s1, CopyKind::HostToDevice, 120_000_000, "h2d-a");
        m.submit_copy(s2, CopyKind::HostToDevice, 120_000_000, "h2d-b");
        m.run();
        let t = m.trace();
        let a = t.with_label(|l| l == "h2d-a").next().unwrap();
        let b = t.with_label(|l| l == "h2d-b").next().unwrap();
        let k = t.with_label(|l| l == "compute").next().unwrap();
        assert!(!a.overlaps(b), "one H2D engine serialises copies");
        assert!(a.overlaps(k) && b.overlaps(k), "copies overlap compute");
    }

    #[test]
    fn all_reduce_waits_for_all_participants() {
        let mut m = machine(4);
        let streams: Vec<StreamId> = (0..4).map(|g| m.create_stream(m.device(g))).collect();
        // GPU 3 is busy for 20 ms before joining.
        m.submit_kernel(streams[3], timed_kernel("straggler", 20, 24));
        m.all_reduce(&streams, 12_000_000, "allreduce");
        for (i, &s) in streams.iter().enumerate() {
            m.callback(s, i as u64);
        }
        let done = m.run();
        // All callbacks fire at the same time: the collective completes
        // simultaneously everywhere.
        assert_eq!(done.len(), 4);
        let t0 = done[0].time;
        assert!(done.iter().all(|c| c.time == t0));
        // And not before the straggler finished.
        let straggler_end = m
            .trace()
            .with_label(|l| l == "straggler")
            .next()
            .unwrap()
            .end;
        assert!(t0 > straggler_end);
    }

    #[test]
    fn single_participant_all_reduce_is_cheap() {
        let mut m = machine(1);
        let s = m.create_stream(m.device(0));
        m.all_reduce(&[s], 100_000_000, "ar1");
        m.callback(s, 0);
        let done = m.run();
        assert_eq!(done.len(), 1);
        // Only the step latency, no wire time.
        assert!(done[0].time.as_nanos() <= 50_000, "got {}", done[0].time);
    }

    #[test]
    fn larger_rings_pay_more_for_sync() {
        let time_for = |g: usize| {
            let mut m = machine(g);
            let streams: Vec<StreamId> = (0..g).map(|i| m.create_stream(m.device(i))).collect();
            m.all_reduce(&streams, 100_000_000, "ar");
            m.callback(streams[0], 0);
            m.run()[0].time
        };
        let t2 = time_for(2);
        let t8 = time_for(8);
        assert!(t8 > t2, "8-GPU ring slower than 2-GPU ring");
    }

    #[test]
    fn deterministic_replay() {
        let run_once = || {
            let mut m = machine(2);
            let s0 = m.create_stream(m.device(0));
            let s1 = m.create_stream(m.device(1));
            for i in 0..10 {
                m.submit_kernel(s0, timed_kernel("a", 1 + (i % 3), 8));
                m.submit_kernel(s1, timed_kernel("b", 2, 12));
            }
            m.all_reduce(&[s0, s1], 1_000_000, "ar");
            m.callback(s0, 99);
            let done = m.run();
            (done, m.now())
        };
        let (d1, t1) = run_once();
        let (d2, t2) = run_once();
        assert_eq!(d1, d2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn utilisation_reflects_sm_occupancy() {
        let mut m = machine(1);
        let s = m.create_stream(m.device(0));
        m.submit_kernel(s, timed_kernel("k", 100, 24));
        m.run();
        let u = m.utilisation(m.device(0));
        assert!(u > 0.9, "full-width kernel should near-saturate: {u}");
    }

    #[test]
    fn empty_machine_is_quiescent() {
        let mut m = machine(1);
        assert!(m.is_quiescent());
        assert!(m.run().is_empty());
        assert_eq!(m.now(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_device_index_panics() {
        let m = machine(1);
        let _ = m.device(3);
    }

    #[test]
    fn delay_stalls_stream_without_consuming_sms() {
        let mut m = machine(1);
        let s1 = m.create_stream(m.device(0));
        let s2 = m.create_stream(m.device(0));
        m.delay(s1, SimDuration::from_millis(10), "sched");
        m.submit_kernel(s1, timed_kernel("after-delay", 1, 24));
        // A full-width kernel on another stream runs during the delay.
        m.submit_kernel(s2, timed_kernel("during-delay", 5, 24));
        m.run();
        let t = m.trace();
        let delay = t.with_label(|l| l == "sched").next().unwrap();
        let during = t.with_label(|l| l == "during-delay").next().unwrap();
        let after = t.with_label(|l| l == "after-delay").next().unwrap();
        assert!(delay.overlaps(during), "delay holds no SMs");
        assert!(after.start >= delay.end, "delay stalls its own stream");
        assert_eq!(during.sms, 24, "all SMs were free during the delay");
    }

    #[test]
    fn transient_kernel_fault_surfaces_and_clears() {
        let plan = crate::fault::FaultPlan::none().transient_kernel(0, 1, 1);
        let mut m = Machine::new(MachineConfig::titan_x_server(1).with_faults(plan));
        let s = m.create_stream(m.device(0));
        m.submit_kernel(s, timed_kernel("ok", 1, 8));
        m.callback(s, 0);
        m.submit_kernel(s, timed_kernel("doomed", 1, 8));
        m.callback(s, 1);
        m.submit_kernel(s, timed_kernel("retry", 1, 8));
        m.callback(s, 2);
        let done = m.run();
        assert_eq!(done[0].outcome, WorkOutcome::Success);
        assert_eq!(done[1].outcome, WorkOutcome::Failed(FaultKind::Kernel));
        assert_eq!(
            done[2].outcome,
            WorkOutcome::Success,
            "observation cleared the sticky error"
        );
        assert_eq!(m.fault_stats().kernel_faults, 1);
    }

    #[test]
    fn straggler_window_stretches_kernels() {
        let healthy = {
            let mut m = machine(1);
            let s = m.create_stream(m.device(0));
            m.submit_kernel(s, timed_kernel("k", 10, 24));
            m.callback(s, 0);
            m.run()[0].time
        };
        let plan = crate::fault::FaultPlan::none().straggler(
            0,
            SimTime::ZERO,
            SimTime::from_nanos(1_000_000_000),
            3.0,
        );
        let mut m = Machine::new(MachineConfig::titan_x_server(1).with_faults(plan));
        let s = m.create_stream(m.device(0));
        m.submit_kernel(s, timed_kernel("k", 10, 24));
        m.callback(s, 0);
        let done = m.run();
        assert_eq!(done[0].outcome, WorkOutcome::Success, "slow, not broken");
        let ratio = done[0].time.as_nanos() as f64 / healthy.as_nanos() as f64;
        assert!((ratio - 3.0).abs() < 0.05, "3x straggler, got {ratio}x");
        assert_eq!(m.fault_stats().straggler_kernels, 1);
    }

    #[test]
    fn offline_device_parks_then_resumes() {
        let plan = crate::fault::FaultPlan::none().offline(
            0,
            SimTime::ZERO,
            SimTime::from_nanos(50_000_000),
        );
        let mut m = Machine::new(MachineConfig::titan_x_server(2).with_faults(plan));
        let s0 = m.create_stream(m.device(0));
        let s1 = m.create_stream(m.device(1));
        m.submit_kernel(s0, timed_kernel("on-offline", 1, 8));
        m.callback(s0, 0);
        m.submit_kernel(s1, timed_kernel("on-healthy", 1, 8));
        m.callback(s1, 1);
        let done = m.run();
        assert_eq!(done.len(), 2, "no deadlock");
        let offline = done.iter().find(|c| c.tag == 0).unwrap();
        let healthy = done.iter().find(|c| c.tag == 1).unwrap();
        assert!(
            offline.time.as_nanos() >= 50_000_000,
            "work deferred past the outage, got {}",
            offline.time
        );
        assert!(
            healthy.time.as_nanos() < 50_000_000,
            "other device unaffected"
        );
        assert!(m.fault_stats().offline_stalls >= 1);
    }

    #[test]
    fn failed_collective_poisons_every_participant() {
        let plan = crate::fault::FaultPlan::none().transient_collective(0, 1);
        let mut m = Machine::new(MachineConfig::titan_x_server(4).with_faults(plan));
        let streams: Vec<StreamId> = (0..4).map(|g| m.create_stream(m.device(g))).collect();
        m.all_reduce(&streams, 1_000_000, "ar");
        for (i, &s) in streams.iter().enumerate() {
            m.callback(s, i as u64);
        }
        let done = m.run();
        assert_eq!(done.len(), 4);
        assert!(done
            .iter()
            .all(|c| c.outcome == WorkOutcome::Failed(FaultKind::Collective)));
        assert_eq!(m.fault_stats().collective_faults, 1, "counted once");
        // A retry of the same collective succeeds.
        m.all_reduce(&streams, 1_000_000, "ar-retry");
        for (i, &s) in streams.iter().enumerate() {
            m.callback(s, 10 + i as u64);
        }
        let retry = m.run();
        assert!(retry.iter().all(|c| c.outcome == WorkOutcome::Success));
    }

    #[test]
    fn p2p_copy_uses_topology_bandwidth() {
        let mut m = machine(8);
        let s = m.create_stream(m.device(0));
        // Cross-socket: bounded by the inter-socket link (9.6 GB/s).
        m.submit_copy(s, CopyKind::PeerToPeer { to: 7 }, 96_000_000, "p2p");
        m.run();
        let r = m.trace().with_label(|l| l == "p2p").next().unwrap();
        // 96 MB at 9.6 GB/s = 10 ms.
        let ms = r.duration().as_secs_f64() * 1e3;
        assert!((ms - 10.0).abs() < 0.5, "p2p took {ms} ms");
    }
}
