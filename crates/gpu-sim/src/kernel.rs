//! Kernel descriptors.
//!
//! A kernel is the unit of GPU compute. The simulator does not execute
//! kernel code — the training math runs on the CPU in `crossbow-nn` — it
//! executes kernel *costs*: a FLOP count, a memory-traffic byte count and an
//! SM demand. The duration model lives in [`crate::device`].

/// Cost descriptor for one GPU kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelDesc {
    /// Human-readable label, recorded in the trace.
    pub label: &'static str,
    /// Floating-point operations performed.
    pub flops: u64,
    /// Bytes moved to/from device memory.
    pub bytes: u64,
    /// Streaming multiprocessors the kernel can usefully occupy.
    ///
    /// The device grants `min(sm_demand, free SMs)` (at least one) at launch
    /// and the kernel's compute time scales inversely with the grant. A
    /// batch-2 convolution has a small demand, which is exactly why several
    /// learners fit on one GPU (paper §3.3, §4.3).
    pub sm_demand: u32,
}

impl KernelDesc {
    /// A compute-dominated kernel with negligible memory traffic.
    pub fn compute(label: &'static str, flops: u64, sm_demand: u32) -> Self {
        KernelDesc {
            label,
            flops,
            bytes: 0,
            sm_demand: sm_demand.max(1),
        }
    }

    /// A memory-dominated kernel (e.g. an `axpy` model update) with
    /// negligible compute.
    pub fn memory(label: &'static str, bytes: u64, sm_demand: u32) -> Self {
        KernelDesc {
            label,
            flops: 0,
            bytes,
            sm_demand: sm_demand.max(1),
        }
    }

    /// A kernel with both compute and memory cost.
    pub fn new(label: &'static str, flops: u64, bytes: u64, sm_demand: u32) -> Self {
        KernelDesc {
            label,
            flops,
            bytes,
            sm_demand: sm_demand.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sm_demand_is_clamped_to_one() {
        assert_eq!(KernelDesc::compute("k", 10, 0).sm_demand, 1);
        assert_eq!(KernelDesc::memory("k", 10, 0).sm_demand, 1);
        assert_eq!(KernelDesc::new("k", 1, 1, 0).sm_demand, 1);
    }

    #[test]
    fn constructors_set_costs() {
        let c = KernelDesc::compute("c", 100, 4);
        assert_eq!((c.flops, c.bytes, c.sm_demand), (100, 0, 4));
        let m = KernelDesc::memory("m", 200, 2);
        assert_eq!((m.flops, m.bytes, m.sm_demand), (0, 200, 2));
    }
}
