//! Execution traces.
//!
//! Every timed item the machine dispatches can be recorded with its stream,
//! device, label and `[start, end)` interval. Integration tests use traces
//! to assert the paper's overlap claims — e.g. that iteration *N*'s global
//! synchronisation tasks run concurrently with iteration *N+1*'s learning
//! tasks (Figure 8, point *f*).

use crate::stream::{DeviceId, StreamId};
use crate::time::{SimDuration, SimTime};
use crossbow_telemetry::{chrome, Span, SpanKind};

/// What kind of work a trace record covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A compute kernel.
    Kernel,
    /// A DMA copy.
    Copy,
    /// A collective span.
    Collective,
    /// A host-side stall ([`crate::work::WorkItem::Delay`]).
    Host,
}

/// One dispatched item.
#[derive(Clone, Copy, Debug)]
pub struct TraceRecord {
    /// Stream the item ran on.
    pub stream: StreamId,
    /// Device owning the stream.
    pub device: DeviceId,
    /// Item kind.
    pub kind: TraceKind,
    /// Item label (kernel/copy/collective label).
    pub label: &'static str,
    /// Dispatch time.
    pub start: SimTime,
    /// Completion time.
    pub end: SimTime,
    /// SMs granted (kernels only; 0 otherwise).
    pub sms: u32,
}

impl TraceRecord {
    /// Item duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// True when the two records overlap in time (half-open intervals).
    pub fn overlaps(&self, other: &TraceRecord) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// A recorded execution.
#[derive(Debug, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl Trace {
    pub(crate) fn new(enabled: bool) -> Self {
        Trace {
            records: Vec::new(),
            enabled,
        }
    }

    pub(crate) fn push(&mut self, record: TraceRecord) {
        if self.enabled {
            self.records.push(record);
        }
    }

    /// All records, in dispatch order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records whose label matches a predicate.
    pub fn with_label<'a>(
        &'a self,
        pred: impl Fn(&str) -> bool + 'a,
    ) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records.iter().filter(move |r| pred(r.label))
    }

    /// True when any record labelled `a` overlaps any record labelled `b`.
    pub fn labels_overlap(&self, a: &str, b: &str) -> bool {
        let bs: Vec<&TraceRecord> = self.with_label(|l| l == b).collect();
        self.with_label(|l| l == a)
            .any(|ra| bs.iter().any(|rb| ra.overlaps(rb)))
    }

    /// Total busy time (sum of record durations) on one device.
    pub fn device_busy(&self, device: DeviceId) -> SimDuration {
        let ns: u64 = self
            .records
            .iter()
            .filter(|r| r.device == device)
            .map(|r| r.duration().as_nanos())
            .sum();
        SimDuration::from_nanos(ns)
    }

    /// Clears all records, keeping the enabled flag.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Converts the trace into telemetry spans so simulated timelines go
    /// through the same analyzer/exporter as real ones.
    ///
    /// Kind mapping follows the paper's task model: collectives and the
    /// average/apply kernels are *global* synchronisation, `local-sync`
    /// kernels are *local* synchronisation, and every other kernel
    /// (gradient compute, replica update) is learning-task work.
    pub fn to_spans(&self) -> Vec<Span> {
        self.records.iter().map(record_to_span).collect()
    }

    /// Chrome Trace Event Format JSON for this trace, with devices named
    /// `gpu N`. Load the output in `chrome://tracing` or Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let spans = self.to_spans();
        let mut devices: Vec<u32> = spans.iter().map(|s| s.device).collect();
        devices.sort_unstable();
        devices.dedup();
        let names: Vec<(u32, String)> = devices.iter().map(|&d| (d, format!("gpu {d}"))).collect();
        let name_refs: Vec<(u32, &str)> = names.iter().map(|(d, n)| (*d, n.as_str())).collect();
        chrome::to_chrome_json(&spans, &name_refs)
    }
}

fn record_to_span(r: &TraceRecord) -> Span {
    let kind = match r.kind {
        TraceKind::Collective => SpanKind::GlobalSync,
        TraceKind::Copy => SpanKind::Copy,
        TraceKind::Host => SpanKind::Host,
        TraceKind::Kernel => match r.label {
            "local-sync" => SpanKind::LocalSync,
            "reduce-local" | "apply-average" => SpanKind::GlobalSync,
            _ => SpanKind::Learn,
        },
    };
    Span {
        kind,
        label: r.label,
        start_ns: r.start.as_nanos(),
        end_ns: r.end.as_nanos(),
        device: r.device.index() as u32,
        lane: r.stream.index() as u32,
        iteration: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(label: &'static str, start: u64, end: u64) -> TraceRecord {
        TraceRecord {
            stream: StreamId(0),
            device: DeviceId(0),
            kind: TraceKind::Kernel,
            label,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            sms: 1,
        }
    }

    #[test]
    fn overlap_is_half_open() {
        let a = rec("a", 0, 10);
        let b = rec("b", 10, 20);
        let c = rec("c", 5, 15);
        assert!(!a.overlaps(&b), "touching intervals do not overlap");
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(false);
        t.push(rec("a", 0, 1));
        assert!(t.records().is_empty());
    }

    #[test]
    fn labels_overlap_queries() {
        let mut t = Trace::new(true);
        t.push(rec("learn", 0, 10));
        t.push(rec("sync", 5, 15));
        t.push(rec("learn", 20, 30));
        assert!(t.labels_overlap("learn", "sync"));
        assert!(!t.labels_overlap("sync", "missing"));
        assert_eq!(t.with_label(|l| l == "learn").count(), 2);
    }

    #[test]
    fn spans_map_kinds_by_task_model() {
        let mut t = Trace::new(true);
        t.push(rec("learn", 0, 10));
        t.push(rec("local-sync", 10, 12));
        t.push(rec("reduce-local", 12, 14));
        t.push(TraceRecord {
            kind: TraceKind::Collective,
            ..rec("allreduce", 14, 20)
        });
        t.push(TraceRecord {
            kind: TraceKind::Copy,
            ..rec("input", 0, 3)
        });
        let spans = t.to_spans();
        let kinds: Vec<SpanKind> = spans.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SpanKind::Learn,
                SpanKind::LocalSync,
                SpanKind::GlobalSync,
                SpanKind::GlobalSync,
                SpanKind::Copy,
            ]
        );
        assert_eq!(spans[0].start_ns, 0);
        assert_eq!(spans[3].end_ns, 20);
    }

    #[test]
    fn chrome_json_round_trips_record_counts() {
        use crossbow_telemetry::json::Json;

        let mut t = Trace::new(true);
        t.push(rec("learn", 0, 10));
        t.push(rec("local-sync", 10, 12));
        t.push(TraceRecord {
            device: DeviceId(1),
            kind: TraceKind::Collective,
            ..rec("allreduce", 12, 20)
        });
        let text = t.to_chrome_json();
        let doc = Json::parse(&text).expect("emitted trace must be valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        // One "X" event per record, one "M" process-name event per device.
        let complete: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        let metadata = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .count();
        assert_eq!(complete.len(), t.records().len());
        assert_eq!(metadata, 2, "two devices appear in the trace");
        // Names and categories survive the round trip.
        assert_eq!(
            complete[2].get("name").and_then(Json::as_str),
            Some("allreduce")
        );
        assert_eq!(
            complete[2].get("cat").and_then(Json::as_str),
            Some("global-sync")
        );
        assert_eq!(complete[2].get("pid").and_then(Json::as_f64), Some(1.0));
        // 8ns duration = 0.008µs in trace units.
        assert_eq!(complete[2].get("dur").and_then(Json::as_f64), Some(0.008));
    }

    #[test]
    fn device_busy_sums_durations() {
        let mut t = Trace::new(true);
        t.push(rec("a", 0, 10));
        t.push(rec("b", 20, 25));
        assert_eq!(t.device_busy(DeviceId(0)).as_nanos(), 15);
        assert_eq!(t.device_busy(DeviceId(1)).as_nanos(), 0);
        t.clear();
        assert!(t.records().is_empty());
    }
}
