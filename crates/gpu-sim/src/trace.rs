//! Execution traces.
//!
//! Every timed item the machine dispatches can be recorded with its stream,
//! device, label and `[start, end)` interval. Integration tests use traces
//! to assert the paper's overlap claims — e.g. that iteration *N*'s global
//! synchronisation tasks run concurrently with iteration *N+1*'s learning
//! tasks (Figure 8, point *f*).

use crate::stream::{DeviceId, StreamId};
use crate::time::{SimDuration, SimTime};

/// What kind of work a trace record covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A compute kernel.
    Kernel,
    /// A DMA copy.
    Copy,
    /// A collective span.
    Collective,
    /// A host-side stall ([`crate::work::WorkItem::Delay`]).
    Host,
}

/// One dispatched item.
#[derive(Clone, Copy, Debug)]
pub struct TraceRecord {
    /// Stream the item ran on.
    pub stream: StreamId,
    /// Device owning the stream.
    pub device: DeviceId,
    /// Item kind.
    pub kind: TraceKind,
    /// Item label (kernel/copy/collective label).
    pub label: &'static str,
    /// Dispatch time.
    pub start: SimTime,
    /// Completion time.
    pub end: SimTime,
    /// SMs granted (kernels only; 0 otherwise).
    pub sms: u32,
}

impl TraceRecord {
    /// Item duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// True when the two records overlap in time (half-open intervals).
    pub fn overlaps(&self, other: &TraceRecord) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// A recorded execution.
#[derive(Debug, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl Trace {
    pub(crate) fn new(enabled: bool) -> Self {
        Trace {
            records: Vec::new(),
            enabled,
        }
    }

    pub(crate) fn push(&mut self, record: TraceRecord) {
        if self.enabled {
            self.records.push(record);
        }
    }

    /// All records, in dispatch order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records whose label matches a predicate.
    pub fn with_label<'a>(
        &'a self,
        pred: impl Fn(&str) -> bool + 'a,
    ) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records.iter().filter(move |r| pred(r.label))
    }

    /// True when any record labelled `a` overlaps any record labelled `b`.
    pub fn labels_overlap(&self, a: &str, b: &str) -> bool {
        let bs: Vec<&TraceRecord> = self.with_label(|l| l == b).collect();
        self.with_label(|l| l == a)
            .any(|ra| bs.iter().any(|rb| ra.overlaps(rb)))
    }

    /// Total busy time (sum of record durations) on one device.
    pub fn device_busy(&self, device: DeviceId) -> SimDuration {
        let ns: u64 = self
            .records
            .iter()
            .filter(|r| r.device == device)
            .map(|r| r.duration().as_nanos())
            .sum();
        SimDuration::from_nanos(ns)
    }

    /// Clears all records, keeping the enabled flag.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(label: &'static str, start: u64, end: u64) -> TraceRecord {
        TraceRecord {
            stream: StreamId(0),
            device: DeviceId(0),
            kind: TraceKind::Kernel,
            label,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            sms: 1,
        }
    }

    #[test]
    fn overlap_is_half_open() {
        let a = rec("a", 0, 10);
        let b = rec("b", 10, 20);
        let c = rec("c", 5, 15);
        assert!(!a.overlaps(&b), "touching intervals do not overlap");
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(false);
        t.push(rec("a", 0, 1));
        assert!(t.records().is_empty());
    }

    #[test]
    fn labels_overlap_queries() {
        let mut t = Trace::new(true);
        t.push(rec("learn", 0, 10));
        t.push(rec("sync", 5, 15));
        t.push(rec("learn", 20, 30));
        assert!(t.labels_overlap("learn", "sync"));
        assert!(!t.labels_overlap("sync", "missing"));
        assert_eq!(t.with_label(|l| l == "learn").count(), 2);
    }

    #[test]
    fn device_busy_sums_durations() {
        let mut t = Trace::new(true);
        t.push(rec("a", 0, 10));
        t.push(rec("b", 20, 25));
        assert_eq!(t.device_busy(DeviceId(0)).as_nanos(), 15);
        assert_eq!(t.device_busy(DeviceId(1)).as_nanos(), 0);
        t.clear();
        assert!(t.records().is_empty());
    }
}
