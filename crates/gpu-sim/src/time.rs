//! Simulated time.
//!
//! The simulator counts nanoseconds in a `u64`, which covers ~584 years of
//! simulated time — far beyond the five days the paper quotes as the worst
//! single-GPU training run.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in nanoseconds since machine start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// Machine start.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since machine start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since machine start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`. Saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from (non-negative, finite) seconds.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "invalid duration: {secs} s"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Nanoseconds in the span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in the span.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t - (t + d)).as_nanos(), 0, "since saturates");
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((SimTime::from_nanos(2_500_000_000).as_secs_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_seconds_rejected() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs_f64(5.0).to_string(), "5.000s");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_nanos(1) < SimDuration::from_micros(1));
    }
}
