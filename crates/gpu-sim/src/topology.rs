//! The interconnect topology of the simulated server.
//!
//! The paper's testbed (§2.2, §5.1) is a two-socket server in which GPUs
//! form a binary tree: each GPU pair hangs off a PCIe switch, two switches
//! hang off a PCI host bridge attached to a CPU socket, and the sockets are
//! joined by an inter-socket link. Transfers are routed along the unique
//! tree path and their bandwidth is the minimum link bandwidth on the path.
//!
//! The topology is a tree, so paths are computed by walking parents — no
//! general graph search is needed.

/// A node in the interconnect tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Host memory/root complex (tree root).
    Host,
    /// A CPU socket's PCI host bridge.
    HostBridge,
    /// A PCIe switch.
    Switch,
    /// A GPU endpoint.
    Gpu(u32),
}

#[derive(Clone, Debug)]
struct Node {
    /// Retained for Debug output and future latency models.
    #[allow(dead_code)]
    kind: NodeKind,
    /// Parent node index and bandwidth (bytes/s) of the uplink; `None` for
    /// the root.
    uplink: Option<(usize, f64)>,
}

/// An interconnect tree with per-link bandwidths.
#[derive(Clone, Debug)]
pub struct Topology {
    nodes: Vec<Node>,
    /// Node index of each GPU, indexed by GPU id.
    gpu_nodes: Vec<usize>,
    host: usize,
    /// Bandwidth of a direct NVLink bridge between pair mates (GPUs
    /// `2i`/`2i+1`), bypassing PCIe; `None` when not fitted (§2.2 mentions
    /// NVLink as the fast direct interconnect option).
    nvlink_pair_bw: Option<f64>,
}

/// Bandwidth of a Pascal-generation NVLink bridge (bytes/s).
pub const NVLINK_PASCAL: f64 = 20.0e9;

/// Effective bandwidth of a PCIe 3.0 x16 link (bytes/s). 16 GB/s raw,
/// ~12 GB/s achievable with DMA overheads.
pub const PCIE3_X16: f64 = 12.0e9;

/// Bandwidth of the inter-socket (QPI-era) link (bytes/s).
pub const INTER_SOCKET: f64 = 9.6e9;

impl Topology {
    /// Builds the paper's binary-tree server: GPUs in pairs under switches,
    /// two switches per host bridge (one bridge per socket), bridges joined
    /// at the host. Works for any `n_gpus >= 1`.
    pub fn binary_tree(n_gpus: usize, link_bw: f64) -> Self {
        assert!(n_gpus >= 1, "need at least one GPU");
        assert!(link_bw > 0.0, "bandwidth must be positive");
        let mut nodes = vec![Node {
            kind: NodeKind::Host,
            uplink: None,
        }];
        let host = 0usize;
        let n_switches = n_gpus.div_ceil(2);
        let n_bridges = n_switches.div_ceil(2).max(1);
        let mut bridges = Vec::with_capacity(n_bridges);
        for _ in 0..n_bridges {
            nodes.push(Node {
                kind: NodeKind::HostBridge,
                // The host <-> bridge hop models the socket interconnect:
                // traffic between GPUs under different bridges (and between
                // host memory and any GPU) crosses it.
                uplink: Some((host, INTER_SOCKET.min(link_bw))),
            });
            bridges.push(nodes.len() - 1);
        }
        let mut switches = Vec::with_capacity(n_switches);
        for s in 0..n_switches {
            let bridge = bridges[s / 2 % n_bridges];
            nodes.push(Node {
                kind: NodeKind::Switch,
                uplink: Some((bridge, link_bw)),
            });
            switches.push(nodes.len() - 1);
        }
        let mut gpu_nodes = Vec::with_capacity(n_gpus);
        for g in 0..n_gpus {
            let switch = switches[g / 2];
            nodes.push(Node {
                kind: NodeKind::Gpu(g as u32),
                uplink: Some((switch, link_bw)),
            });
            gpu_nodes.push(nodes.len() - 1);
        }
        Topology {
            nodes,
            gpu_nodes,
            host,
            nvlink_pair_bw: None,
        }
    }

    /// Fits NVLink bridges between pair mates (builder style): GPU `2i`
    /// and `2i+1` get a direct link of `bandwidth` bytes/s.
    ///
    /// # Panics
    /// Panics on a non-positive bandwidth.
    pub fn with_nvlink_pairs(mut self, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        self.nvlink_pair_bw = Some(bandwidth);
        self
    }

    /// Number of GPUs in the topology.
    pub fn gpu_count(&self) -> usize {
        self.gpu_nodes.len()
    }

    /// Minimum link bandwidth (bytes/s) on the unique path between two
    /// GPUs.
    ///
    /// # Panics
    /// Panics on out-of-range GPU ids.
    pub fn gpu_to_gpu_bandwidth(&self, a: usize, b: usize) -> f64 {
        if a == b {
            // Same-device "transfer": bounded by device memory, effectively
            // instantaneous at PCIe scale; report a very high bandwidth.
            return 1e12;
        }
        if let Some(nvlink) = self.nvlink_pair_bw {
            if a / 2 == b / 2 {
                // Pair mates take the direct bridge when it is faster.
                return nvlink.max(self.path_bandwidth(self.gpu_nodes[a], self.gpu_nodes[b]));
            }
        }
        self.path_bandwidth(self.gpu_nodes[a], self.gpu_nodes[b])
    }

    /// Minimum link bandwidth (bytes/s) between host memory and a GPU.
    pub fn host_to_gpu_bandwidth(&self, gpu: usize) -> f64 {
        self.path_bandwidth(self.host, self.gpu_nodes[gpu])
    }

    /// Number of hops between two GPUs (0 for the same GPU); useful for
    /// latency models and for tests that check locality.
    pub fn gpu_hop_distance(&self, a: usize, b: usize) -> usize {
        if a == b {
            return 0;
        }
        let pa = self.path_to_root(self.gpu_nodes[a]);
        let pb = self.path_to_root(self.gpu_nodes[b]);
        // Remove the shared suffix (common ancestors).
        let mut ia = pa.len();
        let mut ib = pb.len();
        while ia > 0 && ib > 0 && pa[ia - 1] == pb[ib - 1] {
            ia -= 1;
            ib -= 1;
        }
        ia + ib
    }

    fn path_to_root(&self, mut node: usize) -> Vec<usize> {
        let mut path = vec![node];
        while let Some((parent, _)) = self.nodes[node].uplink {
            path.push(parent);
            node = parent;
        }
        path
    }

    fn path_bandwidth(&self, a: usize, b: usize) -> f64 {
        let pa = self.path_to_root(a);
        let pb = self.path_to_root(b);
        let mut ia = pa.len();
        let mut ib = pb.len();
        while ia > 1 && ib > 1 && pa[ia - 2] == pb[ib - 2] {
            ia -= 1;
            ib -= 1;
        }
        // pa[..ia] and pb[..ib] now end at the lowest common ancestor.
        let mut min_bw = f64::INFINITY;
        for w in pa[..ia].windows(2) {
            min_bw = min_bw.min(self.link_bw(w[0]));
        }
        for w in pb[..ib].windows(2) {
            min_bw = min_bw.min(self.link_bw(w[0]));
        }
        assert!(min_bw.is_finite(), "disconnected topology");
        min_bw
    }

    fn link_bw(&self, child: usize) -> f64 {
        self.nodes[child].uplink.expect("link_bw of root").1
    }

    /// The slowest GPU-to-neighbour bandwidth around the natural ring
    /// `0 -> 1 -> ... -> n-1 -> 0`; this is the bandwidth that bounds a
    /// ring all-reduce.
    pub fn ring_bottleneck_bandwidth(&self) -> f64 {
        let n = self.gpu_count();
        if n <= 1 {
            return 1e12;
        }
        (0..n)
            .map(|g| self.gpu_to_gpu_bandwidth(g, (g + 1) % n))
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_gpu_tree_shape() {
        let t = Topology::binary_tree(8, PCIE3_X16);
        assert_eq!(t.gpu_count(), 8);
        // Pair members are two hops apart (gpu -> switch -> gpu).
        assert_eq!(t.gpu_hop_distance(0, 1), 2);
        // Across switches under one bridge: four hops.
        assert_eq!(t.gpu_hop_distance(0, 2), 4);
        // Across bridges: six hops.
        assert_eq!(t.gpu_hop_distance(0, 4), 6);
        assert_eq!(t.gpu_hop_distance(3, 3), 0);
    }

    #[test]
    fn pair_bandwidth_is_link_bandwidth() {
        let t = Topology::binary_tree(8, PCIE3_X16);
        assert_eq!(t.gpu_to_gpu_bandwidth(0, 1), PCIE3_X16);
        assert_eq!(t.gpu_to_gpu_bandwidth(1, 0), PCIE3_X16);
    }

    #[test]
    fn cross_socket_is_bounded_by_socket_link() {
        let t = Topology::binary_tree(8, PCIE3_X16);
        let bw = t.gpu_to_gpu_bandwidth(0, 7);
        assert!(bw <= INTER_SOCKET, "cross-socket bw {bw}");
    }

    #[test]
    fn host_to_gpu_uses_tree_path() {
        let t = Topology::binary_tree(4, PCIE3_X16);
        for g in 0..4 {
            let bw = t.host_to_gpu_bandwidth(g);
            assert!(bw > 0.0 && bw <= PCIE3_X16);
        }
    }

    #[test]
    fn single_gpu_ring_has_no_bottleneck() {
        let t = Topology::binary_tree(1, PCIE3_X16);
        assert!(t.ring_bottleneck_bandwidth() >= 1e11);
        assert_eq!(t.gpu_to_gpu_bandwidth(0, 0), 1e12);
    }

    #[test]
    fn ring_bottleneck_is_min_neighbour_bw() {
        let t = Topology::binary_tree(8, PCIE3_X16);
        let ring = t.ring_bottleneck_bandwidth();
        let direct = (0..8)
            .map(|g| t.gpu_to_gpu_bandwidth(g, (g + 1) % 8))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(ring, direct);
        assert!(ring <= INTER_SOCKET);
    }

    #[test]
    fn odd_gpu_counts_are_supported() {
        for n in [1, 2, 3, 5, 7, 10] {
            let t = Topology::binary_tree(n, PCIE3_X16);
            assert_eq!(t.gpu_count(), n);
            for a in 0..n {
                for b in 0..n {
                    assert!(t.gpu_to_gpu_bandwidth(a, b) > 0.0);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_rejected() {
        let _ = Topology::binary_tree(0, PCIE3_X16);
    }

    #[test]
    fn nvlink_speeds_up_pair_mates_only() {
        let t = Topology::binary_tree(8, PCIE3_X16).with_nvlink_pairs(NVLINK_PASCAL);
        assert_eq!(t.gpu_to_gpu_bandwidth(0, 1), NVLINK_PASCAL);
        assert_eq!(t.gpu_to_gpu_bandwidth(6, 7), NVLINK_PASCAL);
        // Non-mates still route over PCIe.
        assert!(t.gpu_to_gpu_bandwidth(1, 2) <= PCIE3_X16);
        assert!(t.gpu_to_gpu_bandwidth(0, 7) <= INTER_SOCKET);
    }

    #[test]
    fn nvlink_raises_the_ring_bottleneck_only_when_links_cover_the_ring() {
        // The natural ring alternates pair links and PCIe hops, so the
        // bottleneck stays at PCIe/socket speed — matching the paper's
        // choice to all-reduce over the PCIe tree.
        let pcie = Topology::binary_tree(8, PCIE3_X16);
        let nv = Topology::binary_tree(8, PCIE3_X16).with_nvlink_pairs(NVLINK_PASCAL);
        assert_eq!(
            pcie.ring_bottleneck_bandwidth(),
            nv.ring_bottleneck_bandwidth()
        );
        // A 2-GPU "ring" is exactly one pair: NVLink wins outright.
        let nv2 = Topology::binary_tree(2, PCIE3_X16).with_nvlink_pairs(NVLINK_PASCAL);
        assert_eq!(nv2.ring_bottleneck_bandwidth(), NVLINK_PASCAL);
    }
}
