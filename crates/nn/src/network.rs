//! The [`Network`] container: a sequential stack of layers with flat,
//! externally owned parameters.
//!
//! A `Network` is immutable after construction and `Send + Sync`, so one
//! definition is shared by every learner thread. Each learner owns:
//!
//! * a parameter vector (`Vec<f32>` of [`Network::param_len`] elements) —
//!   its *model replica* in the paper's vocabulary;
//! * a gradient vector of the same length;
//! * a [`Scratch`] workspace holding per-layer forward state.
//!
//! This mirrors CROSSBOW's memory layout: "model weights and their
//! gradients are kept in contiguous memory, \[so\] a single allocation call
//! suffices" when the auto-tuner adds a learner (§4.4).

use crate::layer::{Layer, Slot};
use crate::loss::{accuracy, softmax_cross_entropy_ws};
use crossbow_tensor::{Rng, Shape, Tensor, Workspace, WorkspaceStats};
use std::ops::Range;

/// A sequential neural network with externally stored parameters.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    input_shape: Shape,
    output_classes: usize,
    offsets: Vec<Range<usize>>,
    param_len: usize,
    /// Per-sample shapes entering each layer (index i = input of layer i);
    /// the last entry is the network output shape.
    shapes: Vec<Shape>,
}

/// Builder for [`Network`].
pub struct NetworkBuilder {
    input_shape: Shape,
    layers: Vec<Box<dyn Layer>>,
}

impl NetworkBuilder {
    /// Appends a layer.
    #[allow(clippy::should_implement_trait)] // builder-style push, not ops::Add
    pub fn add(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already boxed layer.
    pub fn add_boxed(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Validates the layer chain and produces the network.
    ///
    /// # Panics
    /// Panics if shapes do not chain, the network is empty, or the output
    /// is not a class-score vector.
    pub fn build(self) -> Network {
        Network::new(self.input_shape, self.layers)
    }
}

/// Per-learner workspace: one [`Slot`] per layer plus the §4.5 arena that
/// backs every activation, stash and kernel scratch buffer.
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    pub(crate) slots: Vec<Slot>,
    pub(crate) ws: Workspace,
    /// Reusable quantized-activation buffer for the int8 serving path.
    pub(crate) quant_xq: Vec<i16>,
}

impl Scratch {
    /// Usage counters of the backing arena.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        self.ws.stats()
    }

    /// Fresh allocations the arena has performed so far. After the warm-up
    /// iteration this should stay flat across training steps.
    pub fn fresh_allocs(&self) -> u64 {
        self.ws.fresh_allocs()
    }

    /// Sets how many threads GEMMs through this scratch may fan out over
    /// (1 = serial; parallel results are bit-identical to serial).
    pub fn set_parallelism(&mut self, threads: usize) {
        self.ws.set_parallelism(threads);
    }

    /// Direct access to the backing arena (for pre-warming and for
    /// recycling caller-owned buffers into the pool).
    pub fn workspace_mut(&mut self) -> &mut Workspace {
        &mut self.ws
    }
}

/// An executable per-learner memory plan: the element counts a training
/// step checks out of the arena, derived from the same per-layer walk the
/// §4.5 offline planner uses. Feeds `Workspace::reserve` so the very first
/// iteration is already mostly allocation-free, and gives the engine the
/// per-learner arena size for its shared-pool layout.
#[derive(Clone, Debug)]
pub struct NetPlan {
    /// Batch size the plan was computed for.
    pub batch: usize,
    /// Elements of the batch input copy.
    pub input_len: usize,
    /// Per-layer output activation element counts (batch included).
    pub activations: Vec<usize>,
    /// Per-layer scratch element counts (stashes, masks, kernel buffers).
    pub scratch: Vec<usize>,
}

impl NetPlan {
    /// Estimated peak arena bytes for one training step: every stash plus
    /// the two live activations (input and output of the current layer).
    pub fn arena_bytes(&self) -> usize {
        let stashes: usize = self.scratch.iter().sum();
        let peak_act = self.activations.iter().copied().max().unwrap_or(0);
        4 * (stashes + self.input_len + 2 * peak_act)
    }

    /// Builds a pre-warmed workspace sized for this plan.
    pub fn build_workspace(&self) -> Workspace {
        let mut ws = Workspace::new();
        self.prewarm(&mut ws);
        ws
    }

    /// Reserves this plan's buffers inside an existing workspace.
    pub fn prewarm(&self, ws: &mut Workspace) {
        ws.reserve(self.input_len, 1);
        for &len in &self.activations {
            ws.reserve(len, 1);
        }
        let peak_scratch = self.scratch.iter().copied().max().unwrap_or(0);
        ws.reserve(peak_scratch, 2);
    }
}

impl Network {
    /// Starts building a network for per-sample inputs of `input_shape`.
    pub fn builder<S: Into<Shape>>(input_shape: S) -> NetworkBuilder {
        NetworkBuilder {
            input_shape: input_shape.into(),
            layers: Vec::new(),
        }
    }

    /// Creates a network from a layer stack, validating shape chaining.
    pub fn new(input_shape: Shape, layers: Vec<Box<dyn Layer>>) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        let mut shapes = vec![input_shape.clone()];
        for layer in &layers {
            let next = layer.output_shape(shapes.last().expect("non-empty"));
            shapes.push(next);
        }
        let out = shapes.last().expect("non-empty");
        assert_eq!(
            out.rank(),
            1,
            "network must end in a class-score vector, got {out}"
        );
        let output_classes = out.dim(0);
        let mut offsets = Vec::with_capacity(layers.len());
        let mut off = 0usize;
        for layer in &layers {
            offsets.push(off..off + layer.param_len());
            off += layer.param_len();
        }
        Network {
            layers,
            input_shape,
            output_classes,
            offsets,
            param_len: off,
            shapes,
        }
    }

    /// Total number of parameters.
    pub fn param_len(&self) -> usize {
        self.param_len
    }

    /// Per-sample input shape.
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// Number of output classes.
    pub fn output_classes(&self) -> usize {
        self.output_classes
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Per-sample shape entering layer `i` (`i == layers().len()` gives the
    /// output shape).
    pub fn shape_at(&self, i: usize) -> &Shape {
        &self.shapes[i]
    }

    /// Parameter range of layer `i` within the flat vector.
    pub fn param_range(&self, i: usize) -> Range<usize> {
        self.offsets[i].clone()
    }

    /// Allocates and initialises a fresh parameter vector (a model
    /// replica).
    pub fn init_params(&self, rng: &mut Rng) -> Vec<f32> {
        let mut params = vec![0.0f32; self.param_len];
        for (layer, range) in self.layers.iter().zip(&self.offsets) {
            layer.init(&mut params[range.clone()], rng);
        }
        params
    }

    /// Allocates a workspace sized for this network.
    pub fn scratch(&self) -> Scratch {
        Scratch {
            slots: vec![Slot::default(); self.layers.len()],
            ws: Workspace::new(),
            quant_xq: Vec::new(),
        }
    }

    /// Allocates a scratch whose arena is pre-warmed from `plan` (so even
    /// the first iteration is mostly served from the pool).
    pub fn scratch_with_plan(&self, plan: &NetPlan) -> Scratch {
        Scratch {
            slots: vec![Slot::default(); self.layers.len()],
            ws: plan.build_workspace(),
            quant_xq: Vec::new(),
        }
    }

    /// Computes the executable §4.5 memory plan for one training step at
    /// the given batch size: per-layer activation and scratch element
    /// counts, via the same layer walk the offline planner uses.
    pub fn plan(&self, batch: usize) -> NetPlan {
        assert!(batch > 0, "plan needs a positive batch size");
        let activations = (0..self.layers.len())
            .map(|i| batch * self.shapes[i + 1].len())
            .collect();
        let scratch = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| l.scratch_len(&self.shapes[i], batch))
            .collect();
        NetPlan {
            batch,
            input_len: batch * self.input_shape.len(),
            activations,
            scratch,
        }
    }

    /// Runs the forward pass over a batch, returning `[batch, classes]`
    /// logits. With `train == true` the scratch retains what backward
    /// needs.
    ///
    /// # Panics
    /// Panics if `params` or the batch shape do not match the network.
    pub fn forward(
        &self,
        params: &[f32],
        batch: &Tensor,
        scratch: &mut Scratch,
        train: bool,
    ) -> Tensor {
        assert_eq!(params.len(), self.param_len, "parameter vector mismatch");
        assert_eq!(
            scratch.slots.len(),
            self.layers.len(),
            "scratch from a different network"
        );
        debug_assert_eq!(
            batch.len() % self.input_shape.len().max(1),
            0,
            "batch not divisible into samples"
        );
        // Copy the batch into the arena so every intermediate (including
        // this one) can be recycled the moment the next layer consumes it.
        let mut x = scratch.ws.take_tensor(batch.shape().clone());
        x.copy_from(batch);
        for (i, layer) in self.layers.iter().enumerate() {
            let y = layer.forward(
                &params[self.offsets[i].clone()],
                &x,
                &mut scratch.slots[i],
                &mut scratch.ws,
                train,
            );
            scratch.ws.recycle(std::mem::replace(&mut x, y));
        }
        let b = x.len() / self.output_classes;
        x.reshape([b, self.output_classes])
    }

    /// Runs an inference-mode forward pass over a batch, returning
    /// `[batch, classes]` logits.
    ///
    /// This is the serving entry point: the scratch workspace is left
    /// empty (no backward state is retained) and no layer statistics are
    /// mutated, so repeated calls with the same inputs are bit-identical
    /// and a single scratch can be reused across requests indefinitely.
    ///
    /// # Panics
    /// Panics if `params` or the batch shape do not match the network.
    pub fn forward_eval(&self, params: &[f32], batch: &Tensor, scratch: &mut Scratch) -> Tensor {
        self.forward(params, batch, scratch, false)
    }

    /// Inference-mode forward returning the argmax class per sample.
    pub fn predict(&self, params: &[f32], batch: &Tensor, scratch: &mut Scratch) -> Vec<usize> {
        let logits = self.forward_eval(params, batch, scratch);
        let classes = self.output_classes;
        let out = logits
            .data()
            .chunks_exact(classes)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map_or(0, |(c, _)| c)
            })
            .collect();
        scratch.ws.recycle(logits);
        out
    }

    /// Forward + softmax cross-entropy + backward. Writes the gradient
    /// (overwriting) into `grad` and returns `(mean loss, batch accuracy)`.
    pub fn loss_and_grad(
        &self,
        params: &[f32],
        batch: &Tensor,
        labels: &[usize],
        grad: &mut [f32],
        scratch: &mut Scratch,
    ) -> (f32, f64) {
        assert_eq!(grad.len(), self.param_len, "gradient vector mismatch");
        let logits = self.forward(params, batch, scratch, true);
        let (loss, mut upstream) = softmax_cross_entropy_ws(&logits, labels, &mut scratch.ws);
        let acc = accuracy(&logits, labels);
        scratch.ws.recycle(logits);
        grad.iter_mut().for_each(|g| *g = 0.0);
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let next = layer.backward(
                &params[self.offsets[i].clone()],
                &mut grad[self.offsets[i].clone()],
                &upstream,
                &scratch.slots[i],
                &mut scratch.ws,
            );
            scratch.ws.recycle(std::mem::replace(&mut upstream, next));
        }
        scratch.ws.recycle(upstream);
        (loss, acc)
    }

    /// Evaluates accuracy over a labelled set, in chunks of `batch_size`.
    pub fn evaluate(
        &self,
        params: &[f32],
        images: &Tensor,
        labels: &[usize],
        batch_size: usize,
    ) -> f64 {
        assert!(batch_size > 0, "batch_size must be positive");
        let sample_len = self.input_shape.len();
        let n = labels.len();
        assert_eq!(images.len(), n * sample_len, "images/labels mismatch");
        if n == 0 {
            return 0.0;
        }
        let mut scratch = self.scratch();
        let mut correct = 0.0f64;
        let mut start = 0usize;
        while start < n {
            let end = (start + batch_size).min(n);
            let mut dims = vec![end - start];
            dims.extend_from_slice(self.input_shape.dims());
            let chunk = Tensor::from_vec(
                Shape::new(&dims),
                images.data()[start * sample_len..end * sample_len].to_vec(),
            );
            let logits = self.forward(params, &chunk, &mut scratch, false);
            correct += accuracy(&logits, &labels[start..end]) * (end - start) as f64;
            scratch.ws.recycle(logits);
            start = end;
        }
        correct / n as f64
    }

    /// Total forward FLOPs per sample.
    pub fn flops_per_sample(&self) -> u64 {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| l.flops_per_sample(&self.shapes[i]))
            .sum()
    }

    /// Total primitive operator count (forward + backward kernels).
    pub fn op_count(&self) -> usize {
        self.layers.iter().map(|l| l.op_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Relu};
    use crate::loss::softmax_cross_entropy;

    fn tiny_net() -> Network {
        Network::builder([4])
            .add(Dense::new(4, 8))
            .add(Relu)
            .add(Dense::new(8, 3))
            .build()
    }

    #[test]
    fn param_layout_is_contiguous() {
        let net = tiny_net();
        assert_eq!(net.param_len(), 4 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(net.param_range(0), 0..40);
        assert_eq!(net.param_range(1), 40..40);
        assert_eq!(net.param_range(2), 40..67);
        assert_eq!(net.output_classes(), 3);
    }

    #[test]
    fn forward_shape_is_batch_by_classes() {
        let net = tiny_net();
        let mut rng = Rng::new(1);
        let params = net.init_params(&mut rng);
        let batch = Tensor::randn([5, 4], 1.0, &mut rng);
        let mut scratch = net.scratch();
        let logits = net.forward(&params, &batch, &mut scratch, false);
        assert_eq!(logits.shape().dims(), &[5, 3]);
        assert!(logits.is_finite());
    }

    #[test]
    fn network_gradient_matches_finite_differences() {
        let net = tiny_net();
        let mut rng = Rng::new(2);
        let params = net.init_params(&mut rng);
        let batch = Tensor::randn([3, 4], 1.0, &mut rng);
        let labels = [0usize, 2, 1];
        let mut grad = vec![0.0f32; net.param_len()];
        let mut scratch = net.scratch();
        let (_, _) = net.loss_and_grad(&params, &batch, &labels, &mut grad, &mut scratch);
        let eps = 1e-2f32;
        let loss_at = |p: &[f32]| {
            let mut s = net.scratch();
            let logits = net.forward(p, &batch, &mut s, false);
            softmax_cross_entropy(&logits, &labels).0
        };
        for i in (0..net.param_len()).step_by(7) {
            let mut up = params.clone();
            up[i] += eps;
            let mut dn = params.clone();
            dn[i] -= eps;
            let num = (loss_at(&up) - loss_at(&dn)) / (2.0 * eps);
            assert!(
                (num - grad[i]).abs() < 5e-3 * (1.0 + num.abs()),
                "param {i}: numeric {num} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn loss_and_grad_overwrites_stale_gradients() {
        let net = tiny_net();
        let mut rng = Rng::new(3);
        let params = net.init_params(&mut rng);
        let batch = Tensor::randn([2, 4], 1.0, &mut rng);
        let mut grad = vec![99.0f32; net.param_len()];
        let mut scratch = net.scratch();
        net.loss_and_grad(&params, &batch, &[0, 1], &mut grad, &mut scratch);
        assert!(grad.iter().all(|g| g.abs() < 50.0), "stale values cleared");
    }

    #[test]
    fn evaluate_chunks_cover_all_samples() {
        let net = tiny_net();
        let mut rng = Rng::new(4);
        let params = net.init_params(&mut rng);
        let images = Tensor::randn([10, 4], 1.0, &mut rng);
        let labels: Vec<usize> = (0..10).map(|i| i % 3).collect();
        let full = net.evaluate(&params, &images, &labels, 10);
        let chunked = net.evaluate(&params, &images, &labels, 3);
        assert!(
            (full - chunked).abs() < 1e-12,
            "chunking must not change accuracy"
        );
    }

    #[test]
    fn repeated_eval_forwards_are_bit_identical() {
        // Serving depends on this: an eval forward mutates nothing, so the
        // same snapshot + input gives the same bits forever. Exercised on
        // a normalisation-bearing network, the layer type most likely to
        // accumulate hidden state in other frameworks.
        let net = crate::zoo::resnet_small(1, 8, 4);
        let mut rng = Rng::new(5);
        let params = net.init_params(&mut rng);
        let batch = Tensor::randn([3, 1, 8, 8], 1.0, &mut rng);
        let mut scratch = net.scratch();
        let first = net.forward_eval(&params, &batch, &mut scratch);
        for _ in 0..3 {
            let again = net.forward_eval(&params, &batch, &mut scratch);
            assert_eq!(first.data(), again.data(), "eval must be stateless");
        }
        // A fresh scratch gives the same bits too, and interleaving an
        // unrelated batch does not perturb the next result.
        let other = Tensor::randn([2, 1, 8, 8], 1.0, &mut rng);
        let _ = net.forward_eval(&params, &other, &mut scratch);
        let again = net.forward_eval(&params, &batch, &mut net.scratch());
        assert_eq!(first.data(), again.data());
    }

    #[test]
    fn eval_forward_leaves_the_scratch_empty() {
        let net = tiny_net();
        let mut rng = Rng::new(6);
        let params = net.init_params(&mut rng);
        let batch = Tensor::randn([4, 4], 1.0, &mut rng);
        let mut scratch = net.scratch();
        let _ = net.forward_eval(&params, &batch, &mut scratch);
        assert!(
            scratch.slots.iter().all(|s| s.tensors.is_empty()),
            "eval retains no backward state"
        );
        let _ = net.forward(&params, &batch, &mut scratch, true);
        assert!(
            scratch.slots.iter().any(|s| !s.tensors.is_empty()),
            "training forward does retain state"
        );
    }

    #[test]
    fn predict_returns_the_argmax_class() {
        let net = tiny_net();
        let mut rng = Rng::new(7);
        let params = net.init_params(&mut rng);
        let batch = Tensor::randn([6, 4], 1.0, &mut rng);
        let mut scratch = net.scratch();
        let logits = net.forward_eval(&params, &batch, &mut scratch);
        let classes = net.predict(&params, &batch, &mut scratch);
        assert_eq!(classes.len(), 6);
        for (row, &c) in logits.data().chunks_exact(3).zip(&classes) {
            assert!(row.iter().all(|&v| v <= row[c]), "class {c} not argmax");
        }
    }

    #[test]
    fn training_steps_are_allocation_flat_after_warmup() {
        let net = crate::zoo::resnet_small(1, 8, 4);
        let mut rng = Rng::new(12);
        let params = net.init_params(&mut rng);
        let batch = Tensor::randn([2, 1, 8, 8], 1.0, &mut rng);
        let labels = [0usize, 3];
        let mut grad = vec![0.0f32; net.param_len()];
        let mut scratch = net.scratch();
        // Two warm-up iterations populate every bucket the step needs.
        for _ in 0..2 {
            net.loss_and_grad(&params, &batch, &labels, &mut grad, &mut scratch);
        }
        let after_warmup = scratch.fresh_allocs();
        for _ in 0..5 {
            net.loss_and_grad(&params, &batch, &labels, &mut grad, &mut scratch);
        }
        assert_eq!(
            scratch.fresh_allocs(),
            after_warmup,
            "hot path must perform zero fresh arena allocations after warm-up"
        );
    }

    #[test]
    fn plan_prewarmed_scratch_trains_without_changing_results() {
        let net = crate::zoo::resnet_small(1, 8, 4);
        let mut rng = Rng::new(13);
        let params = net.init_params(&mut rng);
        let batch = Tensor::randn([2, 1, 8, 8], 1.0, &mut rng);
        let labels = [1usize, 2];
        let plan = net.plan(2);
        assert!(plan.arena_bytes() > 0);
        assert_eq!(plan.activations.len(), net.layers().len());
        let mut cold = net.scratch();
        let mut warm = net.scratch_with_plan(&plan);
        assert!(warm.workspace_stats().bytes_free > 0, "plan pre-warms");
        let mut g1 = vec![0.0f32; net.param_len()];
        let mut g2 = vec![0.0f32; net.param_len()];
        let (l1, _) = net.loss_and_grad(&params, &batch, &labels, &mut g1, &mut cold);
        let (l2, _) = net.loss_and_grad(&params, &batch, &labels, &mut g2, &mut warm);
        assert_eq!(l1, l2, "pre-warming must not change results");
        assert_eq!(g1, g2);
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let net = tiny_net();
        let a = net.init_params(&mut Rng::new(9));
        let b = net.init_params(&mut Rng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "class-score vector")]
    fn must_end_in_vector() {
        let _ = Network::builder([1, 4, 4])
            .add(crate::layer::Conv2d::same3x3(1, 2))
            .build();
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_network_rejected() {
        let _ = Network::builder([4]).build();
    }
}
