//! Full-size model cost profiles (paper Table 1).
//!
//! The GPU simulator needs per-model cost parameters at the *paper's*
//! scale, independent of the reduced models we actually train on CPU.
//! Table 1 provides input size, operator count and model size; FLOP counts
//! come from the literature for each architecture; the SM-demand
//! coefficient encodes how much of a GPU one learning task of batch `b`
//! can usefully occupy (small batches occupy few SMs — the premise of
//! training multiple learners per GPU, §3.3).

/// Cost profile of one benchmark model at full (paper) scale.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelProfile {
    /// Model name as in Table 1.
    pub name: &'static str,
    /// Dataset name as in Table 1.
    pub dataset: &'static str,
    /// Total input size (MB) — Table 1.
    pub input_mb: f64,
    /// Device operators per learning task — Table 1 ("# Ops").
    pub num_ops: usize,
    /// Model size (MB) — Table 1.
    pub model_mb: f64,
    /// Training-set cardinality.
    pub train_samples: usize,
    /// Training FLOPs per sample (forward + backward, ~3x forward).
    pub flops_per_sample: u64,
    /// Input bytes per sample (input_mb / train_samples).
    pub bytes_per_sample: u64,
    /// SM demand per sample in a batch: a learning task of batch `b`
    /// demands `ceil(b * sm_per_sample)` SMs (clamped by the device).
    pub sm_per_sample: f64,
    /// The per-learner batch size the paper's headline runs use.
    pub default_batch: usize,
    /// The paper's TTA threshold for this model (§5.1).
    pub target_accuracy: f64,
}

impl ModelProfile {
    /// LeNet on MNIST (Table 1 row 1).
    pub fn lenet() -> Self {
        ModelProfile {
            name: "lenet",
            dataset: "mnist",
            input_mb: 179.45,
            num_ops: 24,
            model_mb: 4.24,
            train_samples: 60_000,
            // ~0.8 MFLOP forward for LeNet-5 at 28x28; x3 for training.
            flops_per_sample: 2_400_000,
            bytes_per_sample: 2_990, // 179.45 MB / 60k
            sm_per_sample: 0.5,
            default_batch: 4,
            target_accuracy: 0.99,
        }
    }

    /// ResNet-32 on CIFAR-10 (Table 1 row 2).
    pub fn resnet32() -> Self {
        ModelProfile {
            name: "resnet-32",
            dataset: "cifar-10",
            input_mb: 703.12,
            num_ops: 267,
            model_mb: 1.79,
            train_samples: 50_000,
            // ~69 MMACs = 138 MFLOP forward; x3 for training.
            flops_per_sample: 414_000_000,
            bytes_per_sample: 14_062, // 703.12 MB / 50k
            sm_per_sample: 0.25,
            default_batch: 64,
            target_accuracy: 0.88,
        }
    }

    /// VGG-16 on CIFAR-100 (Table 1 row 3).
    pub fn vgg16() -> Self {
        ModelProfile {
            name: "vgg-16",
            dataset: "cifar-100",
            input_mb: 703.12,
            num_ops: 121,
            model_mb: 57.37,
            train_samples: 50_000,
            // ~313 MMACs = 626 MFLOP forward at 32x32; x3 for training.
            flops_per_sample: 1_878_000_000,
            bytes_per_sample: 14_062,
            sm_per_sample: 0.08,
            default_batch: 256,
            target_accuracy: 0.69,
        }
    }

    /// ResNet-50 on ILSVRC 2012 (Table 1 row 4).
    pub fn resnet50() -> Self {
        ModelProfile {
            name: "resnet-50",
            dataset: "ilsvrc-2012",
            input_mb: 1_073_375.25,
            num_ops: 384,
            model_mb: 97.49,
            train_samples: 1_281_167,
            // ~3.8 GFLOP forward at 224x224; x3 for training.
            flops_per_sample: 11_400_000_000,
            bytes_per_sample: 837_808, // ~1.07 TB / 1.28M
            sm_per_sample: 1.5,
            default_batch: 16,
            target_accuracy: 0.53,
        }
    }

    /// All four benchmark profiles, in Table 1 order.
    pub fn all() -> [ModelProfile; 4] {
        [
            Self::lenet(),
            Self::resnet32(),
            Self::vgg16(),
            Self::resnet50(),
        ]
    }

    /// Looks a profile up by name.
    pub fn by_name(name: &str) -> Option<ModelProfile> {
        Self::all().into_iter().find(|p| p.name == name)
    }

    /// Model size in bytes.
    pub fn model_bytes(&self) -> u64 {
        (self.model_mb * 1e6) as u64
    }

    /// Parameter count (f32 weights).
    pub fn param_count(&self) -> usize {
        (self.model_bytes() / 4) as usize
    }

    /// SM demand of a learning task with batch `b`.
    pub fn sm_demand(&self, batch: usize) -> u32 {
        (batch as f64 * self.sm_per_sample).ceil().max(1.0) as u32
    }

    /// Training FLOPs of a learning task with batch `b`.
    pub fn task_flops(&self, batch: usize) -> u64 {
        self.flops_per_sample * batch as u64
    }

    /// Iterations per epoch at aggregate batch size `b` (ceiling).
    pub fn iterations_per_epoch(&self, aggregate_batch: usize) -> usize {
        assert!(aggregate_batch > 0, "zero batch");
        self.train_samples.div_ceil(aggregate_batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_numbers_are_preserved() {
        let rows = ModelProfile::all();
        assert_eq!(rows[0].num_ops, 24);
        assert_eq!(rows[1].num_ops, 267);
        assert_eq!(rows[2].num_ops, 121);
        assert_eq!(rows[3].num_ops, 384);
        assert!((rows[1].model_mb - 1.79).abs() < 1e-9);
        assert!((rows[3].input_mb - 1_073_375.25).abs() < 1e-9);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(
            ModelProfile::by_name("resnet-32").unwrap().dataset,
            "cifar-10"
        );
        assert!(ModelProfile::by_name("alexnet").is_none());
    }

    #[test]
    fn sm_demand_scales_with_batch_and_clamps_low() {
        let p = ModelProfile::resnet32();
        assert_eq!(p.sm_demand(64), 16);
        assert_eq!(p.sm_demand(1), 1);
        assert_eq!(ModelProfile::lenet().sm_demand(4), 2);
    }

    #[test]
    fn derived_quantities() {
        let p = ModelProfile::resnet32();
        assert_eq!(p.task_flops(64), 64 * 414_000_000);
        assert_eq!(p.iterations_per_epoch(64), 782); // ceil(50000/64)
        assert_eq!(p.param_count(), (1.79e6 / 4.0) as usize);
    }

    #[test]
    fn resnet50_learning_task_is_paper_scale() {
        // §5.2: a ResNet-50 learning task takes ~220 ms. At TF's 32
        // samples/GPU and the simulator's effective throughput this FLOP
        // count must land in the hundreds of milliseconds.
        let p = ModelProfile::resnet50();
        let flops = p.task_flops(32) as f64;
        let effective = 10.0e12 * 0.17; // titan preset peak x efficiency
        let secs = flops / effective;
        assert!((0.15..0.30).contains(&secs), "task time {secs}s");
    }
}
