//! Softmax cross-entropy loss and accuracy metrics.

use crossbow_tensor::{Tensor, Workspace};

/// Softmax cross-entropy over a batch of logits.
///
/// `logits` is `[batch, classes]`; `labels[i]` is the class index of sample
/// `i`. Returns the mean loss and the gradient with respect to the logits
/// (already divided by the batch size, matching Eq. 2's averaging).
///
/// # Panics
/// Panics on shape/label mismatches.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let mut grad = Tensor::zeros(logits.shape().clone());
    let loss = softmax_cross_entropy_into(logits, labels, &mut grad);
    (loss, grad)
}

/// [`softmax_cross_entropy`] with the gradient checked out of `ws` — the
/// hot-path form: the training loop recycles the returned tensor so the
/// loss contributes no per-iteration allocations.
pub fn softmax_cross_entropy_ws(
    logits: &Tensor,
    labels: &[usize],
    ws: &mut Workspace,
) -> (f32, Tensor) {
    let mut grad = ws.take_tensor(logits.shape().clone());
    let loss = softmax_cross_entropy_into(logits, labels, &mut grad);
    (loss, grad)
}

fn softmax_cross_entropy_into(logits: &Tensor, labels: &[usize], grad: &mut Tensor) -> f32 {
    let dims = logits.shape().dims();
    assert_eq!(dims.len(), 2, "logits must be [batch, classes]");
    let (batch, classes) = (dims[0], dims[1]);
    assert_eq!(labels.len(), batch, "one label per sample");
    assert!(batch > 0, "empty batch");
    let mut loss = 0.0f64;
    let inv_b = 1.0 / batch as f32;
    for (i, &label) in labels.iter().enumerate() {
        let row = &logits.data()[i * classes..(i + 1) * classes];
        assert!(label < classes, "label {label} out of range");
        // Numerically stable log-softmax.
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum_exp = 0.0f32;
        for &v in row {
            sum_exp += (v - max).exp();
        }
        let log_z = max + sum_exp.ln();
        loss += f64::from(log_z - row[label]);
        let grow = &mut grad.data_mut()[i * classes..(i + 1) * classes];
        for (j, g) in grow.iter_mut().enumerate() {
            let p = (row[j] - log_z).exp();
            *g = (p - if j == label { 1.0 } else { 0.0 }) * inv_b;
        }
    }
    (loss / batch as f64) as f32
}

/// Fraction of samples whose argmax logit matches the label.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let dims = logits.shape().dims();
    assert_eq!(dims.len(), 2, "logits must be [batch, classes]");
    let (batch, classes) = (dims[0], dims[1]);
    assert_eq!(labels.len(), batch, "one label per sample");
    if batch == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = &logits.data()[i * classes..(i + 1) * classes];
        let mut best = 0usize;
        for j in 1..classes {
            if row[j] > row[best] {
                best = j;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    correct as f64 / batch as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes_loss() {
        let logits = Tensor::zeros([2, 4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for i in 0..2 {
            let s: f32 = grad.data()[i * 4..(i + 1) * 4].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn confident_correct_prediction_has_small_loss() {
        let logits = Tensor::from_vec([1, 3], vec![10.0, -10.0, -10.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec([2, 3], vec![0.3, -0.2, 0.9, 1.5, 0.1, -0.7]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut up = logits.clone();
            up.data_mut()[i] += eps;
            let mut dn = logits.clone();
            dn.data_mut()[i] -= eps;
            let (lu, _) = softmax_cross_entropy(&up, &labels);
            let (ld, _) = softmax_cross_entropy(&dn, &labels);
            let num = (lu - ld) / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 1e-3,
                "elem {i}: {num} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn extreme_logits_stay_finite() {
        let logits = Tensor::from_vec([1, 2], vec![1000.0, -1000.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss.is_finite());
        assert!(grad.is_finite());
        assert!(loss > 100.0, "confidently wrong is expensive");
    }

    #[test]
    fn ws_variant_matches_legacy_bit_for_bit() {
        let logits = Tensor::from_vec([2, 3], vec![0.3, -0.2, 0.9, 1.5, 0.1, -0.7]);
        let labels = [2usize, 0];
        let (loss_a, grad_a) = softmax_cross_entropy(&logits, &labels);
        let mut ws = Workspace::new();
        let (loss_b, grad_b) = softmax_cross_entropy_ws(&logits, &labels, &mut ws);
        assert_eq!(loss_a, loss_b);
        assert_eq!(grad_a.data(), grad_b.data());
        ws.recycle(grad_b);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec([3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn out_of_range_label_panics() {
        let logits = Tensor::zeros([1, 2]);
        let _ = softmax_cross_entropy(&logits, &[5]);
    }
}
