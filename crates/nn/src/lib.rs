//! Neural-network substrate for the CROSSBOW reproduction.
//!
//! The paper trains LeNet, ResNet-32, VGG-16 and ResNet-50 with cuDNN
//! kernels. This crate supplies the same ingredients in pure Rust:
//!
//! * [`layer`] — the [`Layer`] trait plus dense, convolution, pooling,
//!   activation, normalisation and residual layers, each with a hand-written
//!   backward pass (validated against finite differences in tests);
//! * [`network::Network`] — a sequential container whose parameters and
//!   gradients live in *flat contiguous vectors*, matching the paper's
//!   observation (§4.4) that contiguous weights let a model replica be
//!   allocated with a single call — and letting the synchronisation
//!   algorithms in `crossbow-sync` treat a replica as one `&[f32]`;
//! * [`loss`] — softmax cross-entropy and accuracy;
//! * [`graph`] — an operator-graph export consumed by the memory planner in
//!   the `crossbow` crate (offline buffer-reuse plan of §4.5);
//! * [`zoo`] — reduced-width versions of the paper's four models, for real
//!   CPU training of the statistical-efficiency experiments;
//! * [`profile`] — full-size cost profiles (Table 1: input size, operator
//!   count, model size) that parameterise the GPU simulator for the
//!   hardware-efficiency experiments.
//!
//! Training state is externalised: a [`network::Network`] is immutable and
//! shareable across learner threads; each learner owns its parameter vector
//! and a [`network::Scratch`] workspace.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod graph;
pub mod init;
pub mod layer;
pub mod loss;
pub mod network;
pub mod profile;
pub mod quant;
pub mod zoo;

pub use layer::{Layer, Slot};
pub use network::{NetPlan, Network, Scratch};
pub use profile::ModelProfile;
pub use quant::{accuracy_delta, QuantDense, QuantizedModel};
