//! Fully-connected layers and the flatten adapter.

use super::{batch_of, stash_copy, Layer, Slot};
use crate::init::Init;
use crossbow_tensor::gemm::{gemm_at_ws, gemm_bt_ws, gemm_ws};
use crossbow_tensor::{Rng, Shape, Tensor, Workspace};

/// A fully-connected layer: `y = x @ W^T + b` with `W: out x in` and
/// `b: out`. Accepts any input whose per-sample element count equals
/// `in_features` (it flattens implicitly).
#[derive(Clone, Copy, Debug)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    init: Init,
}

impl Dense {
    /// Creates a dense layer with He initialisation (for ReLU stacks).
    pub fn new(in_features: usize, out_features: usize) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "zero-sized dense layer"
        );
        Dense {
            in_features,
            out_features,
            init: Init::HeNormal,
        }
    }

    /// Uses Xavier initialisation instead (for linear/tanh heads).
    pub fn with_xavier(mut self) -> Self {
        self.init = Init::XavierUniform;
        self
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    fn weight_len(&self) -> usize {
        self.in_features * self.out_features
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn param_len(&self) -> usize {
        self.weight_len() + self.out_features
    }

    fn output_shape(&self, input: &Shape) -> Shape {
        assert_eq!(
            input.len(),
            self.in_features,
            "dense layer expects {} input features, got {input}",
            self.in_features
        );
        Shape::vector(self.out_features)
    }

    fn init(&self, params: &mut [f32], rng: &mut Rng) {
        let (w, b) = params.split_at_mut(self.weight_len());
        self.init.fill(w, self.in_features, self.out_features, rng);
        Init::Zeros.fill(b, 0, 0, rng);
    }

    fn forward(
        &self,
        params: &[f32],
        input: &Tensor,
        slot: &mut Slot,
        ws: &mut Workspace,
        train: bool,
    ) -> Tensor {
        let b = batch_of(input, self.in_features);
        let (w, bias) = params.split_at(self.weight_len());
        let mut out = ws.take_tensor([b, self.out_features]);
        // out = input @ W^T
        gemm_bt_ws(
            b,
            self.in_features,
            self.out_features,
            1.0,
            input.data(),
            w,
            0.0,
            out.data_mut(),
            ws,
        );
        for row in out.data_mut().chunks_exact_mut(self.out_features) {
            for (o, &bv) in row.iter_mut().zip(bias) {
                *o += bv;
            }
        }
        if train {
            slot.recycle_tensors_into(ws);
            stash_copy(slot, ws, input);
        }
        out
    }

    fn backward(
        &self,
        params: &[f32],
        grad_params: &mut [f32],
        grad_output: &Tensor,
        slot: &Slot,
        ws: &mut Workspace,
    ) -> Tensor {
        let input = &slot.tensors[0];
        let b = batch_of(input, self.in_features);
        let (w, _) = params.split_at(self.weight_len());
        let (gw, gb) = grad_params.split_at_mut(self.weight_len());
        // dW += dY^T @ X   (dY is b x out stored row-major = k x m for gemm_at)
        gemm_at_ws(
            self.out_features,
            b,
            self.in_features,
            1.0,
            grad_output.data(),
            input.data(),
            1.0,
            gw,
            ws,
        );
        // db += column sums of dY
        for row in grad_output.data().chunks_exact(self.out_features) {
            for (g, &d) in gb.iter_mut().zip(row) {
                *g += d;
            }
        }
        // dX = dY @ W
        let mut grad_in = ws.take_tensor(input.shape().clone());
        gemm_ws(
            b,
            self.out_features,
            self.in_features,
            1.0,
            grad_output.data(),
            w,
            0.0,
            grad_in.data_mut(),
            ws,
        );
        grad_in
    }

    fn flops_per_sample(&self, _input: &Shape) -> u64 {
        2 * (self.in_features * self.out_features) as u64
    }

    fn scratch_len(&self, _input: &Shape, batch: usize) -> usize {
        // The stashed input copy.
        batch * self.in_features
    }

    fn as_dense(&self) -> Option<&Dense> {
        Some(self)
    }
}

/// Reshapes any per-sample input to a flat vector. Carries no parameters;
/// included so network definitions read like the paper's figures.
#[derive(Clone, Copy, Debug, Default)]
pub struct Flatten;

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn param_len(&self) -> usize {
        0
    }

    fn output_shape(&self, input: &Shape) -> Shape {
        Shape::vector(input.len())
    }

    fn init(&self, _params: &mut [f32], _rng: &mut Rng) {}

    fn forward(
        &self,
        _params: &[f32],
        input: &Tensor,
        _slot: &mut Slot,
        ws: &mut Workspace,
        _train: bool,
    ) -> Tensor {
        let mut out = ws.take_tensor(input.shape().clone());
        out.copy_from(input);
        out
    }

    fn backward(
        &self,
        _params: &[f32],
        _grad_params: &mut [f32],
        grad_output: &Tensor,
        _slot: &Slot,
        ws: &mut Workspace,
    ) -> Tensor {
        let mut out = ws.take_tensor(grad_output.shape().clone());
        out.copy_from(grad_output);
        out
    }

    fn flops_per_sample(&self, _input: &Shape) -> u64 {
        0
    }

    fn op_count(&self) -> usize {
        0 // pure view change, no device kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck::check_layer;

    #[test]
    fn forward_matches_hand_example() {
        let layer = Dense::new(2, 2);
        // W = [[1, 2], [3, 4]] (out x in), b = [10, 20]
        let params = vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0];
        let x = Tensor::from_vec([1, 2], vec![5.0, 6.0]);
        let mut slot = Slot::default();
        let mut ws = Workspace::new();
        let y = layer.forward(&params, &x, &mut slot, &mut ws, false);
        // y = [5*1+6*2+10, 5*3+6*4+20] = [27, 59]
        assert_eq!(y.data(), &[27.0, 59.0]);
    }

    #[test]
    fn gradcheck_small() {
        check_layer(&Dense::new(4, 3), &[4], 5, 21);
    }

    #[test]
    fn gradcheck_xavier() {
        check_layer(&Dense::new(6, 2).with_xavier(), &[6], 2, 22);
    }

    #[test]
    fn accepts_multidim_input_of_matching_len() {
        let layer = Dense::new(12, 5);
        assert_eq!(
            layer.output_shape(&Shape::new(&[3, 2, 2])),
            Shape::vector(5)
        );
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn rejects_wrong_input_len() {
        let layer = Dense::new(4, 2);
        let _ = layer.output_shape(&Shape::vector(5));
    }

    #[test]
    fn param_layout_is_weights_then_bias() {
        let layer = Dense::new(3, 2);
        assert_eq!(layer.param_len(), 8);
        let mut rng = Rng::new(1);
        let mut params = vec![9.0; 8];
        layer.init(&mut params, &mut rng);
        assert!(params[..6].iter().any(|&w| w != 0.0), "weights initialised");
        assert_eq!(&params[6..], &[0.0, 0.0], "biases zeroed");
    }

    #[test]
    fn flatten_passes_through() {
        let mut slot = Slot::default();
        let mut ws = Workspace::new();
        let x = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = Flatten.forward(&[], &x, &mut slot, &mut ws, true);
        assert_eq!(y.data(), x.data());
        let g = Flatten.backward(&[], &mut [], &y, &slot, &mut ws);
        assert_eq!(g.data(), x.data());
        assert_eq!(Flatten.output_shape(&Shape::new(&[2, 3])), Shape::vector(6));
    }
}
