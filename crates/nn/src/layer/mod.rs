//! The [`Layer`] trait and the layer library.
//!
//! Layers are **stateless topology**: parameters and gradients live in flat
//! external vectors owned by each learner, and everything a layer must
//! remember between forward and backward (inputs, masks, batch statistics)
//! is stashed in a per-learner [`Slot`]. This split is what allows one
//! network definition to be shared by dozens of learner threads while each
//! trains its own model replica — the heart of the paper's design.
//!
//! Conventions:
//! * shapes are **per-sample**; the batch dimension is implicit (a batch of
//!   `b` samples with per-sample shape `[c, h, w]` is a `[b, c, h, w]`
//!   tensor);
//! * `forward` pushes whatever it needs into its `Slot` in a layer-defined
//!   order; `backward` reads it back;
//! * `backward` *accumulates* into `grad_params` (callers zero it once per
//!   batch) and returns the gradient with respect to the layer input.

pub mod activation;
pub mod conv2d;
pub mod dense;
pub mod norm;
pub mod pool;
pub mod residual;

pub use activation::{Relu, Tanh};
pub use conv2d::Conv2d;
pub use dense::{Dense, Flatten};
pub use norm::ChannelNorm;
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use residual::Residual;

use crossbow_tensor::{Rng, Shape, Tensor, Workspace};

/// Per-layer, per-learner storage for values carried from forward to
/// backward. Composite layers (e.g. [`Residual`]) use `children` to give
/// each inner layer its own slot.
#[derive(Clone, Debug, Default)]
pub struct Slot {
    /// Saved tensors, in a layer-defined order.
    pub tensors: Vec<Tensor>,
    /// Nested slots for composite layers.
    pub children: Vec<Slot>,
}

impl Slot {
    /// Clears saved values (keeps child structure).
    pub fn clear(&mut self) {
        self.tensors.clear();
        for c in &mut self.children {
            c.clear();
        }
    }

    /// Drains this slot's saved tensors back into the arena (children are
    /// left alone: composite layers recycle them through their inner
    /// layers' own forward passes). Layers call this at the top of a
    /// training forward so last iteration's stash backs this iteration's.
    pub fn recycle_tensors_into(&mut self, ws: &mut Workspace) {
        for t in self.tensors.drain(..) {
            ws.recycle(t);
        }
    }
}

/// Stashes an arena-backed copy of `t` into the slot.
pub(crate) fn stash_copy(slot: &mut Slot, ws: &mut Workspace, t: &Tensor) {
    let mut saved = ws.take_tensor(t.shape().clone());
    saved.copy_from(t);
    slot.tensors.push(saved);
}

/// A differentiable operator with externally stored parameters.
pub trait Layer: Send + Sync {
    /// Short name for traces, graphs and debugging.
    fn name(&self) -> &'static str;

    /// Number of parameters.
    fn param_len(&self) -> usize;

    /// Per-sample output shape for a given per-sample input shape.
    ///
    /// # Panics
    /// Panics if the input shape is incompatible with the layer.
    fn output_shape(&self, input: &Shape) -> Shape;

    /// Initialises this layer's slice of the parameter vector.
    fn init(&self, params: &mut [f32], rng: &mut Rng);

    /// Computes the layer output for a batch, saving whatever backward
    /// needs into `slot` when `train` is true. Scratch buffers (im2col
    /// columns, masks, statistics) and the output itself are checked out
    /// of `ws`, the learner's §4.5 arena, instead of freshly allocated.
    fn forward(
        &self,
        params: &[f32],
        input: &Tensor,
        slot: &mut Slot,
        ws: &mut Workspace,
        train: bool,
    ) -> Tensor;

    /// Accumulates parameter gradients into `grad_params` and returns the
    /// gradient with respect to the layer input (checked out of `ws`).
    fn backward(
        &self,
        params: &[f32],
        grad_params: &mut [f32],
        grad_output: &Tensor,
        slot: &Slot,
        ws: &mut Workspace,
    ) -> Tensor;

    /// Rough FLOPs per sample of one forward pass (for cost profiles).
    fn flops_per_sample(&self, input: &Shape) -> u64;

    /// Upper bound on the arena elements this layer checks out during one
    /// training forward + backward for the given per-sample input shape
    /// and batch size — stashes, masks and kernel scratch, *excluding* the
    /// output activation and upstream gradient (the network accounts for
    /// those). Feeds [`crate::network::Network::plan`].
    fn scratch_len(&self, _input: &Shape, _batch: usize) -> usize {
        0
    }

    /// Number of primitive device operators this layer lowers to (for the
    /// operator-graph export; default 1 forward + 1 backward).
    fn op_count(&self) -> usize {
        2
    }

    /// Downcast hook for the quantized serving path: dense layers return
    /// themselves so [`crate::quant`] can swap their matrix product for
    /// the int8 kernel; every other layer runs its normal `f32` forward.
    fn as_dense(&self) -> Option<&Dense> {
        None
    }
}

/// Splits a batched tensor's first dimension: `(batch, per-sample length)`.
///
/// # Panics
/// Panics if the tensor is not divisible into samples of `sample_len`.
pub(crate) fn batch_of(input: &Tensor, sample_len: usize) -> usize {
    assert!(sample_len > 0, "zero-length samples");
    let total = input.len();
    assert_eq!(
        total % sample_len,
        0,
        "tensor of {total} elements is not a batch of {sample_len}-element samples"
    );
    total / sample_len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_clear_preserves_children() {
        let mut s = Slot::default();
        s.tensors.push(Tensor::zeros([2]));
        s.children.push(Slot::default());
        s.children[0].tensors.push(Tensor::zeros([2]));
        s.clear();
        assert!(s.tensors.is_empty());
        assert_eq!(s.children.len(), 1);
        assert!(s.children[0].tensors.is_empty());
    }

    #[test]
    fn batch_of_divides() {
        let t = Tensor::zeros([4, 3]);
        assert_eq!(batch_of(&t, 3), 4);
    }

    #[test]
    #[should_panic(expected = "not a batch")]
    fn batch_of_rejects_ragged() {
        let t = Tensor::zeros([5]);
        let _ = batch_of(&t, 3);
    }
}

/// Finite-difference gradient checking shared by the layer tests.
#[cfg(test)]
pub(crate) mod gradcheck {
    use super::*;

    /// Checks `d loss / d params` and `d loss / d input` of a layer against
    /// central finite differences, where `loss = sum(output * probe)` for a
    /// fixed random probe (so the analytic grad_output is just `probe`).
    pub(crate) fn check_layer(layer: &dyn Layer, input_shape: &[usize], batch: usize, seed: u64) {
        let mut rng = Rng::new(seed);
        let per_sample = Shape::new(input_shape);
        let mut full_dims = vec![batch];
        full_dims.extend_from_slice(input_shape);
        let input = Tensor::randn(Shape::new(&full_dims), 1.0, &mut rng);
        let mut params = vec![0.0f32; layer.param_len()];
        layer.init(&mut params, &mut rng);
        // Nudge params away from symmetric points (e.g. all-zero biases are
        // fine, but norm layers at exactly 1/0 can hide errors).
        for p in params.iter_mut() {
            *p += 0.01 * rng.normal();
        }

        let out_shape = layer.output_shape(&per_sample);
        let probe = Tensor::randn(
            Shape::new(&{
                let mut d = vec![batch];
                d.extend_from_slice(out_shape.dims());
                d
            }),
            1.0,
            &mut rng,
        );

        let loss = |params: &[f32], input: &Tensor| -> f64 {
            let mut slot = Slot::default();
            let mut ws = Workspace::new();
            let out = layer.forward(params, input, &mut slot, &mut ws, true);
            out.data()
                .iter()
                .zip(probe.data())
                .map(|(&o, &p)| f64::from(o) * f64::from(p))
                .sum()
        };

        // Analytic gradients.
        let mut slot = Slot::default();
        let mut ws = Workspace::new();
        let _ = layer.forward(&params, &input, &mut slot, &mut ws, true);
        let mut grad_params = vec![0.0f32; params.len()];
        let grad_input = layer.backward(&params, &mut grad_params, &probe, &slot, &mut ws);

        let eps = 3e-3f32;
        // Parameter gradients: probe a subset for speed.
        let stride = (params.len() / 24).max(1);
        for i in (0..params.len()).step_by(stride) {
            let mut p1 = params.clone();
            p1[i] += eps;
            let mut p2 = params.clone();
            p2[i] -= eps;
            let num = (loss(&p1, &input) - loss(&p2, &input)) / (2.0 * f64::from(eps));
            let ana = f64::from(grad_params[i]);
            // f32 forward passes through deep composites accumulate ~1e-3
            // relative error per layer; 3% is the tightest tolerance that
            // stays reliable for the bottleneck block.
            let tol = 3e-2 * (1.0 + num.abs().max(ana.abs()));
            assert!(
                (num - ana).abs() < tol,
                "{}: param {i} grad mismatch: numeric {num} vs analytic {ana}",
                layer.name()
            );
        }
        // Input gradients. Coordinates within eps of zero are skipped:
        // piecewise-linear layers (ReLU, max-pool) have kinks there, where
        // central differences straddle two linear pieces and disagree with
        // the (one-sided) analytic derivative.
        let istride = (input.len() / 24).max(1);
        for i in (0..input.len()).step_by(istride) {
            if input.data()[i].abs() < 5.0 * eps {
                continue;
            }
            let mut x1 = input.clone();
            x1.data_mut()[i] += eps;
            let mut x2 = input.clone();
            x2.data_mut()[i] -= eps;
            let num = (loss(&params, &x1) - loss(&params, &x2)) / (2.0 * f64::from(eps));
            let ana = f64::from(grad_input.data()[i]);
            let tol = 3e-2 * (1.0 + num.abs().max(ana.abs()));
            assert!(
                (num - ana).abs() < tol,
                "{}: input {i} grad mismatch: numeric {num} vs analytic {ana}",
                layer.name()
            );
        }
    }
}
