//! Residual blocks (He et al. \[17\]) as a composite layer.
//!
//! A block runs a body of inner layers, adds a skip connection (identity,
//! or a strided 1x1 projection when the shape changes) and applies a final
//! ReLU. ResNet-32 and ResNet-50 in the model zoo are stacks of these.

use super::{Conv2d, Layer, Relu, Slot};
use crate::layer::norm::ChannelNorm;
use crossbow_tensor::ops::add_assign;
use crossbow_tensor::{Rng, Shape, Tensor, Workspace};

/// A residual block: `out = relu(body(x) + skip(x))`.
pub struct Residual {
    body: Vec<Box<dyn Layer>>,
    projection: Option<Conv2d>,
}

impl Residual {
    /// Creates a block with an identity skip.
    ///
    /// # Panics
    /// Panics if the body is empty.
    pub fn new(body: Vec<Box<dyn Layer>>) -> Self {
        assert!(!body.is_empty(), "residual body cannot be empty");
        Residual {
            body,
            projection: None,
        }
    }

    /// Adds a projection convolution on the skip path (used when the body
    /// changes the channel count or resolution).
    pub fn with_projection(mut self, projection: Conv2d) -> Self {
        self.projection = Some(projection);
        self
    }

    /// The three-convolution *bottleneck* block of ResNet-50:
    /// `conv1x1(c_mid) -> norm -> relu -> conv3x3(c_mid, stride) -> norm ->
    /// relu -> conv1x1(c_out) -> norm`, with a 1x1 projection skip when
    /// the geometry changes. The 1x1 convolutions squeeze and re-expand
    /// the channel count so the expensive 3x3 runs thin.
    pub fn bottleneck_block(c_in: usize, c_mid: usize, c_out: usize, stride: usize) -> Self {
        let body: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::projection(c_in, c_mid, 1)),
            Box::new(ChannelNorm::new(c_mid)),
            Box::new(Relu),
            Box::new(Conv2d::new(c_mid, c_mid, 3, stride, 1)),
            Box::new(ChannelNorm::new(c_mid)),
            Box::new(Relu),
            Box::new(Conv2d::projection(c_mid, c_out, 1)),
            Box::new(ChannelNorm::new(c_out)),
        ];
        let block = Residual::new(body);
        if stride != 1 || c_in != c_out {
            block.with_projection(Conv2d::projection(c_in, c_out, stride))
        } else {
            block
        }
    }

    /// The standard two-convolution ResNet basic block:
    /// `conv3x3(stride) -> norm -> relu -> conv3x3 -> norm`, with a 1x1
    /// projection skip when `stride != 1` or the channel count changes.
    pub fn basic_block(c_in: usize, c_out: usize, stride: usize) -> Self {
        let body: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(c_in, c_out, 3, stride, 1)),
            Box::new(ChannelNorm::new(c_out)),
            Box::new(Relu),
            Box::new(Conv2d::same3x3(c_out, c_out)),
            Box::new(ChannelNorm::new(c_out)),
        ];
        let block = Residual::new(body);
        if stride != 1 || c_in != c_out {
            block.with_projection(Conv2d::projection(c_in, c_out, stride))
        } else {
            block
        }
    }

    fn param_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let mut ranges = Vec::with_capacity(self.body.len() + 1);
        let mut off = 0usize;
        for l in &self.body {
            ranges.push(off..off + l.param_len());
            off += l.param_len();
        }
        if let Some(p) = &self.projection {
            ranges.push(off..off + p.param_len());
        }
        ranges
    }

    fn ensure_children(&self, slot: &mut Slot) {
        let need = self.body.len() + 1; // +1 for the projection (maybe unused)
        if slot.children.len() != need {
            slot.children = vec![Slot::default(); need];
        }
    }
}

impl Layer for Residual {
    fn name(&self) -> &'static str {
        "residual"
    }

    fn param_len(&self) -> usize {
        self.body.iter().map(|l| l.param_len()).sum::<usize>()
            + self.projection.as_ref().map_or(0, |p| p.param_len())
    }

    fn output_shape(&self, input: &Shape) -> Shape {
        let mut shape = input.clone();
        for l in &self.body {
            shape = l.output_shape(&shape);
        }
        let skip_shape = match &self.projection {
            Some(p) => p.output_shape(input),
            None => input.clone(),
        };
        assert_eq!(
            shape, skip_shape,
            "residual body output {shape} does not match skip path {skip_shape}"
        );
        shape
    }

    fn init(&self, params: &mut [f32], rng: &mut Rng) {
        let ranges = self.param_ranges();
        for (i, l) in self.body.iter().enumerate() {
            l.init(&mut params[ranges[i].clone()], rng);
        }
        if let Some(p) = &self.projection {
            p.init(&mut params[ranges[self.body.len()].clone()], rng);
        }
    }

    fn forward(
        &self,
        params: &[f32],
        input: &Tensor,
        slot: &mut Slot,
        ws: &mut Workspace,
        train: bool,
    ) -> Tensor {
        self.ensure_children(slot);
        let ranges = self.param_ranges();
        // The first body layer reads `input` directly; intermediates are
        // recycled into the arena as soon as the next layer consumes them.
        let mut x = self.body[0].forward(
            &params[ranges[0].clone()],
            input,
            &mut slot.children[0],
            ws,
            train,
        );
        for (i, l) in self.body.iter().enumerate().skip(1) {
            let y = l.forward(
                &params[ranges[i].clone()],
                &x,
                &mut slot.children[i],
                ws,
                train,
            );
            ws.recycle(std::mem::replace(&mut x, y));
        }
        match &self.projection {
            Some(p) => {
                let skip = p.forward(
                    &params[ranges[self.body.len()].clone()],
                    input,
                    &mut slot.children[self.body.len()],
                    ws,
                    train,
                );
                add_assign(x.data_mut(), skip.data());
                ws.recycle(skip);
            }
            // Identity skip: add straight from the caller's input, no copy.
            None => add_assign(x.data_mut(), input.data()),
        }
        // Final ReLU, recording the mask for backward (train only).
        if train {
            slot.recycle_tensors_into(ws);
            let mut mask = ws.take_tensor(x.shape().clone());
            for (m, v) in mask.data_mut().iter_mut().zip(x.data_mut().iter_mut()) {
                if *v > 0.0 {
                    *m = 1.0;
                } else {
                    *v = 0.0;
                }
            }
            slot.tensors.push(mask);
        } else {
            for v in x.data_mut() {
                *v = v.max(0.0);
            }
        }
        x
    }

    fn backward(
        &self,
        params: &[f32],
        grad_params: &mut [f32],
        grad_output: &Tensor,
        slot: &Slot,
        ws: &mut Workspace,
    ) -> Tensor {
        let ranges = self.param_ranges();
        // Through the final ReLU.
        let mask = &slot.tensors[0];
        let mut dy = ws.take_tensor(grad_output.shape().clone());
        for ((o, &g), &m) in dy
            .data_mut()
            .iter_mut()
            .zip(grad_output.data())
            .zip(mask.data())
        {
            *o = g * m;
        }
        // Body path, in reverse; intermediates recycled as consumed.
        let mut d_body = ws.take_tensor(dy.shape().clone());
        d_body.copy_from(&dy);
        for (i, l) in self.body.iter().enumerate().rev() {
            let d_next = l.backward(
                &params[ranges[i].clone()],
                &mut grad_params[ranges[i].clone()],
                &d_body,
                &slot.children[i],
                ws,
            );
            ws.recycle(std::mem::replace(&mut d_body, d_next));
        }
        // Skip path.
        let d_skip = match &self.projection {
            Some(p) => {
                let r = ranges[self.body.len()].clone();
                let d = p.backward(
                    &params[r.clone()],
                    &mut grad_params[r],
                    &dy,
                    &slot.children[self.body.len()],
                    ws,
                );
                ws.recycle(dy);
                d
            }
            None => dy,
        };
        add_assign(d_body.data_mut(), d_skip.data());
        ws.recycle(d_skip);
        d_body
    }

    fn flops_per_sample(&self, input: &Shape) -> u64 {
        let mut flops = 0u64;
        let mut shape = input.clone();
        for l in &self.body {
            flops += l.flops_per_sample(&shape);
            shape = l.output_shape(&shape);
        }
        if let Some(p) = &self.projection {
            flops += p.flops_per_sample(input);
        }
        flops + shape.len() as u64 // the add
    }

    fn scratch_len(&self, input: &Shape, batch: usize) -> usize {
        let mut total = 0usize;
        let mut shape = input.clone();
        for l in &self.body {
            total += l.scratch_len(&shape, batch);
            shape = l.output_shape(&shape);
        }
        if let Some(p) = &self.projection {
            total += p.scratch_len(input, batch);
        }
        // The stashed ReLU mask (and the skip copy it displaces).
        total + 2 * batch * shape.len()
    }

    fn op_count(&self) -> usize {
        self.body.iter().map(|l| l.op_count()).sum::<usize>()
            + self.projection.as_ref().map_or(0, |p| p.op_count())
            + 2 // add + relu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck::check_layer;

    #[test]
    fn identity_skip_shapes_must_match() {
        let block = Residual::basic_block(4, 4, 1);
        let s = block.output_shape(&Shape::new(&[4, 8, 8]));
        assert_eq!(s.dims(), &[4, 8, 8]);
        assert!(block.projection.is_none());
    }

    #[test]
    fn strided_block_gets_projection() {
        let block = Residual::basic_block(4, 8, 2);
        assert!(block.projection.is_some());
        let s = block.output_shape(&Shape::new(&[4, 8, 8]));
        assert_eq!(s.dims(), &[8, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "does not match skip path")]
    fn mismatched_skip_rejected() {
        // Body changes channels but no projection is configured.
        let block = Residual::new(vec![Box::new(Conv2d::same3x3(4, 8))]);
        let _ = block.output_shape(&Shape::new(&[4, 8, 8]));
    }

    #[test]
    fn zero_body_acts_like_relu_of_skip() {
        // A single conv with zero weights: body(x) = 0, out = relu(x).
        let block = Residual::new(vec![Box::new(Conv2d::same3x3(1, 1))]);
        let params = vec![0.0; block.param_len()];
        let x = Tensor::from_vec([1, 1, 2, 2], vec![-1.0, 2.0, -3.0, 4.0]);
        let mut slot = Slot::default();
        let mut ws = Workspace::new();
        let y = block.forward(&params, &x, &mut slot, &mut ws, true);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn gradcheck_identity_skip() {
        check_layer(&Residual::basic_block(2, 2, 1), &[2, 4, 4], 2, 61);
    }

    #[test]
    fn gradcheck_projection_skip() {
        check_layer(&Residual::basic_block(2, 4, 2), &[2, 4, 4], 2, 62);
    }

    #[test]
    fn bottleneck_squeezes_channels() {
        let block = Residual::bottleneck_block(8, 2, 8, 1);
        assert!(block.projection.is_none(), "same geometry: identity skip");
        let s = block.output_shape(&Shape::new(&[8, 4, 4]));
        assert_eq!(s.dims(), &[8, 4, 4]);
        // A bottleneck has fewer parameters than a basic block of the
        // same width — the whole point of the 1x1 squeeze.
        let basic = Residual::basic_block(8, 8, 1);
        assert!(block.param_len() < basic.param_len());
    }

    #[test]
    fn bottleneck_with_stride_projects() {
        let block = Residual::bottleneck_block(4, 2, 8, 2);
        assert!(block.projection.is_some());
        let s = block.output_shape(&Shape::new(&[4, 8, 8]));
        assert_eq!(s.dims(), &[8, 4, 4]);
    }

    #[test]
    fn gradcheck_bottleneck() {
        check_layer(&Residual::bottleneck_block(4, 2, 4, 1), &[4, 4, 4], 2, 63);
    }

    #[test]
    fn param_len_sums_inner_layers() {
        let block = Residual::basic_block(4, 8, 2);
        let body: usize = block.body.iter().map(|l| l.param_len()).sum();
        let proj = block.projection.as_ref().unwrap().param_len();
        assert_eq!(block.param_len(), body + proj);
        assert!(block.op_count() > 2);
    }
}
