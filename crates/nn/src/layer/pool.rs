//! Pooling layers.

use super::{Layer, Slot};
use crossbow_tensor::conv::conv_out;
use crossbow_tensor::{Rng, Shape, Tensor, Workspace};

/// Max pooling over square windows of NCHW input.
#[derive(Clone, Copy, Debug)]
pub struct MaxPool2d {
    window: usize,
    stride: usize,
}

impl MaxPool2d {
    /// Creates a max-pool with the given window and stride.
    pub fn new(window: usize, stride: usize) -> Self {
        assert!(window > 0 && stride > 0, "bad pool");
        MaxPool2d { window, stride }
    }

    /// The classic non-overlapping 2x2 pool.
    pub fn halving() -> Self {
        MaxPool2d::new(2, 2)
    }

    fn dims(&self, input: &Shape) -> (usize, usize, usize, usize, usize) {
        assert_eq!(input.rank(), 3, "maxpool expects CHW input, got {input}");
        let (c, h, w) = (input.dim(0), input.dim(1), input.dim(2));
        let oh = conv_out(h, self.window, self.stride, 0);
        let ow = conv_out(w, self.window, self.stride, 0);
        (c, h, w, oh, ow)
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool"
    }

    fn param_len(&self) -> usize {
        0
    }

    fn output_shape(&self, input: &Shape) -> Shape {
        let (c, _, _, oh, ow) = self.dims(input);
        Shape::new(&[c, oh, ow])
    }

    fn init(&self, _params: &mut [f32], _rng: &mut Rng) {}

    fn forward(
        &self,
        _params: &[f32],
        input: &Tensor,
        slot: &mut Slot,
        ws: &mut Workspace,
        train: bool,
    ) -> Tensor {
        let batch = input.shape().dim(0);
        let per_sample = Shape::new(&input.shape().dims()[1..]);
        let (c, h, w, oh, ow) = self.dims(&per_sample);
        let mut out = ws.take_tensor([batch, c, oh, ow]);
        // Flat input index of each output's argmax, stored as f32 (values
        // stay far below the 2^24 exact-integer limit for our models).
        let mut argmax = ws.take_tensor([batch, c, oh, ow]);
        let in_plane = h * w;
        let out_plane = oh * ow;
        for n in 0..batch {
            for ch in 0..c {
                let plane = &input.data()[(n * c + ch) * in_plane..(n * c + ch + 1) * in_plane];
                let base = (n * c + ch) * out_plane;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..self.window {
                            let iy = oy * self.stride + ky;
                            for kx in 0..self.window {
                                let ix = ox * self.stride + kx;
                                let v = plane[iy * w + ix];
                                if v > best {
                                    best = v;
                                    best_idx = iy * w + ix;
                                }
                            }
                        }
                        out.data_mut()[base + oy * ow + ox] = best;
                        argmax.data_mut()[base + oy * ow + ox] = best_idx as f32;
                    }
                }
            }
        }
        if train {
            slot.recycle_tensors_into(ws);
            slot.tensors.push(argmax);
            let mut meta = ws.take_tensor([3]);
            meta.data_mut()
                .copy_from_slice(&[batch as f32, c as f32, in_plane as f32]);
            slot.tensors.push(meta);
        } else {
            ws.recycle(argmax);
        }
        out
    }

    fn backward(
        &self,
        _params: &[f32],
        _grad_params: &mut [f32],
        grad_output: &Tensor,
        slot: &Slot,
        ws: &mut Workspace,
    ) -> Tensor {
        let argmax = &slot.tensors[0];
        let meta = slot.tensors[1].data();
        let (batch, c, in_plane) = (meta[0] as usize, meta[1] as usize, meta[2] as usize);
        let out_plane = grad_output.len() / (batch * c);
        let mut grad_in = ws.take_tensor([batch, c, in_plane].as_slice());
        for n in 0..batch {
            for ch in 0..c {
                let base_out = (n * c + ch) * out_plane;
                let base_in = (n * c + ch) * in_plane;
                for i in 0..out_plane {
                    let idx = argmax.data()[base_out + i] as usize;
                    grad_in.data_mut()[base_in + idx] += grad_output.data()[base_out + i];
                }
            }
        }
        grad_in
    }

    fn flops_per_sample(&self, input: &Shape) -> u64 {
        input.len() as u64
    }

    fn scratch_len(&self, input: &Shape, batch: usize) -> usize {
        let (c, _, _, oh, ow) = self.dims(input);
        // The stashed argmax plane plus the 3-element meta record.
        batch * c * oh * ow + 3
    }
}

/// Global average pooling: collapses each channel plane to its mean — the
/// ResNet head.
#[derive(Clone, Copy, Debug, Default)]
pub struct GlobalAvgPool;

impl Layer for GlobalAvgPool {
    fn name(&self) -> &'static str {
        "gap"
    }

    fn param_len(&self) -> usize {
        0
    }

    fn output_shape(&self, input: &Shape) -> Shape {
        assert_eq!(input.rank(), 3, "gap expects CHW input, got {input}");
        Shape::vector(input.dim(0))
    }

    fn init(&self, _params: &mut [f32], _rng: &mut Rng) {}

    fn forward(
        &self,
        _params: &[f32],
        input: &Tensor,
        slot: &mut Slot,
        ws: &mut Workspace,
        train: bool,
    ) -> Tensor {
        let dims = input.shape().dims();
        let (batch, c) = (dims[0], dims[1]);
        let plane = dims[2] * dims[3];
        let mut out = ws.take_tensor([batch, c]);
        for n in 0..batch {
            for ch in 0..c {
                let p = &input.data()[(n * c + ch) * plane..(n * c + ch + 1) * plane];
                out.data_mut()[n * c + ch] = p.iter().sum::<f32>() / plane as f32;
            }
        }
        if train {
            slot.recycle_tensors_into(ws);
            let mut meta = ws.take_tensor([4]);
            meta.data_mut().copy_from_slice(&[
                batch as f32,
                c as f32,
                dims[2] as f32,
                dims[3] as f32,
            ]);
            slot.tensors.push(meta);
        }
        out
    }

    fn backward(
        &self,
        _params: &[f32],
        _grad_params: &mut [f32],
        grad_output: &Tensor,
        slot: &Slot,
        ws: &mut Workspace,
    ) -> Tensor {
        let meta = slot.tensors[0].data();
        let (batch, c, h, w) = (
            meta[0] as usize,
            meta[1] as usize,
            meta[2] as usize,
            meta[3] as usize,
        );
        let plane = h * w;
        let scale = 1.0 / plane as f32;
        let mut grad_in = ws.take_tensor([batch, c, h, w]);
        for n in 0..batch {
            for ch in 0..c {
                let g = grad_output.data()[n * c + ch] * scale;
                let p = &mut grad_in.data_mut()[(n * c + ch) * plane..(n * c + ch + 1) * plane];
                p.iter_mut().for_each(|v| *v = g);
            }
        }
        grad_in
    }

    fn flops_per_sample(&self, input: &Shape) -> u64 {
        input.len() as u64
    }

    fn scratch_len(&self, _input: &Shape, _batch: usize) -> usize {
        4 // the meta record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck::check_layer;

    #[test]
    fn maxpool_forward_picks_maxima() {
        let p = MaxPool2d::halving();
        let x = Tensor::from_vec(
            [1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let mut slot = Slot::default();
        let mut ws = Workspace::new();
        let y = p.forward(&[], &x, &mut slot, &mut ws, true);
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let p = MaxPool2d::halving();
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 9.0, 2.0, 3.0]);
        let mut slot = Slot::default();
        let mut ws = Workspace::new();
        let _ = p.forward(&[], &x, &mut slot, &mut ws, true);
        let g = p.backward(
            &[],
            &mut [],
            &Tensor::from_vec([1, 1, 1, 1], vec![5.0]),
            &slot,
            &mut ws,
        );
        assert_eq!(g.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_gradcheck() {
        // Note: max-pool is piecewise linear; the random normal inputs make
        // exact ties measure-zero, so finite differences are valid.
        check_layer(&MaxPool2d::halving(), &[2, 4, 4], 2, 41);
    }

    #[test]
    fn gap_forward_averages() {
        let x = Tensor::from_vec([1, 2, 1, 2], vec![1.0, 3.0, 10.0, 20.0]);
        let mut slot = Slot::default();
        let mut ws = Workspace::new();
        let y = GlobalAvgPool.forward(&[], &x, &mut slot, &mut ws, true);
        assert_eq!(y.data(), &[2.0, 15.0]);
    }

    #[test]
    fn gap_gradcheck() {
        check_layer(&GlobalAvgPool, &[3, 2, 2], 2, 42);
    }

    #[test]
    fn shapes() {
        assert_eq!(
            MaxPool2d::halving().output_shape(&Shape::new(&[8, 16, 16])),
            Shape::new(&[8, 8, 8])
        );
        assert_eq!(
            GlobalAvgPool.output_shape(&Shape::new(&[32, 4, 4])),
            Shape::vector(32)
        );
    }
}
