//! Element-wise activation layers.

use super::{stash_copy, Layer, Slot};
use crossbow_tensor::{Rng, Shape, Tensor, Workspace};

/// Rectified linear unit: `y = max(x, 0)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Relu;

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn param_len(&self) -> usize {
        0
    }

    fn output_shape(&self, input: &Shape) -> Shape {
        input.clone()
    }

    fn init(&self, _params: &mut [f32], _rng: &mut Rng) {}

    fn forward(
        &self,
        _params: &[f32],
        input: &Tensor,
        slot: &mut Slot,
        ws: &mut Workspace,
        train: bool,
    ) -> Tensor {
        let mut out = ws.take_tensor(input.shape().clone());
        for (o, &v) in out.data_mut().iter_mut().zip(input.data()) {
            *o = v.max(0.0);
        }
        if train {
            slot.recycle_tensors_into(ws);
            // Save the mask (1 where the input was positive).
            let mut mask = ws.take_tensor(input.shape().clone());
            for (m, &v) in mask.data_mut().iter_mut().zip(input.data()) {
                *m = if v > 0.0 { 1.0 } else { 0.0 };
            }
            slot.tensors.push(mask);
        }
        out
    }

    fn backward(
        &self,
        _params: &[f32],
        _grad_params: &mut [f32],
        grad_output: &Tensor,
        slot: &Slot,
        ws: &mut Workspace,
    ) -> Tensor {
        let mask = &slot.tensors[0];
        let mut grad_in = ws.take_tensor(grad_output.shape().clone());
        for ((o, &g), &m) in grad_in
            .data_mut()
            .iter_mut()
            .zip(grad_output.data())
            .zip(mask.data())
        {
            *o = g * m;
        }
        grad_in
    }

    fn flops_per_sample(&self, input: &Shape) -> u64 {
        input.len() as u64
    }

    fn scratch_len(&self, input: &Shape, batch: usize) -> usize {
        // The stashed mask.
        batch * input.len()
    }
}

/// Hyperbolic tangent activation.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tanh;

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "tanh"
    }

    fn param_len(&self) -> usize {
        0
    }

    fn output_shape(&self, input: &Shape) -> Shape {
        input.clone()
    }

    fn init(&self, _params: &mut [f32], _rng: &mut Rng) {}

    fn forward(
        &self,
        _params: &[f32],
        input: &Tensor,
        slot: &mut Slot,
        ws: &mut Workspace,
        train: bool,
    ) -> Tensor {
        let mut out = ws.take_tensor(input.shape().clone());
        for (o, &v) in out.data_mut().iter_mut().zip(input.data()) {
            *o = v.tanh();
        }
        if train {
            slot.recycle_tensors_into(ws);
            stash_copy(slot, ws, &out); // y, since dy/dx = 1 - y^2
        }
        out
    }

    fn backward(
        &self,
        _params: &[f32],
        _grad_params: &mut [f32],
        grad_output: &Tensor,
        slot: &Slot,
        ws: &mut Workspace,
    ) -> Tensor {
        let y = &slot.tensors[0];
        let mut grad_in = ws.take_tensor(grad_output.shape().clone());
        for ((o, &g), &yv) in grad_in
            .data_mut()
            .iter_mut()
            .zip(grad_output.data())
            .zip(y.data())
        {
            *o = g * (1.0 - yv * yv);
        }
        grad_in
    }

    fn flops_per_sample(&self, input: &Shape) -> u64 {
        // tanh is ~10 flops in most implementations.
        10 * input.len() as u64
    }

    fn scratch_len(&self, input: &Shape, batch: usize) -> usize {
        // The stashed output copy.
        batch * input.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck::check_layer;

    #[test]
    fn relu_forward_clamps() {
        let mut slot = Slot::default();
        let mut ws = Workspace::new();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = Relu.forward(&[], &x, &mut slot, &mut ws, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let mut slot = Slot::default();
        let mut ws = Workspace::new();
        let x = Tensor::from_slice(&[-1.0, 3.0]);
        let _ = Relu.forward(&[], &x, &mut slot, &mut ws, true);
        let g = Relu.backward(
            &[],
            &mut [],
            &Tensor::from_slice(&[5.0, 5.0]),
            &slot,
            &mut ws,
        );
        assert_eq!(g.data(), &[0.0, 5.0]);
    }

    #[test]
    fn relu_gradcheck() {
        check_layer(&Relu, &[6], 3, 11);
    }

    #[test]
    fn tanh_gradcheck() {
        check_layer(&Tanh, &[5], 4, 12);
    }

    #[test]
    fn tanh_forward_is_odd() {
        let mut slot = Slot::default();
        let mut ws = Workspace::new();
        let x = Tensor::from_slice(&[-1.0, 0.0, 1.0]);
        let y = Tanh.forward(&[], &x, &mut slot, &mut ws, false);
        assert!((y.data()[0] + y.data()[2]).abs() < 1e-6);
        assert_eq!(y.data()[1], 0.0);
    }

    #[test]
    fn shapes_pass_through() {
        let s = Shape::new(&[3, 4, 4]);
        assert_eq!(Relu.output_shape(&s), s);
        assert_eq!(Tanh.output_shape(&s), s);
        assert_eq!(Relu.param_len(), 0);
    }
}
