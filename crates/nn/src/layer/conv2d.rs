//! 2-D convolution via im2col + GEMM — the same lowering cuDNN's GEMM
//! algorithm uses, so the operator counts in the cost profiles map onto
//! real kernels.

use super::{stash_copy, Layer, Slot};
use crate::init::Init;
use crossbow_tensor::conv::{col2im, im2col, ConvGeom};
use crossbow_tensor::gemm::{gemm_at_ws, gemm_bt_ws, gemm_ws};
use crossbow_tensor::{Rng, Shape, Tensor, Workspace};

/// A 2-D convolution over NCHW input with square stride/padding.
#[derive(Clone, Copy, Debug)]
pub struct Conv2d {
    c_in: usize,
    c_out: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
}

impl Conv2d {
    /// Creates a convolution: `c_in -> c_out` channels with a square
    /// `kernel x kernel` filter.
    pub fn new(c_in: usize, c_out: usize, kernel: usize, stride: usize, pad: usize) -> Self {
        assert!(
            c_in > 0 && c_out > 0 && kernel > 0 && stride > 0,
            "bad conv"
        );
        Conv2d {
            c_in,
            c_out,
            kernel,
            stride,
            pad,
        }
    }

    /// A 3x3 "same" convolution (stride 1, pad 1) — the ResNet/VGG staple.
    pub fn same3x3(c_in: usize, c_out: usize) -> Self {
        Conv2d::new(c_in, c_out, 3, 1, 1)
    }

    /// A 1x1 projection convolution with the given stride.
    pub fn projection(c_in: usize, c_out: usize, stride: usize) -> Self {
        Conv2d::new(c_in, c_out, 1, stride, 0)
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    fn geom(&self, input: &Shape) -> ConvGeom {
        assert_eq!(
            input.rank(),
            3,
            "conv2d expects per-sample CHW input, got {input}"
        );
        assert_eq!(
            input.dim(0),
            self.c_in,
            "conv2d expects {} input channels, got {input}",
            self.c_in
        );
        ConvGeom {
            c_in: self.c_in,
            h: input.dim(1),
            w: input.dim(2),
            kh: self.kernel,
            kw: self.kernel,
            stride: self.stride,
            pad: self.pad,
        }
    }

    fn weight_len(&self) -> usize {
        self.c_out * self.c_in * self.kernel * self.kernel
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn param_len(&self) -> usize {
        self.weight_len() + self.c_out
    }

    fn output_shape(&self, input: &Shape) -> Shape {
        let g = self.geom(input);
        Shape::new(&[self.c_out, g.out_h(), g.out_w()])
    }

    fn init(&self, params: &mut [f32], rng: &mut Rng) {
        let fan_in = self.c_in * self.kernel * self.kernel;
        let fan_out = self.c_out * self.kernel * self.kernel;
        let (w, b) = params.split_at_mut(self.weight_len());
        Init::HeNormal.fill(w, fan_in, fan_out, rng);
        Init::Zeros.fill(b, 0, 0, rng);
    }

    fn forward(
        &self,
        params: &[f32],
        input: &Tensor,
        slot: &mut Slot,
        ws: &mut Workspace,
        train: bool,
    ) -> Tensor {
        assert_eq!(input.shape().rank(), 4, "conv2d expects NCHW batches");
        let batch = input.shape().dim(0);
        let per_sample = Shape::new(&input.shape().dims()[1..]);
        let g = self.geom(&per_sample);
        let (out_h, out_w) = (g.out_h(), g.out_w());
        let (w, bias) = params.split_at(self.weight_len());
        let rows = g.col_rows();
        let cols = g.col_cols();
        let mut col = ws.take(g.col_len());
        let mut out = ws.take_tensor([batch, self.c_out, out_h, out_w]);
        let in_len = g.image_len();
        let out_len = self.c_out * out_h * out_w;
        for n in 0..batch {
            let image = &input.data()[n * in_len..(n + 1) * in_len];
            im2col(&g, image, &mut col);
            let out_image = &mut out.data_mut()[n * out_len..(n + 1) * out_len];
            // out = W (c_out x rows) @ col (rows x cols)
            gemm_ws(self.c_out, rows, cols, 1.0, w, &col, 0.0, out_image, ws);
            for (c, plane) in out_image.chunks_exact_mut(cols).enumerate() {
                let bv = bias[c];
                plane.iter_mut().for_each(|o| *o += bv);
            }
        }
        ws.give(col);
        if train {
            slot.recycle_tensors_into(ws);
            stash_copy(slot, ws, input);
        }
        out
    }

    fn backward(
        &self,
        params: &[f32],
        grad_params: &mut [f32],
        grad_output: &Tensor,
        slot: &Slot,
        ws: &mut Workspace,
    ) -> Tensor {
        let input = &slot.tensors[0];
        let batch = input.shape().dim(0);
        let per_sample = Shape::new(&input.shape().dims()[1..]);
        let g = self.geom(&per_sample);
        let rows = g.col_rows();
        let cols = g.col_cols();
        let in_len = g.image_len();
        let out_len = self.c_out * cols;
        let (w, _) = params.split_at(self.weight_len());
        let (gw, gb) = grad_params.split_at_mut(self.weight_len());
        let mut col = ws.take(g.col_len());
        let mut dcol = ws.take(g.col_len());
        let mut grad_in = ws.take_tensor(input.shape().clone());
        for n in 0..batch {
            let image = &input.data()[n * in_len..(n + 1) * in_len];
            let dout = &grad_output.data()[n * out_len..(n + 1) * out_len];
            // dW += dOut (c_out x cols) @ col^T
            im2col(&g, image, &mut col);
            gemm_bt_ws(self.c_out, cols, rows, 1.0, dout, &col, 1.0, gw, ws);
            // db += row sums of dOut per channel
            for (c, plane) in dout.chunks_exact(cols).enumerate() {
                gb[c] += plane.iter().sum::<f32>();
            }
            // dCol = W^T @ dOut, then scatter to dInput
            gemm_at_ws(rows, self.c_out, cols, 1.0, w, dout, 0.0, &mut dcol, ws);
            let dimage = &mut grad_in.data_mut()[n * in_len..(n + 1) * in_len];
            col2im(&g, &dcol, dimage);
        }
        ws.give(col);
        ws.give(dcol);
        grad_in
    }

    fn flops_per_sample(&self, input: &Shape) -> u64 {
        let g = self.geom(input);
        // One GEMM: 2 * c_out * (c_in*k*k) * (out_h*out_w)
        2 * (self.c_out * g.col_rows() * g.col_cols()) as u64
    }

    fn scratch_len(&self, input: &Shape, batch: usize) -> usize {
        let g = self.geom(input);
        // col + dcol during backward, plus the stashed input copy.
        2 * g.col_len() + batch * g.image_len()
    }

    fn op_count(&self) -> usize {
        // im2col + gemm forward; im2col + two gemms + col2im backward.
        7
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck::check_layer;

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 conv with weight 1, bias 0 is the identity.
        let layer = Conv2d::new(1, 1, 1, 1, 0);
        let params = vec![1.0, 0.0];
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let mut slot = Slot::default();
        let mut ws = Workspace::new();
        let y = layer.forward(&params, &x, &mut slot, &mut ws, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn hand_computed_3x3_sum_kernel() {
        // All-ones 3x3 kernel with pad 1 computes neighbourhood sums.
        let layer = Conv2d::same3x3(1, 1);
        let mut params = vec![1.0; layer.param_len()];
        params[9] = 0.0; // bias
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let mut slot = Slot::default();
        let mut ws = Workspace::new();
        let y = layer.forward(&params, &x, &mut slot, &mut ws, false);
        // Every output is the sum of all in-bounds neighbours.
        assert_eq!(y.data(), &[10.0, 10.0, 10.0, 10.0]);
    }

    #[test]
    fn output_shape_follows_geometry() {
        let layer = Conv2d::new(3, 8, 3, 2, 1);
        let s = layer.output_shape(&Shape::new(&[3, 16, 16]));
        assert_eq!(s.dims(), &[8, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn rejects_channel_mismatch() {
        let layer = Conv2d::new(3, 8, 3, 1, 1);
        let _ = layer.output_shape(&Shape::new(&[1, 8, 8]));
    }

    #[test]
    fn gradcheck_basic() {
        check_layer(&Conv2d::new(2, 3, 3, 1, 1), &[2, 5, 5], 2, 31);
    }

    #[test]
    fn gradcheck_strided_projection() {
        check_layer(&Conv2d::projection(3, 4, 2), &[3, 6, 6], 2, 32);
    }

    #[test]
    fn gradcheck_no_padding() {
        check_layer(&Conv2d::new(1, 2, 3, 1, 0), &[1, 5, 5], 3, 33);
    }

    #[test]
    fn flops_scale_with_resolution() {
        let layer = Conv2d::same3x3(16, 16);
        let small = layer.flops_per_sample(&Shape::new(&[16, 8, 8]));
        let large = layer.flops_per_sample(&Shape::new(&[16, 16, 16]));
        assert_eq!(large, small * 4);
    }
}
