//! Channel normalisation (batch-norm style).
//!
//! Normalises each channel over the batch and spatial dimensions, then
//! applies a learnable per-channel scale (`gamma`) and shift (`beta`).
//!
//! *Substitution note*: unlike framework batch-norm we use batch statistics
//! at evaluation time too, instead of maintaining running-average state —
//! the `Layer` trait is stateless by design so that one network definition
//! can serve many learner threads. Test accuracy is evaluated on full
//! batches, where batch statistics are a faithful stand-in. This is
//! documented in DESIGN.md.

use super::{stash_copy, Layer, Slot};
use crate::init::Init;
use crossbow_tensor::{Rng, Shape, Tensor, Workspace};

const EPS: f32 = 1e-5;

/// Sums a slice with four independent accumulators combined in a fixed
/// order — the loop-carried dependency of a single accumulator is what
/// keeps scalar reductions from pipelining, and the order is static so
/// results stay deterministic run to run.
#[inline]
fn sum4(xs: &[f32], mut f: impl FnMut(f32) -> f32) -> f32 {
    let mut acc = [0.0f32; 4];
    let chunks = xs.chunks_exact(4);
    let rest = chunks.remainder();
    for c in chunks {
        acc[0] += f(c[0]);
        acc[1] += f(c[1]);
        acc[2] += f(c[2]);
        acc[3] += f(c[3]);
    }
    for (i, &v) in rest.iter().enumerate() {
        acc[i] += f(v);
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Per-channel normalisation with learnable scale and shift.
#[derive(Clone, Copy, Debug)]
pub struct ChannelNorm {
    channels: usize,
}

impl ChannelNorm {
    /// Creates a normalisation layer over `channels` channels.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "zero channels");
        ChannelNorm { channels }
    }
}

impl Layer for ChannelNorm {
    fn name(&self) -> &'static str {
        "norm"
    }

    fn param_len(&self) -> usize {
        2 * self.channels
    }

    fn output_shape(&self, input: &Shape) -> Shape {
        assert_eq!(
            input.dim(0),
            self.channels,
            "norm expects {} channels, got {input}",
            self.channels
        );
        input.clone()
    }

    fn init(&self, params: &mut [f32], rng: &mut Rng) {
        let (gamma, beta) = params.split_at_mut(self.channels);
        Init::Ones.fill(gamma, 0, 0, rng);
        Init::Zeros.fill(beta, 0, 0, rng);
    }

    fn forward(
        &self,
        params: &[f32],
        input: &Tensor,
        slot: &mut Slot,
        ws: &mut Workspace,
        train: bool,
    ) -> Tensor {
        let dims = input.shape().dims();
        let batch = dims[0];
        let c = self.channels;
        debug_assert_eq!(dims[1], c);
        let plane: usize = dims[2..].iter().product::<usize>().max(1);
        let n_per_c = (batch * plane) as f32;
        let (gamma, beta) = params.split_at(c);
        let mut out = ws.take_tensor(input.shape().clone());
        let mut means = ws.take(c);
        let mut inv_stds = ws.take(c);
        for ch in 0..c {
            // Two-pass mean/variance: the one-pass E[x^2] - E[x]^2 form
            // cancels catastrophically in f32 once activations drift away
            // from zero, which is enough noise to disturb gradient checks
            // through deep blocks.
            let mut sum = 0.0f32;
            for n in 0..batch {
                let p = &input.data()[(n * c + ch) * plane..(n * c + ch + 1) * plane];
                sum += sum4(p, |v| v);
            }
            let mean = sum / n_per_c;
            let mut sq = 0.0f32;
            for n in 0..batch {
                let p = &input.data()[(n * c + ch) * plane..(n * c + ch + 1) * plane];
                sq += sum4(p, |v| {
                    let d = v - mean;
                    d * d
                });
            }
            let var = (sq / n_per_c).max(0.0);
            let inv_std = 1.0 / (var + EPS).sqrt();
            means[ch] = mean;
            inv_stds[ch] = inv_std;
            for n in 0..batch {
                let src = &input.data()[(n * c + ch) * plane..(n * c + ch + 1) * plane];
                let dst_range = (n * c + ch) * plane..(n * c + ch + 1) * plane;
                let dst = &mut out.data_mut()[dst_range];
                for (o, &v) in dst.iter_mut().zip(src) {
                    *o = gamma[ch] * (v - mean) * inv_std + beta[ch];
                }
            }
        }
        if train {
            slot.recycle_tensors_into(ws);
            stash_copy(slot, ws, input);
            // Move the statistics buffers into the slot (no copy).
            slot.tensors.push(Tensor::from_vec(Shape::vector(c), means));
            slot.tensors
                .push(Tensor::from_vec(Shape::vector(c), inv_stds));
        } else {
            ws.give(means);
            ws.give(inv_stds);
        }
        out
    }

    fn backward(
        &self,
        params: &[f32],
        grad_params: &mut [f32],
        grad_output: &Tensor,
        slot: &Slot,
        ws: &mut Workspace,
    ) -> Tensor {
        let input = &slot.tensors[0];
        let means = slot.tensors[1].data();
        let inv_stds = slot.tensors[2].data();
        let dims = input.shape().dims();
        let batch = dims[0];
        let c = self.channels;
        let plane: usize = dims[2..].iter().product::<usize>().max(1);
        let n_per_c = (batch * plane) as f32;
        let (gamma, _) = params.split_at(c);
        let (g_gamma, g_beta) = grad_params.split_at_mut(c);
        let mut grad_in = ws.take_tensor(input.shape().clone());
        for ch in 0..c {
            let mean = means[ch];
            let inv_std = inv_stds[ch];
            // Accumulate the three reductions the BN backward needs.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for n in 0..batch {
                let x = &input.data()[(n * c + ch) * plane..(n * c + ch + 1) * plane];
                let dy = &grad_output.data()[(n * c + ch) * plane..(n * c + ch + 1) * plane];
                sum_dy += sum4(dy, |v| v);
                let mut acc = [0.0f32; 4];
                let xc = x.chunks_exact(4);
                let dc = dy.chunks_exact(4);
                for (xs, ds) in xc.clone().zip(dc.clone()) {
                    for i in 0..4 {
                        acc[i] += ds[i] * (xs[i] - mean) * inv_std;
                    }
                }
                for (i, (&xv, &dv)) in xc.remainder().iter().zip(dc.remainder()).enumerate() {
                    acc[i] += dv * (xv - mean) * inv_std;
                }
                sum_dy_xhat += (acc[0] + acc[1]) + (acc[2] + acc[3]);
            }
            g_gamma[ch] += sum_dy_xhat;
            g_beta[ch] += sum_dy;
            // dX = gamma*inv_std/N * (N*dY - sum(dY) - xhat * sum(dY*xhat))
            let scale = gamma[ch] * inv_std / n_per_c;
            for n in 0..batch {
                let x = &input.data()[(n * c + ch) * plane..(n * c + ch + 1) * plane];
                let dy = &grad_output.data()[(n * c + ch) * plane..(n * c + ch + 1) * plane];
                let dst_range = (n * c + ch) * plane..(n * c + ch + 1) * plane;
                let dst = &mut grad_in.data_mut()[dst_range];
                for ((o, &xv), &dv) in dst.iter_mut().zip(x).zip(dy) {
                    let xhat = (xv - mean) * inv_std;
                    *o = scale * (n_per_c * dv - sum_dy - xhat * sum_dy_xhat);
                }
            }
        }
        grad_in
    }

    fn flops_per_sample(&self, input: &Shape) -> u64 {
        8 * input.len() as u64
    }

    fn scratch_len(&self, input: &Shape, batch: usize) -> usize {
        // Stashed input copy plus the per-channel statistics vectors.
        batch * input.len() + 2 * self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck::check_layer;

    #[test]
    fn output_is_normalised_per_channel() {
        let layer = ChannelNorm::new(2);
        let mut params = vec![0.0; 4];
        let mut rng = Rng::new(1);
        layer.init(&mut params, &mut rng);
        let x = Tensor::randn([4, 2, 3, 3], 5.0, &mut rng);
        let mut slot = Slot::default();
        let mut ws = Workspace::new();
        let y = layer.forward(&params, &x, &mut slot, &mut ws, true);
        // With gamma=1, beta=0 each channel has ~zero mean, unit variance.
        for ch in 0..2 {
            let mut vals = Vec::new();
            for n in 0..4 {
                let base = (n * 2 + ch) * 9;
                vals.extend_from_slice(&y.data()[base..base + 9]);
            }
            let mean = vals.iter().sum::<f32>() / vals.len() as f32;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ch} var {var}");
        }
    }

    #[test]
    fn gamma_beta_apply_affine() {
        let layer = ChannelNorm::new(1);
        let params = vec![2.0, 3.0]; // gamma=2, beta=3
        let mut rng = Rng::new(2);
        let x = Tensor::randn([8, 1, 2, 2], 1.0, &mut rng);
        let mut slot = Slot::default();
        let mut ws = Workspace::new();
        let y = layer.forward(&params, &x, &mut slot, &mut ws, true);
        let mean = y.mean();
        assert!((mean - 3.0).abs() < 1e-4, "shifted mean {mean}");
    }

    #[test]
    fn gradcheck() {
        check_layer(&ChannelNorm::new(3), &[3, 3, 3], 4, 51);
    }

    #[test]
    fn gradcheck_vector_input() {
        // Norm over dense features: per-sample shape [c] treated as
        // [c] with plane=1.
        check_layer(&ChannelNorm::new(5), &[5], 6, 52);
    }

    #[test]
    fn constant_input_does_not_blow_up() {
        let layer = ChannelNorm::new(1);
        let params = vec![1.0, 0.0];
        let x = Tensor::full([4, 1, 2, 2], 7.0);
        let mut slot = Slot::default();
        let mut ws = Workspace::new();
        let y = layer.forward(&params, &x, &mut slot, &mut ws, true);
        assert!(y.is_finite());
        assert!(y.max_abs() < 1e-2, "zero-variance input normalises to ~0");
    }
}
