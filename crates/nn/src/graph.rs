//! Operator-graph export for the memory planner.
//!
//! CROSSBOW "devises an offline memory plan to reuse the output buffers of
//! operators using reference counters" (§4.5): during initialisation it
//! walks the operators of a learning task and reuses an output buffer
//! whenever its reference count has dropped to zero. The planner itself
//! lives in the `crossbow` crate; this module exports the dependency
//! structure it walks — one forward node per layer plus one backward node
//! per layer, with the data dependencies of back-propagation:
//!
//! * forward node `i` reads forward node `i-1`'s output;
//! * backward node for layer `i` reads the *saved activation* (forward
//!   node `i-1`'s output) and the upstream gradient (backward node `i+1`'s
//!   output).
//!
//! The long liveness of forward activations until their backward consumer
//! is exactly why the paper reports that "outputs are mostly reused during
//! the backwards phase".

use crate::network::Network;

/// One operator in a learning task.
#[derive(Clone, Debug)]
pub struct OpNode {
    /// Layer name plus direction, e.g. `conv2d.fwd`.
    pub name: String,
    /// Bytes of the operator's output buffer for the given batch size.
    pub output_bytes: usize,
    /// Indices of ops whose output buffers this op reads.
    pub inputs: Vec<usize>,
}

/// The operator graph of one learning task, in execution order.
#[derive(Clone, Debug)]
pub struct OpGraph {
    /// Operators in execution order (forwards, then backwards reversed).
    pub ops: Vec<OpNode>,
    /// Number of forward operators (the prefix of `ops`).
    pub forward_count: usize,
}

impl OpGraph {
    /// Builds the graph for a network at a given batch size.
    ///
    /// # Panics
    /// Panics if `batch == 0`.
    pub fn from_network(net: &Network, batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        let n = net.layers().len();
        let bytes_of = |shape_idx: usize| net.shape_at(shape_idx).len() * batch * 4;
        let mut ops = Vec::with_capacity(2 * n);
        // Forward: op i consumes op i-1 (the first consumes the input
        // batch, which the planner treats as externally owned).
        for (i, layer) in net.layers().iter().enumerate() {
            ops.push(OpNode {
                name: format!("{}.fwd", layer.name()),
                output_bytes: bytes_of(i + 1),
                inputs: if i == 0 { vec![] } else { vec![i - 1] },
            });
        }
        // Backward: executed for layers n-1 .. 0. The op for layer i sits
        // at index n + (n-1-i).
        for (rev, i) in (0..n).rev().enumerate() {
            let mut inputs = Vec::with_capacity(2);
            if i > 0 {
                inputs.push(i - 1); // saved activation entering layer i
            }
            if rev > 0 {
                inputs.push(n + rev - 1); // upstream gradient
            } else {
                inputs.push(n - 1); // loss gradient comes from the logits
            }
            ops.push(OpNode {
                name: format!("{}.bwd", net.layers()[i].name()),
                output_bytes: bytes_of(i), // gradient w.r.t. the layer input
                inputs,
            });
        }
        OpGraph {
            ops,
            forward_count: n,
        }
    }

    /// Sum of all output buffer sizes — the footprint *without* any reuse.
    pub fn total_output_bytes(&self) -> usize {
        self.ops.iter().map(|o| o.output_bytes).sum()
    }

    /// How many ops read op `i`'s output.
    pub fn consumer_count(&self, i: usize) -> usize {
        self.ops.iter().filter(|o| o.inputs.contains(&i)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Relu};
    use crate::network::Network;

    fn net() -> Network {
        Network::builder([4])
            .add(Dense::new(4, 8))
            .add(Relu)
            .add(Dense::new(8, 3))
            .build()
    }

    #[test]
    fn graph_has_forward_and_backward_nodes() {
        let g = OpGraph::from_network(&net(), 2);
        assert_eq!(g.ops.len(), 6);
        assert_eq!(g.forward_count, 3);
        assert_eq!(g.ops[0].name, "dense.fwd");
        assert_eq!(g.ops[3].name, "dense.bwd"); // last layer's backward first
        assert_eq!(g.ops[5].name, "dense.bwd");
        assert_eq!(g.ops[4].name, "relu.bwd");
    }

    #[test]
    fn forward_chain_dependencies() {
        let g = OpGraph::from_network(&net(), 2);
        assert!(g.ops[0].inputs.is_empty());
        assert_eq!(g.ops[1].inputs, vec![0]);
        assert_eq!(g.ops[2].inputs, vec![1]);
    }

    #[test]
    fn backward_reads_saved_activations() {
        let g = OpGraph::from_network(&net(), 2);
        // Backward of layer 2 (first backward op, index 3) reads the
        // activation entering layer 2 (op 1's output) and the logits
        // gradient (op 2).
        assert_eq!(g.ops[3].inputs, vec![1, 2]);
        // Backward of layer 1 (index 4) reads op 0 and backward op 3.
        assert_eq!(g.ops[4].inputs, vec![0, 3]);
        // Backward of layer 0 (index 5) reads only the upstream gradient.
        assert_eq!(g.ops[5].inputs, vec![4]);
    }

    #[test]
    fn output_bytes_scale_with_batch() {
        let g1 = OpGraph::from_network(&net(), 1);
        let g4 = OpGraph::from_network(&net(), 4);
        assert_eq!(g4.total_output_bytes(), 4 * g1.total_output_bytes());
        // Layer 0 output: 8 floats * batch 1 * 4 bytes.
        assert_eq!(g1.ops[0].output_bytes, 32);
    }

    #[test]
    fn consumer_counts() {
        let g = OpGraph::from_network(&net(), 1);
        // Op 0's output is read by fwd op 1 and bwd of layer 1 (op 4).
        assert_eq!(g.consumer_count(0), 2);
        // The final backward output is read by nobody.
        assert_eq!(g.consumer_count(5), 0);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_rejected() {
        let _ = OpGraph::from_network(&net(), 0);
    }
}
