//! Quantized inference-only models.
//!
//! A [`QuantizedModel`] is built once from a trained `f32` parameter
//! vector (at snapshot-export time) and then served read-only. Training
//! never sees it.
//!
//! * **f32** — a plain copy of the parameters; serving is exactly
//!   [`Network::forward_eval`].
//! * **bf16** — parameters round-trip through bfloat16 at build time;
//!   serving runs the unchanged `f32` compute path on the decoded
//!   values, so the only difference from f32 serving is the 8-bit
//!   mantissa of every weight.
//! * **int8** — every [`crate::layer::Dense`] layer's weight matrix is quantized per
//!   output channel and served through the exact-integer kernel in
//!   [`crossbow_tensor::quant`]; biases and every non-dense layer stay
//!   `f32`. The effective `f32` parameter vector (dense weights
//!   *dequantized*) is kept alongside so mixed layers slice one
//!   contiguous vector, same as the training path.
//!
//! Serving through a `QuantizedModel` is deterministic: the int8 kernel
//! is bit-identical across kernel tiers and thread counts (integer
//! accumulation is exact), and the f32/bf16 paths inherit the GEMM
//! determinism contract.

use crate::loss::accuracy;
use crate::network::{Network, Scratch};
use crossbow_tensor::quant::{bf16_decode, bf16_encode, PackedQuantLinear, QuantLinear};
use crossbow_tensor::{Precision, Shape, Tensor};

/// One dense layer's quantized weights: the row-major storage form
/// (what the snapshot codec writes) plus the packed runtime form.
#[derive(Clone, Debug)]
pub struct QuantDense {
    /// Storage form: per-channel scales + row-major `i8` weights.
    pub lin: QuantLinear,
    packed: PackedQuantLinear,
}

impl QuantDense {
    fn new(lin: QuantLinear) -> QuantDense {
        let packed = PackedQuantLinear::new(&lin);
        QuantDense { lin, packed }
    }
}

/// An inference-only model at a chosen serving precision.
#[derive(Clone, Debug)]
pub struct QuantizedModel {
    precision: Precision,
    /// Effective full-length `f32` parameters: dense weight regions hold
    /// *dequantized* values under int8, so non-dense layers and biases
    /// slice it exactly like the training parameter vector.
    params: Vec<f32>,
    /// Per-layer quantized dense weights (`None` off the int8 path and
    /// for non-dense layers).
    dense: Vec<Option<QuantDense>>,
}

impl QuantizedModel {
    /// Serving precision this model was built at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The effective `f32` parameter vector (dense regions dequantized
    /// under int8).
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Per-layer quantized dense weights, indexed like
    /// [`Network::layers`].
    pub fn dense_layers(&self) -> &[Option<QuantDense>] {
        &self.dense
    }

    /// Approximate serialized payload bytes at this precision (what the
    /// quantized snapshot stores for the weights; headers excluded).
    pub fn payload_bytes(&self) -> usize {
        match self.precision {
            Precision::F32 => self.params.len() * 4,
            Precision::Bf16 => self.params.len() * 2,
            Precision::Int8 => {
                let quantized: usize = self
                    .dense
                    .iter()
                    .flatten()
                    .map(|qd| qd.lin.q.len() + qd.lin.scales.len() * 4)
                    .sum();
                let dense_f32: usize = self.dense.iter().flatten().map(|qd| qd.lin.q.len()).sum();
                quantized + (self.params.len() - dense_f32) * 4
            }
        }
    }
}

impl Network {
    /// Builds a [`QuantizedModel`] from trained parameters at the given
    /// precision. This is the only constructor used at export time; the
    /// snapshot loader reassembles via [`Network::requantized`] so the
    /// served bytes survive the disk round trip unchanged.
    ///
    /// # Panics
    /// Panics if `params` does not match the network.
    pub fn quantize(&self, params: &[f32], precision: Precision) -> QuantizedModel {
        assert_eq!(params.len(), self.param_len(), "parameter vector mismatch");
        match precision {
            Precision::F32 => QuantizedModel {
                precision,
                params: params.to_vec(),
                dense: vec![None; self.layers().len()],
            },
            Precision::Bf16 => QuantizedModel {
                precision,
                params: params
                    .iter()
                    .map(|&p| bf16_decode(bf16_encode(p)))
                    .collect(),
                dense: vec![None; self.layers().len()],
            },
            Precision::Int8 => {
                let lins = self
                    .layers()
                    .iter()
                    .enumerate()
                    .map(|(i, layer)| {
                        layer.as_dense().map(|d| {
                            let range = self.param_range(i);
                            let w = &params
                                [range.start..range.start + d.in_features() * d.out_features()];
                            QuantLinear::quantize(w, d.out_features(), d.in_features())
                        })
                    })
                    .collect();
                self.requantized(params.to_vec(), lins)
            }
        }
    }

    /// Reassembles an int8 [`QuantizedModel`] from stored parts: the
    /// non-dense `f32` parameters (dense weight regions may hold
    /// anything — they are overwritten with dequantized values) and the
    /// per-layer quantized weights as decoded from a snapshot.
    ///
    /// The loader must use this rather than re-quantizing: `quantize ∘
    /// dequantize` re-derives each channel scale from already-rounded
    /// weights and is *not* the identity, so round-tripping through
    /// [`Network::quantize`] would serve different bytes than the
    /// exporter measured.
    ///
    /// # Panics
    /// Panics if the parts do not match the network's layer stack.
    pub fn requantized(
        &self,
        mut params: Vec<f32>,
        lins: Vec<Option<QuantLinear>>,
    ) -> QuantizedModel {
        assert_eq!(params.len(), self.param_len(), "parameter vector mismatch");
        assert_eq!(lins.len(), self.layers().len(), "one entry per layer");
        let dense: Vec<Option<QuantDense>> = self
            .layers()
            .iter()
            .enumerate()
            .zip(lins)
            .map(|((i, layer), lin)| match (layer.as_dense(), lin) {
                (Some(d), Some(lin)) => {
                    assert_eq!(lin.rows, d.out_features(), "dense rows mismatch");
                    assert_eq!(lin.cols, d.in_features(), "dense cols mismatch");
                    let range = self.param_range(i);
                    lin.dequantize_into(
                        &mut params[range.start..range.start + lin.rows * lin.cols],
                    );
                    Some(QuantDense::new(lin))
                }
                (_, None) => None,
                (None, Some(_)) => panic!("quantized weights for a non-dense layer {i}"),
            })
            .collect();
        QuantizedModel {
            precision: Precision::Int8,
            params,
            dense,
        }
    }

    /// Inference-mode forward through a quantized model, returning
    /// `[batch, classes]` logits. f32/bf16 models run the unchanged
    /// `f32` path on the effective parameters; int8 models swap each
    /// dense layer's matrix product for the exact-integer kernel.
    ///
    /// # Panics
    /// Panics if the model or batch shape does not match the network.
    pub fn forward_eval_quant(
        &self,
        model: &QuantizedModel,
        batch: &Tensor,
        scratch: &mut Scratch,
    ) -> Tensor {
        assert_eq!(
            model.params.len(),
            self.param_len(),
            "quantized model from a different network"
        );
        if model.precision != Precision::Int8 {
            return self.forward_eval(&model.params, batch, scratch);
        }
        assert_eq!(
            scratch.slots.len(),
            self.layers().len(),
            "scratch from a different network"
        );
        let mut x = scratch.ws.take_tensor(batch.shape().clone());
        x.copy_from(batch);
        for (i, layer) in self.layers().iter().enumerate() {
            let range = self.param_range(i);
            let y = match &model.dense[i] {
                Some(qd) => {
                    let (in_f, out_f) = (qd.packed.cols(), qd.packed.rows());
                    let b = x.len() / in_f;
                    let bias = &model.params[range.start + in_f * out_f..range.end];
                    let mut out = scratch.ws.take_tensor([b, out_f]);
                    qd.packed
                        .forward_batch(x.data(), &mut scratch.quant_xq, out.data_mut());
                    for yrow in out.data_mut().chunks_exact_mut(out_f) {
                        for (o, &bv) in yrow.iter_mut().zip(bias) {
                            *o += bv;
                        }
                    }
                    out
                }
                None => layer.forward(
                    &model.params[range],
                    &x,
                    &mut scratch.slots[i],
                    &mut scratch.ws,
                    false,
                ),
            };
            scratch.ws.recycle(std::mem::replace(&mut x, y));
        }
        let b = x.len() / self.output_classes();
        x.reshape([b, self.output_classes()])
    }

    /// Quantized-model forward returning the argmax class per sample.
    pub fn predict_quant(
        &self,
        model: &QuantizedModel,
        batch: &Tensor,
        scratch: &mut Scratch,
    ) -> Vec<usize> {
        let logits = self.forward_eval_quant(model, batch, scratch);
        let classes = self.output_classes();
        let out = logits
            .data()
            .chunks_exact(classes)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map_or(0, |(c, _)| c)
            })
            .collect();
        scratch.ws.recycle(logits);
        out
    }

    /// Evaluates a quantized model's accuracy over a labelled set, in
    /// chunks of `batch_size` — the quantized counterpart of
    /// [`Network::evaluate`], used to measure the accuracy delta a
    /// precision costs before publishing it.
    pub fn evaluate_quant(
        &self,
        model: &QuantizedModel,
        images: &Tensor,
        labels: &[usize],
        batch_size: usize,
    ) -> f64 {
        assert!(batch_size > 0, "batch_size must be positive");
        let sample_len = self.input_shape().len();
        let n = labels.len();
        assert_eq!(images.len(), n * sample_len, "images/labels mismatch");
        if n == 0 {
            return 0.0;
        }
        let mut scratch = self.scratch();
        let mut correct = 0.0f64;
        let mut start = 0usize;
        while start < n {
            let end = (start + batch_size).min(n);
            let mut dims = vec![end - start];
            dims.extend_from_slice(self.input_shape().dims());
            let chunk = Tensor::from_vec(
                Shape::new(&dims),
                images.data()[start * sample_len..end * sample_len].to_vec(),
            );
            let logits = self.forward_eval_quant(model, &chunk, &mut scratch);
            correct += accuracy(&logits, &labels[start..end]) * (end - start) as f64;
            scratch.ws.recycle(logits);
            start = end;
        }
        correct / n as f64
    }
}

/// The accuracy a quantized model gains (+) or loses (−) against its
/// `f32` source on a labelled eval set: `quant − f32`, both measured
/// with the same chunking.
pub fn accuracy_delta(
    net: &Network,
    params: &[f32],
    model: &QuantizedModel,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> f32 {
    let base = net.evaluate(params, images, labels, batch_size);
    let quant = net.evaluate_quant(model, images, labels, batch_size);
    (quant - base) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Relu};
    use crossbow_tensor::gemm::{with_kernel, GemmKernel};
    use crossbow_tensor::Rng;

    fn tiny_net() -> Network {
        Network::builder([4])
            .add(Dense::new(4, 8))
            .add(Relu)
            .add(Dense::new(8, 3))
            .build()
    }

    #[test]
    fn f32_model_serves_identical_bytes() {
        let net = tiny_net();
        let mut rng = Rng::new(31);
        let params = net.init_params(&mut rng);
        let model = net.quantize(&params, Precision::F32);
        let batch = Tensor::randn([5, 4], 1.0, &mut rng);
        let mut scratch = net.scratch();
        let base = net.forward_eval(&params, &batch, &mut scratch);
        let quant = net.forward_eval_quant(&model, &batch, &mut scratch);
        assert_eq!(base.data(), quant.data());
        assert_eq!(model.payload_bytes(), params.len() * 4);
    }

    #[test]
    fn bf16_model_is_the_f32_path_on_rounded_weights() {
        let net = tiny_net();
        let mut rng = Rng::new(32);
        let params = net.init_params(&mut rng);
        let model = net.quantize(&params, Precision::Bf16);
        // The effective params are the bf16 round trip of the originals.
        for (&p, &q) in params.iter().zip(model.params()) {
            assert_eq!(bf16_decode(bf16_encode(p)), q);
        }
        let batch = Tensor::randn([5, 4], 1.0, &mut rng);
        let mut scratch = net.scratch();
        let via_model = net.forward_eval_quant(&model, &batch, &mut scratch);
        let via_params = net.forward_eval(model.params(), &batch, &mut scratch);
        assert_eq!(via_model.data(), via_params.data());
        assert_eq!(model.payload_bytes(), params.len() * 2);
    }

    #[test]
    fn int8_model_quantizes_dense_layers_only() {
        let net = tiny_net();
        let mut rng = Rng::new(33);
        let params = net.init_params(&mut rng);
        let model = net.quantize(&params, Precision::Int8);
        let dense: Vec<bool> = model.dense_layers().iter().map(|d| d.is_some()).collect();
        assert_eq!(dense, vec![true, false, true], "dense, relu, dense");
        // Biases stay exact f32.
        let r = net.param_range(2);
        assert_eq!(
            &params[r.start + 24..r.end],
            &model.params()[r.start + 24..r.end]
        );
        assert!(model.payload_bytes() < params.len() * 4);
    }

    #[test]
    fn int8_forward_is_bit_identical_across_kernels() {
        let net = tiny_net();
        let mut rng = Rng::new(34);
        let params = net.init_params(&mut rng);
        let model = net.quantize(&params, Precision::Int8);
        let batch = Tensor::randn([7, 4], 1.0, &mut rng);
        let runs: Vec<Vec<f32>> = GemmKernel::all()
            .into_iter()
            .filter(|k| k.supported())
            .map(|kernel| {
                with_kernel(kernel, || {
                    let mut scratch = net.scratch();
                    net.forward_eval_quant(&model, &batch, &mut scratch)
                        .data()
                        .to_vec()
                })
            })
            .collect();
        for run in &runs[1..] {
            assert_eq!(&runs[0], run, "int8 forward must not depend on the kernel");
        }
    }

    #[test]
    fn int8_predictions_track_f32_on_separated_data() {
        // Class prototypes far apart: quantization noise (<1% per weight)
        // cannot flip an argmax, so quantized and f32 predictions agree.
        let net = Network::builder([4]).add(Dense::new(4, 4)).build();
        let mut params = vec![0.0f32; net.param_len()];
        for c in 0..4 {
            params[c * 4 + c] = 1.0; // W = I
        }
        let model = net.quantize(&params, Precision::Int8);
        let mut rng = Rng::new(35);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for s in 0..40 {
            let c = s % 4;
            labels.push(c);
            for f in 0..4 {
                let centre = if f == c { 3.0 } else { -3.0 };
                data.push(centre + 0.3 * rng.normal());
            }
        }
        let images = Tensor::from_vec([40, 4], data);
        let mut scratch = net.scratch();
        let base = net.predict(&params, &images, &mut scratch);
        let quant = net.predict_quant(&model, &images, &mut scratch);
        assert_eq!(base, quant);
        assert_eq!(
            accuracy_delta(&net, &params, &model, &images, &labels, 16),
            0.0
        );
        assert_eq!(net.evaluate_quant(&model, &images, &labels, 16), 1.0);
    }

    #[test]
    fn requantized_serves_the_exported_bytes() {
        let net = tiny_net();
        let mut rng = Rng::new(36);
        let params = net.init_params(&mut rng);
        let exported = net.quantize(&params, Precision::Int8);
        // Simulate the snapshot round trip: stored parts in, same bytes out.
        let lins = exported
            .dense_layers()
            .iter()
            .map(|d| d.as_ref().map(|qd| qd.lin.clone()))
            .collect();
        let loaded = net.requantized(exported.params().to_vec(), lins);
        let batch = Tensor::randn([6, 4], 1.0, &mut rng);
        let mut scratch = net.scratch();
        let a = net.forward_eval_quant(&exported, &batch, &mut scratch);
        let b = net.forward_eval_quant(&loaded, &batch, &mut scratch);
        assert_eq!(a.data(), b.data());
        assert_eq!(exported.params(), loaded.params());
    }

    #[test]
    fn quant_eval_leaves_no_backward_state() {
        let net = tiny_net();
        let mut rng = Rng::new(37);
        let params = net.init_params(&mut rng);
        let model = net.quantize(&params, Precision::Int8);
        let batch = Tensor::randn([3, 4], 1.0, &mut rng);
        let mut scratch = net.scratch();
        let _ = net.forward_eval_quant(&model, &batch, &mut scratch);
        assert!(scratch.slots.iter().all(|s| s.tensors.is_empty()));
    }
}
