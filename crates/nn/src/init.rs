//! Weight initialisers.
//!
//! The paper configures CROSSBOW and TensorFlow with "the same model
//! variable initialisation" (§5.1); here that means seeded He or Xavier
//! initialisation, so two systems given the same seed start from identical
//! weights.

use crossbow_tensor::Rng;

/// Initialisation scheme for a weight tensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Init {
    /// He/Kaiming normal: `N(0, sqrt(2 / fan_in))`. The right choice in
    /// front of ReLU activations (convolutions, ResNet/VGG dense layers).
    HeNormal,
    /// Xavier/Glorot uniform: `U[-a, a]` with `a = sqrt(6 / (fan_in +
    /// fan_out))`. Used for tanh/linear heads.
    XavierUniform,
    /// All zeros (biases, batch-norm shifts).
    Zeros,
    /// All ones (batch-norm scales).
    Ones,
}

impl Init {
    /// Fills `out` according to the scheme and the layer's fan-in/out.
    pub fn fill(self, out: &mut [f32], fan_in: usize, fan_out: usize, rng: &mut Rng) {
        match self {
            Init::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                for v in out.iter_mut() {
                    *v = rng.normal() * std;
                }
            }
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                for v in out.iter_mut() {
                    *v = rng.uniform(-a, a);
                }
            }
            Init::Zeros => out.iter_mut().for_each(|v| *v = 0.0),
            Init::Ones => out.iter_mut().for_each(|v| *v = 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_normal_scale_tracks_fan_in() {
        let mut rng = Rng::new(1);
        let mut small = vec![0.0; 10_000];
        let mut large = vec![0.0; 10_000];
        Init::HeNormal.fill(&mut small, 10, 10, &mut rng);
        Init::HeNormal.fill(&mut large, 1000, 10, &mut rng);
        let std = |v: &[f32]| {
            let m = v.iter().sum::<f32>() / v.len() as f32;
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / v.len() as f32).sqrt()
        };
        let (s, l) = (std(&small), std(&large));
        assert!((s - (2.0f32 / 10.0).sqrt()).abs() < 0.02, "std {s}");
        assert!((l - (2.0f32 / 1000.0).sqrt()).abs() < 0.005, "std {l}");
    }

    #[test]
    fn xavier_uniform_stays_in_bounds() {
        let mut rng = Rng::new(2);
        let mut w = vec![0.0; 1000];
        Init::XavierUniform.fill(&mut w, 30, 30, &mut rng);
        let a = (6.0f32 / 60.0).sqrt();
        assert!(w.iter().all(|&v| v >= -a && v < a));
        assert!(w.iter().any(|&v| v.abs() > a * 0.5), "should spread out");
    }

    #[test]
    fn constant_inits() {
        let mut rng = Rng::new(3);
        let mut z = vec![9.0; 4];
        Init::Zeros.fill(&mut z, 1, 1, &mut rng);
        assert_eq!(z, vec![0.0; 4]);
        let mut o = vec![9.0; 4];
        Init::Ones.fill(&mut o, 1, 1, &mut rng);
        assert_eq!(o, vec![1.0; 4]);
    }

    #[test]
    fn deterministic_given_seed() {
        let fill = |seed| {
            let mut rng = Rng::new(seed);
            let mut w = vec![0.0; 32];
            Init::HeNormal.fill(&mut w, 8, 8, &mut rng);
            w
        };
        assert_eq!(fill(5), fill(5));
        assert_ne!(fill(5), fill(6));
    }
}
