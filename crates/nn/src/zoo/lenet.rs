//! LeNet (LeCun et al. \[33\]) — the paper's small MNIST benchmark.

use crate::layer::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use crate::network::Network;
use crossbow_tensor::conv::conv_out;

/// Builds a LeNet-5-style network for `in_c x hw x hw` inputs:
/// `conv5x5(6) -> pool -> conv5x5(16) -> pool -> fc120 -> fc84 -> classes`
/// (ReLU activations; the first convolution pads so any `hw >= 12` works).
///
/// # Panics
/// Panics if `hw < 12` (the second conv/pool pair would not fit).
pub fn lenet(in_c: usize, hw: usize, classes: usize) -> Network {
    assert!(hw >= 12, "lenet needs inputs of at least 12x12, got {hw}");
    // Track spatial size through the stack to size the dense head.
    let after_pool1 = conv_out(hw, 2, 2, 0); // conv1 is "same"
    let after_conv2 = conv_out(after_pool1, 5, 1, 0);
    let after_pool2 = conv_out(after_conv2, 2, 2, 0);
    let flat = 16 * after_pool2 * after_pool2;
    Network::builder([in_c, hw, hw])
        .add(Conv2d::new(in_c, 6, 5, 1, 2))
        .add(Relu)
        .add(MaxPool2d::halving())
        .add(Conv2d::new(6, 16, 5, 1, 0))
        .add(Relu)
        .add(MaxPool2d::halving())
        .add(Flatten)
        .add(Dense::new(flat, 120))
        .add(Relu)
        .add(Dense::new(120, 84))
        .add(Relu)
        .add(Dense::new(84, classes).with_xavier())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::zoo_tests::smoke;

    #[test]
    fn classic_28x28_geometry() {
        // 28 -> pool 14 -> conv5 10 -> pool 5 -> flatten 16*25 = 400,
        // matching the original LeNet-5 head.
        let net = lenet(1, 28, 10);
        assert_eq!(net.output_classes(), 10);
        smoke(&net, 2, 81);
    }

    #[test]
    fn compact_16x16_geometry() {
        // 16 -> 8 -> 4 -> 2: flatten 64.
        let net = lenet(1, 16, 10);
        smoke(&net, 3, 82);
    }

    #[test]
    #[should_panic(expected = "at least 12x12")]
    fn too_small_input_rejected() {
        let _ = lenet(1, 8, 10);
    }

    #[test]
    fn parameter_count_is_lenet_scale() {
        let net = lenet(1, 28, 10);
        // Original LeNet-5 has ~61k parameters.
        let p = net.param_len();
        assert!((50_000..80_000).contains(&p), "got {p}");
    }
}
