//! VGG (Simonyan & Zisserman) — the paper's shallow, high-dimension
//! benchmark (VGG-16 on CIFAR-100, following \[61\]).

use crate::layer::{ChannelNorm, Conv2d, Dense, Flatten, MaxPool2d, Relu};
use crate::network::Network;

/// Builds a VGG-style network: for each entry `w` in `stage_widths`, a
/// `conv3x3(w) -> norm -> relu -> conv3x3(w) -> norm -> relu -> pool`
/// stage, followed by a `fc(head) -> relu -> fc(classes)` classifier.
///
/// # Panics
/// Panics if the input resolution cannot survive one halving per stage, or
/// any size is zero.
pub fn vgg(stage_widths: &[usize], head: usize, in_c: usize, hw: usize, classes: usize) -> Network {
    assert!(!stage_widths.is_empty(), "vgg needs at least one stage");
    assert!(head > 0 && classes > 0, "zero-sized vgg head");
    assert!(
        hw >= 1 << stage_widths.len(),
        "{hw}x{hw} input cannot be pooled {} times",
        stage_widths.len()
    );
    let mut b = Network::builder([in_c, hw, hw]);
    let mut c_in = in_c;
    let mut res = hw;
    for &w in stage_widths {
        assert!(w > 0, "zero-width stage");
        b = b
            .add(Conv2d::same3x3(c_in, w))
            .add(ChannelNorm::new(w))
            .add(Relu)
            .add(Conv2d::same3x3(w, w))
            .add(ChannelNorm::new(w))
            .add(Relu)
            .add(MaxPool2d::halving());
        c_in = w;
        res /= 2;
    }
    let flat = c_in * res * res;
    b.add(Flatten)
        .add(Dense::new(flat, head))
        .add(Relu)
        .add(Dense::new(head, classes).with_xavier())
        .build()
}

/// The reduced VGG used for real CPU training: three two-conv stages of
/// widths 8/16/32 and a 64-unit head. Same conv-conv-pool family shape as
/// VGG-16, orders of magnitude fewer FLOPs.
pub fn vgg_small(in_c: usize, hw: usize, classes: usize) -> Network {
    vgg(&[8, 16, 32], 64, in_c, hw, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::zoo_tests::smoke;

    #[test]
    fn stage_count_matches_widths() {
        let net = vgg(&[4, 8], 16, 3, 16, 10);
        // 2 stages x 7 layers + flatten + 3 head layers = 18.
        assert_eq!(net.layers().len(), 18);
        assert_eq!(net.output_classes(), 10);
    }

    #[test]
    fn resolution_halves_per_stage() {
        let net = vgg(&[4, 8, 16], 32, 3, 16, 10);
        let flatten_idx = net
            .layers()
            .iter()
            .position(|l| l.name() == "flatten")
            .unwrap();
        assert_eq!(net.shape_at(flatten_idx).dims(), &[16, 2, 2]);
    }

    #[test]
    fn smoke_small() {
        smoke(&vgg_small(3, 16, 10), 2, 101);
    }

    #[test]
    #[should_panic(expected = "cannot be pooled")]
    fn too_many_stages_rejected() {
        let _ = vgg(&[4, 8, 16, 32], 16, 3, 8, 10);
    }
}
