//! The model zoo: the paper's four benchmark families (Table 1) in
//! CPU-trainable form.
//!
//! *Substitution note.* The statistical-efficiency experiments really train
//! these networks with real gradients, so they must converge in seconds on
//! a CPU. We therefore keep each family's *topology* — LeNet's
//! conv/pool/dense sandwich, ResNet's residual stages with strided
//! transitions, VGG's conv-conv-pool stacks — but expose width/depth knobs
//! and default to reduced sizes matched to the synthetic datasets in
//! `crossbow-data`. The *full-size* cost parameters used by the GPU
//! simulator live in [`crate::profile`] and are taken from Table 1
//! unchanged.

pub mod lenet;
pub mod mlp;
pub mod resnet;
pub mod vgg;

pub use lenet::lenet;
pub use mlp::mlp;
pub use resnet::{resnet, resnet_bottleneck, resnet_small};
pub use vgg::{vgg, vgg_small};

#[cfg(test)]
pub(crate) mod zoo_tests {
    use crate::network::Network;
    use crossbow_tensor::{Rng, Tensor};

    /// Shared smoke test: init, forward, backward run and produce finite
    /// values of the right shapes.
    pub(crate) fn smoke(net: &Network, batch: usize, seed: u64) {
        let mut rng = Rng::new(seed);
        let params = net.init_params(&mut rng);
        assert_eq!(params.len(), net.param_len());
        let mut dims = vec![batch];
        dims.extend_from_slice(net.input_shape().dims());
        let images = Tensor::randn(crossbow_tensor::Shape::new(&dims), 1.0, &mut rng);
        let labels: Vec<usize> = (0..batch).map(|i| i % net.output_classes()).collect();
        let mut grad = vec![0.0f32; net.param_len()];
        let mut scratch = net.scratch();
        let (loss, acc) = net.loss_and_grad(&params, &images, &labels, &mut grad, &mut scratch);
        assert!(loss.is_finite() && loss > 0.0, "loss {loss}");
        assert!((0.0..=1.0).contains(&acc));
        assert!(grad.iter().all(|g| g.is_finite()));
        assert!(
            grad.iter().any(|&g| g != 0.0),
            "gradient must not vanish identically"
        );
    }
}
