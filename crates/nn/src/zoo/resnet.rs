//! CIFAR-style ResNets (He et al. \[17\]) — the paper's ResNet-32 and the
//! family ResNet-50 belongs to.
//!
//! The CIFAR ResNet recipe has `6n + 2` layers: a stem convolution, three
//! stages of `n` basic blocks with widths `w, 2w, 4w` (stages 2 and 3
//! starting with a stride-2 transition), global average pooling and a
//! dense classifier. ResNet-32 is `n = 5, w = 16`.

use crate::layer::{ChannelNorm, Conv2d, Dense, GlobalAvgPool, Relu, Residual};
use crate::network::Network;

/// Builds a CIFAR-style ResNet with `n` basic blocks per stage and stem
/// width `w` for `in_c x hw x hw` inputs. Depth = `6n + 2`.
///
/// # Panics
/// Panics if `n == 0`, `w == 0` or `hw < 8` (three stages need two
/// halvings).
pub fn resnet(n: usize, w: usize, in_c: usize, hw: usize, classes: usize) -> Network {
    assert!(n > 0 && w > 0, "resnet needs n, w >= 1");
    assert!(hw >= 8, "resnet needs inputs of at least 8x8, got {hw}");
    let mut b = Network::builder([in_c, hw, hw])
        .add(Conv2d::same3x3(in_c, w))
        .add(ChannelNorm::new(w))
        .add(Relu);
    let widths = [w, 2 * w, 4 * w];
    let mut c_in = w;
    for (stage, &c_out) in widths.iter().enumerate() {
        for block in 0..n {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            b = b.add(Residual::basic_block(c_in, c_out, stride));
            c_in = c_out;
        }
    }
    b.add(GlobalAvgPool)
        .add(Dense::new(4 * w, classes).with_xavier())
        .build()
}

/// The reduced ResNet used for real CPU training in the statistical-
/// efficiency experiments: depth 14 (`n = 2`), width 8. Same family shape
/// as ResNet-32, ~45x fewer FLOPs.
pub fn resnet_small(in_c: usize, hw: usize, classes: usize) -> Network {
    resnet(2, 8, in_c, hw, classes)
}

/// A bottleneck-block ResNet — the ResNet-50 family shape: a stem, then
/// three stages of `n` bottleneck blocks with a 4x channel expansion,
/// global average pooling and a classifier.
///
/// # Panics
/// Panics on zero sizes or inputs too small for two halvings.
pub fn resnet_bottleneck(n: usize, w: usize, in_c: usize, hw: usize, classes: usize) -> Network {
    assert!(n > 0 && w > 0, "resnet needs n, w >= 1");
    assert!(hw >= 8, "resnet needs inputs of at least 8x8, got {hw}");
    let expansion = 4;
    let mut b = Network::builder([in_c, hw, hw])
        .add(Conv2d::same3x3(in_c, w))
        .add(ChannelNorm::new(w))
        .add(Relu);
    let mut c_in = w;
    for stage in 0..3 {
        let c_mid = w << stage;
        let c_out = c_mid * expansion;
        for block in 0..n {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            b = b.add(Residual::bottleneck_block(c_in, c_mid, c_out, stride));
            c_in = c_out;
        }
    }
    b.add(GlobalAvgPool)
        .add(Dense::new(c_in, classes).with_xavier())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::zoo_tests::smoke;

    #[test]
    fn depth_formula_holds() {
        // n = 2 -> 6 blocks; layers() counts composites as one entry:
        // stem (3) + 6 blocks + gap + dense = 11 top-level layers.
        let net = resnet(2, 8, 3, 16, 10);
        assert_eq!(net.layers().len(), 11);
        assert_eq!(net.output_classes(), 10);
    }

    #[test]
    fn stage_transitions_halve_resolution() {
        let net = resnet(1, 4, 3, 16, 10);
        // Shapes: input [3,16,16]; after stem+stage1 [4,16,16]; stage2
        // [8,8,8]; stage3 [16,4,4].
        let n_layers = net.layers().len();
        let before_gap = net.shape_at(n_layers - 2);
        assert_eq!(before_gap.dims(), &[16, 4, 4]);
    }

    #[test]
    fn smoke_small() {
        smoke(&resnet_small(3, 16, 10), 2, 91);
    }

    #[test]
    fn resnet32_configuration_builds() {
        // The real ResNet-32: n = 5, w = 16 on 32x32x3. Build and check
        // the parameter count is ~0.46M (He et al. report 0.46M).
        let net = resnet(5, 16, 3, 32, 10);
        let p = net.param_len();
        assert!((400_000..600_000).contains(&p), "got {p}");
    }

    #[test]
    fn bottleneck_family_builds_and_trains() {
        let net = resnet_bottleneck(1, 4, 3, 16, 10);
        assert_eq!(net.output_classes(), 10);
        smoke(&net, 2, 92);
        // Output of the last stage is 4 * (4 << 2) = 64 channels.
        let n_layers = net.layers().len();
        assert_eq!(net.shape_at(n_layers - 2).dims()[0], 64);
    }

    #[test]
    #[should_panic(expected = "at least 8x8")]
    fn tiny_input_rejected() {
        let _ = resnet(1, 4, 3, 4, 10);
    }
}
