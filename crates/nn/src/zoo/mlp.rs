//! Multi-layer perceptron — not one of the paper's benchmarks, but the
//! fastest-converging model family; property tests and examples use it to
//! exercise the training algorithms cheaply.

use crate::layer::{Dense, Relu};
use crate::network::Network;

/// Builds `input -> hidden[0] -> ... -> classes` with ReLU between dense
/// layers and a Xavier-initialised linear head.
///
/// # Panics
/// Panics on zero sizes.
pub fn mlp(input_len: usize, hidden: &[usize], classes: usize) -> Network {
    assert!(input_len > 0 && classes > 0, "zero-sized mlp");
    let mut b = Network::builder([input_len]);
    let mut width = input_len;
    for &h in hidden {
        b = b.add(Dense::new(width, h)).add(Relu);
        width = h;
    }
    b.add(Dense::new(width, classes).with_xavier()).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::zoo_tests::smoke;

    #[test]
    fn shapes_and_params() {
        let net = mlp(10, &[16, 8], 3);
        assert_eq!(net.output_classes(), 3);
        assert_eq!(net.param_len(), 10 * 16 + 16 + 16 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn no_hidden_layers_is_logistic_regression() {
        let net = mlp(4, &[], 2);
        assert_eq!(net.layers().len(), 1);
        smoke(&net, 4, 71);
    }

    #[test]
    fn smoke_two_hidden() {
        smoke(&mlp(8, &[12, 6], 4), 5, 72);
    }
}
