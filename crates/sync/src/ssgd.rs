//! Parallel synchronous SGD — the TensorFlow-style baseline (§2.3).
//!
//! One logical model; each iteration the aggregate batch is partitioned
//! across `k` learners (each of this crate's "replicas" *is* the same
//! model), the `k` partial gradients are averaged (Eq. 2) and the average
//! is applied with momentum SGD (Eq. 3). After every iteration all
//! replicas are identical by construction — the tight coupling that forces
//! the aggregate batch size to grow with the number of GPUs.

use crate::algorithm::{AlgoSnapshot, SyncAlgorithm};
use crate::optimizer::{Sgd, SgdConfig};

/// Parallel S-SGD over `k` batch partitions.
pub struct SSgd {
    model: Vec<f32>,
    opt: Sgd,
    k: usize,
    grad_buf: Vec<f32>,
}

impl SSgd {
    /// Creates S-SGD from an initial model.
    ///
    /// # Panics
    /// Panics when `k == 0` or the model is empty.
    pub fn new(initial: Vec<f32>, k: usize, config: SgdConfig) -> Self {
        assert!(k > 0, "need at least one learner");
        assert!(!initial.is_empty(), "empty model");
        let len = initial.len();
        SSgd {
            model: initial,
            opt: Sgd::new(len, config),
            k,
            grad_buf: vec![0.0; len],
        }
    }
}

impl SyncAlgorithm for SSgd {
    fn name(&self) -> &'static str {
        "s-sgd"
    }

    fn k(&self) -> usize {
        self.k
    }

    fn param_len(&self) -> usize {
        self.model.len()
    }

    fn replica(&self, j: usize) -> &[f32] {
        assert!(j < self.k, "replica {j} out of range");
        &self.model
    }

    fn step(&mut self, grads: &[Vec<f32>], lr: f32) {
        assert_eq!(grads.len(), self.k, "one gradient per learner");
        // Aggregate: mean of partial gradients (Eq. 2).
        self.grad_buf.iter_mut().for_each(|g| *g = 0.0);
        for g in grads {
            crossbow_tensor::ops::add_assign(&mut self.grad_buf, g);
        }
        crossbow_tensor::ops::scal(1.0 / self.k as f32, &mut self.grad_buf);
        self.opt.step(&mut self.model, &self.grad_buf, lr);
    }

    fn consensus(&self) -> &[f32] {
        &self.model
    }

    /// S-SGD's full state is the model plus the optimiser's momentum
    /// buffer; the latter travels in `aux[0]`. There are no independent
    /// replicas, so `replicas` stays empty and `center_prev` mirrors the
    /// model.
    fn snapshot(&self) -> Option<AlgoSnapshot> {
        Some(AlgoSnapshot {
            center: self.model.clone(),
            center_prev: self.model.clone(),
            replicas: Vec::new(),
            aux: vec![self.opt.velocity().to_vec()],
            iter: 0,
        })
    }

    fn restore(&mut self, snapshot: &AlgoSnapshot) -> bool {
        let len = self.model.len();
        let Some(velocity) = snapshot.aux.first() else {
            return false;
        };
        if snapshot.center.len() != len || velocity.len() != len {
            return false;
        }
        self.model.copy_from_slice(&snapshot.center);
        self.opt.set_velocity(velocity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::replica_spread;

    #[test]
    fn replicas_are_always_identical() {
        let mut s = SSgd::new(vec![1.0, 2.0], 4, SgdConfig::plain());
        s.step(
            &[
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 1.0],
                vec![0.0, 0.0],
            ],
            0.1,
        );
        assert_eq!(replica_spread(&s), 0.0);
        for j in 0..4 {
            assert_eq!(s.replica(j), s.consensus());
        }
    }

    #[test]
    fn step_applies_mean_gradient() {
        let mut s = SSgd::new(vec![0.0], 2, SgdConfig::plain());
        s.step(&[vec![1.0], vec![3.0]], 0.5);
        // mean grad = 2, update = -1.
        assert_eq!(s.consensus(), &[-1.0]);
    }

    #[test]
    fn equivalent_to_sequential_sgd_on_aggregate_batch() {
        // S-SGD over k partitions must match single-learner SGD whose
        // gradient is the mean of the partition gradients.
        let grads = [vec![0.2f32, -0.4], vec![0.6, 0.0]];
        let mean: Vec<f32> = (0..2).map(|i| (grads[0][i] + grads[1][i]) / 2.0).collect();
        let mut parallel = SSgd::new(vec![1.0, 1.0], 2, SgdConfig::paper_default());
        parallel.step(grads.as_ref(), 0.1);
        let mut sequential = SSgd::new(vec![1.0, 1.0], 1, SgdConfig::paper_default());
        sequential.step(&[mean], 0.1);
        for (a, b) in parallel.consensus().iter().zip(sequential.consensus()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "one gradient per learner")]
    fn wrong_gradient_count_panics() {
        let mut s = SSgd::new(vec![0.0], 2, SgdConfig::plain());
        s.step(&[vec![1.0]], 0.1);
    }

    #[test]
    fn snapshot_carries_momentum() {
        let mut s = SSgd::new(vec![0.0, 0.0], 2, SgdConfig::paper_default());
        s.step(&[vec![1.0, -1.0], vec![0.5, 0.5]], 0.1);
        let snap = s.snapshot().expect("s-sgd snapshots");
        assert_eq!(snap.aux.len(), 1, "velocity rides in aux[0]");
        let mut fresh = SSgd::new(vec![0.0, 0.0], 2, SgdConfig::paper_default());
        assert!(fresh.restore(&snap));
        s.step(&[vec![0.2, 0.2], vec![0.2, 0.2]], 0.1);
        fresh.step(&[vec![0.2, 0.2], vec![0.2, 0.2]], 0.1);
        assert_eq!(s.consensus(), fresh.consensus());
    }

    #[test]
    fn restore_refuses_mismatched_snapshot() {
        let s = SSgd::new(vec![0.0, 0.0], 2, SgdConfig::plain());
        let snap = s.snapshot().unwrap();
        let mut wider = SSgd::new(vec![0.0; 3], 2, SgdConfig::plain());
        assert!(!wider.restore(&snap));
        let mut torn = snap.clone();
        torn.aux.clear();
        let mut same = SSgd::new(vec![0.0, 0.0], 2, SgdConfig::plain());
        assert!(!same.restore(&torn));
        let mut bad_vel = snap;
        bad_vel.aux[0].push(0.0);
        assert!(!same.restore(&bad_vel));
    }

    #[test]
    fn resizing_is_unsupported() {
        let mut s = SSgd::new(vec![0.0], 2, SgdConfig::plain());
        assert!(!s.add_replica());
        assert!(!s.remove_replica());
        assert_eq!(s.k(), 2);
    }
}
