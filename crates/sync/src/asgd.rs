//! Asynchronous SGD with configurable staleness — the §2.3 strawman.
//!
//! In A-SGD a worker "progresses to the next iteration immediately after
//! its partial gradient was added", so gradients are computed against
//! *stale* model versions. We model that deterministically: `replica(j)`
//! returns the model as it was `staleness` steps ago, while `step` applies
//! the (stale) gradients to the current model sequentially. With
//! `staleness == 0` this degenerates to sequential SGD.
//!
//! The paper rejects A-SGD because stale gradients make training complex
//! models unreliable; the integration tests reproduce that finding
//! (staleness slows or destabilises convergence), which is why CROSSBOW is
//! synchronous.

use crate::algorithm::SyncAlgorithm;
use crate::optimizer::{Sgd, SgdConfig};
use std::collections::VecDeque;

/// Asynchronous SGD over a single shared model with stale reads.
pub struct ASgd {
    model: Vec<f32>,
    opt: Sgd,
    k: usize,
    staleness: usize,
    /// Ring of past model snapshots; front is the oldest retained.
    history: VecDeque<Vec<f32>>,
}

impl ASgd {
    /// Creates A-SGD with `k` workers reading `staleness`-step-old models.
    ///
    /// # Panics
    /// Panics when `k == 0` or the model is empty.
    pub fn new(initial: Vec<f32>, k: usize, staleness: usize, config: SgdConfig) -> Self {
        assert!(k > 0, "need at least one worker");
        assert!(!initial.is_empty(), "empty model");
        let len = initial.len();
        let mut history = VecDeque::with_capacity(staleness + 1);
        history.push_back(initial.clone());
        ASgd {
            model: initial,
            opt: Sgd::new(len, config),
            k,
            staleness,
            history,
        }
    }

    /// Configured staleness in steps.
    pub fn staleness(&self) -> usize {
        self.staleness
    }
}

impl SyncAlgorithm for ASgd {
    fn name(&self) -> &'static str {
        "a-sgd"
    }

    fn k(&self) -> usize {
        self.k
    }

    fn param_len(&self) -> usize {
        self.model.len()
    }

    /// Workers read the oldest retained snapshot — a model version up to
    /// `staleness` steps behind the current one.
    fn replica(&self, j: usize) -> &[f32] {
        assert!(j < self.k, "worker {j} out of range");
        self.history.front().expect("history never empty")
    }

    fn step(&mut self, grads: &[Vec<f32>], lr: f32) {
        assert_eq!(grads.len(), self.k, "one gradient per worker");
        // Workers race to apply their gradients one at a time; no
        // averaging, each is a full update (Hogwild-style accumulation).
        let scale = 1.0 / self.k as f32;
        for g in grads {
            let scaled: Vec<f32> = g.iter().map(|&x| x * scale).collect();
            self.opt.step(&mut self.model, &scaled, lr);
        }
        self.history.push_back(self.model.clone());
        while self.history.len() > self.staleness + 1 {
            self.history.pop_front();
        }
    }

    fn consensus(&self) -> &[f32] {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_staleness_reads_current_model() {
        let mut a = ASgd::new(vec![0.0], 1, 0, SgdConfig::plain());
        a.step(&[vec![1.0]], 0.5);
        assert_eq!(a.replica(0), a.consensus());
        assert!((a.consensus()[0] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn stale_reads_lag_behind() {
        let mut a = ASgd::new(vec![0.0], 1, 2, SgdConfig::plain());
        a.step(&[vec![1.0]], 0.1); // model: -0.1
        a.step(&[vec![1.0]], 0.1); // model: -0.2
        a.step(&[vec![1.0]], 0.1); // model: -0.3
                                   // Worker reads the snapshot from 2 steps ago (-0.1).
        assert!((a.replica(0)[0] + 0.1).abs() < 1e-6);
        assert!((a.consensus()[0] + 0.3).abs() < 1e-6);
    }

    #[test]
    fn staleness_slows_quadratic_convergence() {
        // Minimise 0.5 w^2 from w=1 with gradients evaluated at stale
        // points; more staleness leaves a larger residual after a fixed
        // iteration budget (and can oscillate).
        let run = |staleness: usize| {
            let mut a = ASgd::new(vec![1.0], 2, staleness, SgdConfig::plain());
            for _ in 0..40 {
                let at = a.replica(0).to_vec();
                a.step(&[vec![at[0]], vec![at[0]]], 0.3);
            }
            a.consensus()[0].abs()
        };
        let fresh = run(0);
        let stale = run(4);
        assert!(
            stale > fresh,
            "staleness should hurt: fresh {fresh} vs stale {stale}"
        );
    }

    #[test]
    fn history_is_bounded() {
        let mut a = ASgd::new(vec![0.0], 1, 3, SgdConfig::plain());
        for _ in 0..20 {
            a.step(&[vec![0.1]], 0.1);
        }
        assert!(a.history.len() <= 4);
        assert_eq!(a.staleness(), 3);
    }
}
