//! Two-level (hierarchical) synchronisation — §3.3 and Figure 6.
//!
//! With multiple learners per GPU, CROSSBOW splits synchronisation by
//! communication scope: learners on one GPU synchronise against a local
//! *reference model* through fast shared memory ("direct application of
//! model difference"), and only the reference models — one per GPU — take
//! part in the global SMA exchange over PCIe.
//!
//! Statistically this is a nested version of Algorithm 1:
//!
//! * **intra-GPU**: replica `w` receives `c = α_l (w − r_g)` toward its
//!   GPU's reference `r_g`, which absorbs `Σ c`;
//! * **inter-GPU**: the references receive SMA corrections
//!   `c_g = α (r_g − z)` and the central model advances
//!   `z ← z + Σ c_g + µ (z − z_prev)`.
//!
//! Integration tests verify it tracks flat SMA's convergence, which is why
//! the engine may use either interchangeably.

use crate::algorithm::{AlgoSnapshot, SyncAlgorithm};
use crate::sma::SmaConfig;
use crossbow_tensor::ops;

/// Hierarchical SMA: groups of replicas (one group per GPU) with local
/// reference models, global SMA across references.
pub struct HierarchicalSma {
    groups: Vec<Group>,
    center: Vec<f32>,
    center_prev: Vec<f32>,
    config: SmaConfig,
    /// Intra-group correction strength (`None` = 1 / group size).
    local_alpha: Option<f32>,
    iter: u64,
    sum_c: Vec<f32>,
}

struct Group {
    reference: Vec<f32>,
    replicas: Vec<Vec<f32>>,
}

impl HierarchicalSma {
    /// Creates `gpus` groups of `per_gpu` replicas each, all initialised
    /// to `initial`.
    ///
    /// # Panics
    /// Panics on zero sizes or an empty model.
    pub fn new(initial: Vec<f32>, gpus: usize, per_gpu: usize, config: SmaConfig) -> Self {
        assert!(gpus > 0 && per_gpu > 0, "need at least one learner");
        assert!(!initial.is_empty(), "empty model");
        assert!(config.tau > 0, "tau must be at least 1");
        let len = initial.len();
        let groups = (0..gpus)
            .map(|_| Group {
                reference: initial.clone(),
                replicas: vec![initial.clone(); per_gpu],
            })
            .collect();
        HierarchicalSma {
            groups,
            center_prev: initial.clone(),
            center: initial,
            config,
            local_alpha: None,
            iter: 0,
            sum_c: vec![0.0; len],
        }
    }

    /// Number of groups (GPUs).
    pub fn gpus(&self) -> usize {
        self.groups.len()
    }

    /// The reference model of group `g` (test hook).
    pub fn reference(&self, g: usize) -> &[f32] {
        &self.groups[g].reference
    }

    fn locate(&self, j: usize) -> (usize, usize) {
        let mut rest = j;
        for (g, group) in self.groups.iter().enumerate() {
            if rest < group.replicas.len() {
                return (g, rest);
            }
            rest -= group.replicas.len();
        }
        panic!("replica {j} out of range");
    }
}

impl SyncAlgorithm for HierarchicalSma {
    fn name(&self) -> &'static str {
        "sma-hierarchical"
    }

    fn k(&self) -> usize {
        self.groups.iter().map(|g| g.replicas.len()).sum()
    }

    fn param_len(&self) -> usize {
        self.center.len()
    }

    fn replica(&self, j: usize) -> &[f32] {
        let (g, l) = self.locate(j);
        &self.groups[g].replicas[l]
    }

    fn step(&mut self, grads: &[Vec<f32>], lr: f32) {
        assert_eq!(grads.len(), self.k(), "one gradient per learner");
        let sync = self.iter.is_multiple_of(self.config.tau as u64);
        let mut gi = 0usize;
        if sync {
            // Intra-group: replicas toward their reference.
            for group in &mut self.groups {
                let m = group.replicas.len();
                let alpha_l = self.local_alpha.unwrap_or(1.0 / m as f32);
                for w in &mut group.replicas {
                    let g = &grads[gi];
                    gi += 1;
                    for ((wi, &ggi), ri) in
                        w.iter_mut().zip(g.iter()).zip(group.reference.iter_mut())
                    {
                        let c = alpha_l * (*wi - *ri);
                        *wi -= lr * ggi + c;
                        *ri += c;
                    }
                }
            }
            // Inter-group: references toward the central average model.
            let n_groups = self.groups.len();
            let alpha = self.config.alpha.unwrap_or(1.0 / n_groups as f32);
            ops::zero(&mut self.sum_c);
            for group in &mut self.groups {
                for ((ri, zi), sci) in group
                    .reference
                    .iter_mut()
                    .zip(self.center.iter())
                    .zip(self.sum_c.iter_mut())
                {
                    let c = alpha * (*ri - *zi);
                    *ri -= c;
                    *sci += c;
                }
            }
            let mu = self.config.momentum;
            for ((zi, zpi), &sci) in self
                .center
                .iter_mut()
                .zip(self.center_prev.iter_mut())
                .zip(self.sum_c.iter())
            {
                let old = *zi;
                *zi = old + sci + mu * (old - *zpi);
                *zpi = old;
            }
        } else {
            for group in &mut self.groups {
                for w in &mut group.replicas {
                    ops::axpy(-lr, &grads[gi], w);
                    gi += 1;
                }
            }
        }
        self.iter += 1;
    }

    fn consensus(&self) -> &[f32] {
        &self.center
    }

    fn on_lr_change(&mut self) {
        for group in &mut self.groups {
            group.reference.copy_from_slice(&self.center);
            for w in &mut group.replicas {
                w.copy_from_slice(&self.center);
            }
        }
        self.center_prev.copy_from_slice(&self.center);
        self.iter = 0;
    }

    /// Adds a learner to the least-loaded group, seeded from the centre.
    fn add_replica(&mut self) -> bool {
        let g = self
            .groups
            .iter()
            .enumerate()
            .min_by_key(|(_, g)| g.replicas.len())
            .map(|(i, _)| i)
            .expect("at least one group");
        self.groups[g].replicas.push(self.center.clone());
        true
    }

    fn remove_replica(&mut self) -> bool {
        if self.k() <= 1 {
            return false;
        }
        let g = self
            .groups
            .iter()
            .enumerate()
            .max_by_key(|(_, g)| g.replicas.len())
            .map(|(i, _)| i)
            .expect("at least one group");
        self.groups[g].replicas.pop();
        true
    }

    /// Replicas are flattened in `Self::locate` order; the per-group
    /// reference models travel in `aux` (one entry per group), which also
    /// records the group layout for restore.
    fn snapshot(&self) -> Option<AlgoSnapshot> {
        let mut replicas = Vec::with_capacity(self.k());
        let mut aux = Vec::with_capacity(self.groups.len() + 1);
        // aux[0] records the per-group replica counts so restore can
        // verify the layout; the remaining entries are the references.
        aux.push(
            self.groups
                .iter()
                .map(|g| g.replicas.len() as f32)
                .collect(),
        );
        for group in &self.groups {
            replicas.extend(group.replicas.iter().cloned());
            aux.push(group.reference.clone());
        }
        Some(AlgoSnapshot {
            center: self.center.clone(),
            center_prev: self.center_prev.clone(),
            replicas,
            aux,
            iter: self.iter,
        })
    }

    fn restore(&mut self, snapshot: &AlgoSnapshot) -> bool {
        let len = self.center.len();
        let Some(layout) = snapshot.aux.first() else {
            return false;
        };
        let fits = snapshot.center.len() == len
            && snapshot.center_prev.len() == len
            && layout.len() == self.groups.len()
            && snapshot.aux.len() == self.groups.len() + 1
            && snapshot.aux[1..].iter().all(|r| r.len() == len)
            && layout
                .iter()
                .zip(self.groups.iter())
                .all(|(&n, g)| n as usize == g.replicas.len())
            && snapshot.replicas.len() == self.k()
            && snapshot.replicas.iter().all(|r| r.len() == len);
        if !fits {
            return false;
        }
        self.center.copy_from_slice(&snapshot.center);
        self.center_prev.copy_from_slice(&snapshot.center_prev);
        let mut next = 0usize;
        for (group, reference) in self.groups.iter_mut().zip(&snapshot.aux[1..]) {
            group.reference.copy_from_slice(reference);
            for w in &mut group.replicas {
                w.copy_from_slice(&snapshot.replicas[next]);
                next += 1;
            }
        }
        self.iter = snapshot.iter;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::replica_spread;
    use crate::sma::Sma;

    fn zeros(k: usize, len: usize) -> Vec<Vec<f32>> {
        vec![vec![0.0; len]; k]
    }

    #[test]
    fn layout_maps_learners_to_groups() {
        let h = HierarchicalSma::new(vec![0.0], 2, 3, SmaConfig::default());
        assert_eq!(h.k(), 6);
        assert_eq!(h.gpus(), 2);
        assert_eq!(h.locate(0), (0, 0));
        assert_eq!(h.locate(2), (0, 2));
        assert_eq!(h.locate(3), (1, 0));
        assert_eq!(h.locate(5), (1, 2));
    }

    #[test]
    fn fixed_point_with_zero_gradients() {
        let mut h = HierarchicalSma::new(vec![2.0, -1.0], 2, 2, SmaConfig::default());
        h.step(&zeros(4, 2), 0.1);
        assert_eq!(h.consensus(), &[2.0, -1.0]);
        assert_eq!(replica_spread(&h), 0.0);
    }

    #[test]
    fn converges_on_quadratic_like_flat_sma() {
        let target = 3.0f32;
        let run_hier = || {
            let mut h = HierarchicalSma::new(vec![0.0], 2, 2, SmaConfig::default());
            for _ in 0..300 {
                let grads: Vec<Vec<f32>> = (0..4).map(|j| vec![h.replica(j)[0] - target]).collect();
                h.step(&grads, 0.05);
            }
            h.consensus()[0]
        };
        let run_flat = || {
            let mut s = Sma::new(vec![0.0], 4, SmaConfig::default());
            for _ in 0..300 {
                let grads: Vec<Vec<f32>> = (0..4).map(|j| vec![s.replica(j)[0] - target]).collect();
                s.step(&grads, 0.05);
            }
            s.consensus()[0]
        };
        let (zh, zf) = (run_hier(), run_flat());
        assert!((zh - target).abs() < 0.1, "hierarchical z = {zh}");
        assert!((zh - zf).abs() < 0.1, "hierarchical {zh} tracks flat {zf}");
    }

    #[test]
    fn references_absorb_local_diversity() {
        let mut h = HierarchicalSma::new(vec![0.0], 1, 2, SmaConfig::default());
        h.groups[0].replicas[0] = vec![4.0];
        h.groups[0].replicas[1] = vec![-4.0];
        h.step(&zeros(2, 1), 0.0);
        // Symmetric replicas: reference stays at their mean (0), replicas
        // pulled inward.
        assert!(h.reference(0)[0].abs() < 1e-6);
        assert!(h.replica(0)[0] < 4.0);
        assert!(h.replica(1)[0] > -4.0);
    }

    #[test]
    fn resize_balances_groups() {
        let mut h = HierarchicalSma::new(vec![0.0], 2, 1, SmaConfig::default());
        assert!(h.add_replica());
        assert!(h.add_replica());
        assert_eq!(h.groups[0].replicas.len(), 2);
        assert_eq!(h.groups[1].replicas.len(), 2);
        assert!(h.remove_replica());
        assert_eq!(h.k(), 3);
    }

    #[test]
    fn snapshot_restore_round_trips_exactly() {
        let mut h = HierarchicalSma::new(vec![0.0, 0.0], 2, 2, SmaConfig::default());
        for i in 0..7 {
            let grads: Vec<Vec<f32>> = (0..4)
                .map(|j| vec![0.1 * (i + j) as f32, -0.05 * j as f32])
                .collect();
            h.step(&grads, 0.05);
        }
        let snap = h.snapshot().expect("hierarchical SMA snapshots");
        let mut fresh = HierarchicalSma::new(vec![0.0, 0.0], 2, 2, SmaConfig::default());
        assert!(fresh.restore(&snap));
        // Both must evolve identically from here.
        let grads = vec![vec![0.3, -0.2]; 4];
        h.step(&grads, 0.05);
        fresh.step(&grads, 0.05);
        assert_eq!(h.consensus(), fresh.consensus());
        for j in 0..4 {
            assert_eq!(h.replica(j), fresh.replica(j));
        }
        assert_eq!(h.reference(0), fresh.reference(0));
        assert_eq!(h.reference(1), fresh.reference(1));
    }

    #[test]
    fn restore_refuses_layout_mismatch() {
        let h = HierarchicalSma::new(vec![0.0], 2, 2, SmaConfig::default());
        let snap = h.snapshot().unwrap();
        // Different group count.
        let mut other = HierarchicalSma::new(vec![0.0], 4, 1, SmaConfig::default());
        assert!(!other.restore(&snap));
        // Different parameter length.
        let mut wider = HierarchicalSma::new(vec![0.0, 0.0], 2, 2, SmaConfig::default());
        assert!(!wider.restore(&snap));
        // Missing layout record.
        let mut torn = snap.clone();
        torn.aux.clear();
        let mut same = HierarchicalSma::new(vec![0.0], 2, 2, SmaConfig::default());
        assert!(!same.restore(&torn));
    }

    #[test]
    fn restart_collapses_everything_to_center() {
        let mut h = HierarchicalSma::new(vec![0.0], 2, 2, SmaConfig::default());
        h.groups[1].replicas[0] = vec![9.0];
        h.groups[0].reference = vec![-3.0];
        h.on_lr_change();
        assert_eq!(replica_spread(&h), 0.0);
        assert_eq!(h.reference(0), h.consensus());
        assert_eq!(h.reference(1), h.consensus());
    }
}
