//! Synchronous model averaging (SMA) — Algorithm 1, the paper's central
//! contribution.
//!
//! `k` learners train independent replicas `w_1..w_k`. Each iteration:
//!
//! 1. learner `j` computes gradient `g_j = γ ∇l_{B_j}(w_j)` (line 8);
//! 2. its correction is `c_j = α (w_j − z)` with `α ≈ 1/k` (line 9);
//! 3. the replica is updated `w_j ← w_j − g_j − c_j` (line 10);
//! 4. the central average model advances with all corrections and Polyak
//!    momentum: `z ← z + Σ_j c_j + µ (z − z_prev)` (line 12).
//!
//! Two extra rules from the text:
//!
//! * **τ-gated synchronisation** (§5.5–5.6): corrections may be applied
//!   every τ-th iteration only (EA-SGD style); the paper shows τ = 1 is
//!   best for time-to-accuracy and uses τ as the knob in Figures 16/17.
//! * **restart on learning-rate change** (§3.2): when the schedule steps,
//!   Algorithm 1 restarts with the current `z` as the new initial model —
//!   replicas are re-seeded from `z` and the momentum history is cleared.
//!
//! [`easgd`] configures the same machinery as elastic averaging SGD \[69\]:
//! no centre momentum (µ = 0). This is the comparator of Figure 15.

use crate::algorithm::{AlgoSnapshot, SyncAlgorithm};
use crossbow_tensor::ops;

/// SMA hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct SmaConfig {
    /// Centre momentum µ (Polyak). The paper uses 0.9; 0 yields EA-SGD.
    pub momentum: f32,
    /// Correction strength α; `None` uses the paper's `α ≈ 1/k`,
    /// re-derived whenever `k` changes.
    pub alpha: Option<f32>,
    /// Apply corrections every `tau` iterations (1 = every iteration).
    pub tau: usize,
}

impl Default for SmaConfig {
    fn default() -> Self {
        SmaConfig {
            momentum: 0.9,
            alpha: None,
            tau: 1,
        }
    }
}

/// Synchronous model averaging over `k` replicas.
pub struct Sma {
    name: &'static str,
    config: SmaConfig,
    replicas: Vec<Vec<f32>>,
    /// The central average model `z`.
    center: Vec<f32>,
    /// `z` at the beginning of the previous iteration (`z_prev`).
    center_prev: Vec<f32>,
    iter: u64,
    /// Scratch: sum of corrections.
    sum_c: Vec<f32>,
}

impl Sma {
    /// Creates SMA with `k` replicas, all initialised to `initial` (the
    /// `w_0` of Algorithm 1).
    ///
    /// # Panics
    /// Panics on `k == 0`, an empty model or `tau == 0`.
    pub fn new(initial: Vec<f32>, k: usize, config: SmaConfig) -> Self {
        assert!(k > 0, "need at least one learner");
        assert!(!initial.is_empty(), "empty model");
        assert!(config.tau > 0, "tau must be at least 1");
        let len = initial.len();
        Sma {
            name: "sma",
            config,
            replicas: vec![initial.clone(); k],
            center_prev: initial.clone(),
            center: initial,
            iter: 0,
            sum_c: vec![0.0; len],
        }
    }

    fn alpha(&self) -> f32 {
        self.config
            .alpha
            .unwrap_or(1.0 / self.replicas.len() as f32)
    }

    /// The configured τ.
    pub fn tau(&self) -> usize {
        self.config.tau
    }

    /// Mutable access to the central model (used by the engine to seed a
    /// restart from a checkpoint).
    pub fn center_mut(&mut self) -> &mut [f32] {
        &mut self.center
    }
}

/// Elastic averaging SGD \[69\]: SMA without centre momentum, optionally
/// synchronising only every `tau` iterations to cut communication.
pub fn easgd(initial: Vec<f32>, k: usize, alpha: Option<f32>, tau: usize) -> Sma {
    let mut algo = Sma::new(
        initial,
        k,
        SmaConfig {
            momentum: 0.0,
            alpha,
            tau,
        },
    );
    algo.name = "ea-sgd";
    algo
}

impl SyncAlgorithm for Sma {
    fn name(&self) -> &'static str {
        self.name
    }

    fn k(&self) -> usize {
        self.replicas.len()
    }

    fn param_len(&self) -> usize {
        self.center.len()
    }

    fn replica(&self, j: usize) -> &[f32] {
        &self.replicas[j]
    }

    fn step(&mut self, grads: &[Vec<f32>], lr: f32) {
        let k = self.replicas.len();
        assert_eq!(grads.len(), k, "one gradient per learner");
        let sync = self.iter.is_multiple_of(self.config.tau as u64);
        if sync {
            let alpha = self.alpha();
            ops::zero(&mut self.sum_c);
            for (w, g) in self.replicas.iter_mut().zip(grads) {
                debug_assert_eq!(w.len(), g.len());
                for ((wi, &gi), (sci, &zi)) in w
                    .iter_mut()
                    .zip(g.iter())
                    .zip(self.sum_c.iter_mut().zip(self.center.iter()))
                {
                    let c = alpha * (*wi - zi);
                    *wi -= lr * gi + c;
                    *sci += c;
                }
            }
            // z <- z + sum(c) + mu * (z - z_prev); z_prev <- old z.
            let mu = self.config.momentum;
            for ((zi, zpi), &sci) in self
                .center
                .iter_mut()
                .zip(self.center_prev.iter_mut())
                .zip(self.sum_c.iter())
            {
                let old = *zi;
                *zi = old + sci + mu * (old - *zpi);
                *zpi = old;
            }
        } else {
            for (w, g) in self.replicas.iter_mut().zip(grads) {
                ops::axpy(-lr, g, w);
            }
        }
        self.iter += 1;
    }

    fn consensus(&self) -> &[f32] {
        &self.center
    }

    /// Restart (§3.2): Algorithm 1 is executed again with the latest `z`
    /// as the new initial model.
    fn on_lr_change(&mut self) {
        for w in &mut self.replicas {
            w.copy_from_slice(&self.center);
        }
        self.center_prev.copy_from_slice(&self.center);
        self.iter = 0;
    }

    /// The auto-tuner adds a learner: the new replica "is initialised with
    /// the latest value of the average model" (§4.4).
    fn add_replica(&mut self) -> bool {
        self.replicas.push(self.center.clone());
        true
    }

    fn remove_replica(&mut self) -> bool {
        if self.replicas.len() > 1 {
            self.replicas.pop();
            true
        } else {
            false
        }
    }

    fn snapshot(&self) -> Option<AlgoSnapshot> {
        Some(AlgoSnapshot {
            center: self.center.clone(),
            center_prev: self.center_prev.clone(),
            replicas: self.replicas.clone(),
            aux: Vec::new(),
            iter: self.iter,
        })
    }

    /// Per the trait contract, a snapshot that cannot fit this algorithm
    /// (taken from a different model) is refused with `false`, leaving the
    /// current state untouched — it does not panic.
    fn restore(&mut self, snapshot: &AlgoSnapshot) -> bool {
        let len = self.center.len();
        let fits = snapshot.center.len() == len
            && snapshot.center_prev.len() == len
            && !snapshot.replicas.is_empty()
            && snapshot.replicas.iter().all(|r| r.len() == len);
        if !fits {
            return false;
        }
        self.center.copy_from_slice(&snapshot.center);
        self.center_prev.copy_from_slice(&snapshot.center_prev);
        self.replicas = snapshot.replicas.clone();
        self.iter = snapshot.iter;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::replica_spread;

    fn zeros(k: usize, len: usize) -> Vec<Vec<f32>> {
        vec![vec![0.0; len]; k]
    }

    #[test]
    fn consensus_fixed_point_with_zero_gradients() {
        // All replicas at z, zero gradients: nothing moves.
        let mut sma = Sma::new(vec![1.0, -2.0], 3, SmaConfig::default());
        sma.step(&zeros(3, 2), 0.1);
        assert_eq!(sma.consensus(), &[1.0, -2.0]);
        assert_eq!(replica_spread(&sma), 0.0);
    }

    #[test]
    fn center_becomes_replica_mean_with_alpha_one_over_k() {
        // With mu = 0 and zero gradients, one step moves z to the replica
        // mean exactly: z + (1/k) sum(w_j - z) = mean(w_j).
        let mut sma = easgd(vec![0.0], 2, None, 1);
        sma.replicas[0] = vec![2.0];
        sma.replicas[1] = vec![6.0];
        sma.step(&zeros(2, 1), 0.0);
        assert!((sma.consensus()[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn corrections_pull_replicas_toward_center() {
        let mut sma = Sma::new(vec![0.0, 0.0], 2, SmaConfig::default());
        sma.replicas[0] = vec![4.0, 0.0];
        sma.replicas[1] = vec![-4.0, 0.0];
        let before = replica_spread(&sma);
        sma.step(&zeros(2, 2), 0.0);
        let after = replica_spread(&sma);
        assert!(after < before, "spread {before} -> {after}");
    }

    #[test]
    fn momentum_keeps_center_moving() {
        // Give z one kick via corrections, then confirm momentum carries
        // it further with zero future corrections.
        let mut sma = Sma::new(
            vec![0.0],
            1,
            SmaConfig {
                momentum: 0.9,
                alpha: Some(0.5),
                tau: 1,
            },
        );
        sma.replicas[0] = vec![2.0]; // correction = 1.0 -> z = 1.0
        sma.step(&zeros(1, 1), 0.0);
        let z1 = sma.consensus()[0];
        assert!((z1 - 1.0).abs() < 1e-6);
        // Pin replica to z so corrections are 0; momentum term = 0.9 * 1.
        sma.replicas[0] = vec![z1];
        sma.step(&zeros(1, 1), 0.0);
        assert!((sma.consensus()[0] - 1.9).abs() < 1e-6);
    }

    #[test]
    fn step_pins_algorithm_1_arithmetic_bit_for_bit() {
        // Pin the exact §3.1/Algorithm 1 update, including evaluation
        // order, so in-place rewrites of the hot loop cannot silently
        // change it:
        //   c_j = alpha * (w_j - z)
        //   w_j <- w_j - lr*g_j - c_j
        //   z   <- z + sum_j(c_j) + mu * (z - z_prev); z_prev <- old z
        let (alpha, mu, lr) = (0.25f32, 0.9f32, 0.1f32);
        let mut sma = Sma::new(
            vec![1.0, -2.0],
            2,
            SmaConfig {
                momentum: mu,
                alpha: Some(alpha),
                tau: 1,
            },
        );
        sma.replicas[0] = vec![1.5, -1.0];
        sma.replicas[1] = vec![0.5, -3.0];
        let grads = vec![vec![0.3, -0.7], vec![-0.2, 0.4]];
        let (mut z, mut z_prev) = (vec![1.0f32, -2.0], vec![1.0f32, -2.0]);
        let mut w: Vec<Vec<f32>> = sma.replicas.clone();
        for _ in 0..3 {
            let mut sum_c = [0.0f32; 2];
            for (wj, gj) in w.iter_mut().zip(&grads) {
                for i in 0..2 {
                    let c = alpha * (wj[i] - z[i]);
                    wj[i] -= lr * gj[i] + c;
                    sum_c[i] += c;
                }
            }
            for i in 0..2 {
                let old = z[i];
                z[i] = old + sum_c[i] + mu * (old - z_prev[i]);
                z_prev[i] = old;
            }
            sma.step(&grads, lr);
        }
        assert_eq!(sma.consensus(), z.as_slice());
        assert_eq!(sma.replica(0), w[0].as_slice());
        assert_eq!(sma.replica(1), w[1].as_slice());
    }

    #[test]
    fn easgd_has_no_momentum() {
        let mut e = easgd(vec![0.0], 1, Some(0.5), 1);
        e.replicas[0] = vec![2.0];
        e.step(&zeros(1, 1), 0.0);
        let z1 = e.consensus()[0];
        e.replicas[0] = vec![z1];
        e.step(&zeros(1, 1), 0.0);
        assert!(
            (e.consensus()[0] - z1).abs() < 1e-6,
            "no drift without momentum"
        );
        assert_eq!(e.name(), "ea-sgd");
    }

    #[test]
    fn tau_gates_synchronisation() {
        let mut sma = Sma::new(
            vec![0.0],
            1,
            SmaConfig {
                momentum: 0.0,
                alpha: Some(0.5),
                tau: 3,
            },
        );
        // Iteration 0 syncs (0 % 3 == 0); 1 and 2 do not.
        sma.replicas[0] = vec![2.0];
        sma.step(&zeros(1, 1), 0.0);
        assert!((sma.consensus()[0] - 1.0).abs() < 1e-6, "iter 0 synced");
        sma.replicas[0] = vec![100.0];
        sma.step(&zeros(1, 1), 0.0); // iter 1: no sync
        sma.step(&zeros(1, 1), 0.0); // iter 2: no sync
        assert!((sma.consensus()[0] - 1.0).abs() < 1e-6, "no sync at 1, 2");
        sma.step(&zeros(1, 1), 0.0); // iter 3: sync
        assert!(sma.consensus()[0] > 1.0, "iter 3 synced");
    }

    #[test]
    fn restart_reseeds_replicas_from_center() {
        let mut sma = Sma::new(vec![0.0, 0.0], 3, SmaConfig::default());
        sma.replicas[0] = vec![5.0, 5.0];
        sma.replicas[2] = vec![-1.0, 3.0];
        sma.on_lr_change();
        assert_eq!(replica_spread(&sma), 0.0);
        for j in 0..3 {
            assert_eq!(sma.replica(j), sma.consensus());
        }
    }

    #[test]
    fn add_replica_starts_from_center() {
        let mut sma = Sma::new(vec![1.5], 2, SmaConfig::default());
        assert!(sma.add_replica());
        assert_eq!(sma.k(), 3);
        assert_eq!(sma.replica(2), sma.consensus());
        assert!(sma.remove_replica());
        assert_eq!(sma.k(), 2);
    }

    #[test]
    fn remove_keeps_at_least_one() {
        let mut sma = Sma::new(vec![0.0], 1, SmaConfig::default());
        assert!(!sma.remove_replica());
        assert_eq!(sma.k(), 1);
    }

    #[test]
    fn gradients_descend_replicas() {
        let mut sma = Sma::new(vec![0.0], 2, SmaConfig::default());
        sma.step(&[vec![1.0], vec![1.0]], 0.5);
        // Replicas moved by -lr*g (corrections were zero: all at z).
        assert!((sma.replica(0)[0] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn sma_converges_on_a_quadratic() {
        // Minimise f(w) = 0.5 (w - 3)^2 with 4 learners whose gradients
        // are exact; z must approach 3.
        let mut sma = Sma::new(vec![0.0], 4, SmaConfig::default());
        for _ in 0..300 {
            let grads: Vec<Vec<f32>> = (0..4).map(|j| vec![sma.replica(j)[0] - 3.0]).collect();
            sma.step(&grads, 0.05);
        }
        let z = sma.consensus()[0];
        assert!((z - 3.0).abs() < 0.05, "z = {z}");
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut sma = Sma::new(vec![0.0, 0.0], 3, SmaConfig::default());
        for i in 0..5 {
            let grads: Vec<Vec<f32>> = (0..3).map(|j| vec![0.1 * (i + j) as f32, -0.2]).collect();
            sma.step(&grads, 0.1);
        }
        let snap = sma.snapshot().expect("sma supports snapshots");
        let center_at_snap = sma.consensus().to_vec();
        // Diverge wildly, then roll back.
        sma.step(&[vec![1e9, 1e9], vec![1e9, 1e9], vec![1e9, 1e9]], 1.0);
        assert_ne!(sma.consensus(), center_at_snap.as_slice());
        assert!(sma.restore(&snap));
        assert_eq!(sma.consensus(), center_at_snap.as_slice());
        assert_eq!(sma.snapshot().unwrap(), snap, "full state restored");
        // The restored state steps identically to the original.
        let replay = |mut algo: Sma| {
            algo.step(&zeros(3, 2), 0.05);
            algo.consensus().to_vec()
        };
        let mut from_snap = Sma::new(vec![0.0, 0.0], 3, SmaConfig::default());
        assert!(from_snap.restore(&snap));
        assert_eq!(replay(sma), replay(from_snap));
    }

    #[test]
    fn mismatched_snapshot_is_refused_not_panicking() {
        // Regression: `restore` used to assert on a shape mismatch; the
        // trait contract says it must return `false` and leave the state
        // untouched.
        let mut sma = Sma::new(vec![1.0, 2.0], 2, SmaConfig::default());
        let before = sma.snapshot().expect("sma supports snapshots");
        let foreign = Sma::new(vec![0.0; 3], 2, SmaConfig::default())
            .snapshot()
            .expect("snapshot");
        assert!(!sma.restore(&foreign), "wrong model size must be refused");
        // A torn snapshot (replica length disagrees with the centre) is
        // refused too.
        let mut torn = before.clone();
        torn.replicas[1] = vec![0.0; 5];
        assert!(!sma.restore(&torn));
        let mut empty = before.clone();
        empty.replicas.clear();
        assert!(!sma.restore(&empty), "a snapshot without replicas is torn");
        assert_eq!(sma.snapshot().unwrap(), before, "state left untouched");
    }

    #[test]
    fn alpha_defaults_to_one_over_k() {
        let sma = Sma::new(vec![0.0], 8, SmaConfig::default());
        assert!((sma.alpha() - 0.125).abs() < 1e-9);
        let sma = Sma::new(
            vec![0.0],
            8,
            SmaConfig {
                alpha: Some(0.3),
                ..SmaConfig::default()
            },
        );
        assert!((sma.alpha() - 0.3).abs() < 1e-9);
    }
}
