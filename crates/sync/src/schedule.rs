//! Learning-rate schedules.
//!
//! §5.1: "in ResNet-32, the learning rate is multiplied by 0.1 at epochs
//! 80 and 120; in VGG, the learning rate is halved every 20 epochs". A
//! schedule change is also the trigger for SMA's restart rule (§3.2).

/// A learning-rate schedule over epochs.
#[derive(Clone, Debug)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Multiply the base rate by `factor` at each listed epoch (the
    /// ResNet recipe: `factor = 0.1` at epochs 80 and 120).
    StepDecay {
        /// Base rate at epoch 0.
        base: f32,
        /// Epochs at which the rate is scaled (ascending).
        boundaries: Vec<usize>,
        /// Scale factor applied at each boundary.
        factor: f32,
    },
    /// Halve the rate every `every` epochs (the VGG recipe).
    HalveEvery {
        /// Base rate at epoch 0.
        base: f32,
        /// Halving period in epochs.
        every: usize,
    },
}

impl LrSchedule {
    /// The ResNet-32 recipe: base 0.1, x0.1 at epochs 80 and 120.
    pub fn resnet32() -> Self {
        LrSchedule::StepDecay {
            base: 0.1,
            boundaries: vec![80, 120],
            factor: 0.1,
        }
    }

    /// The VGG recipe: base 0.1, halved every 20 epochs.
    pub fn vgg() -> Self {
        LrSchedule::HalveEvery {
            base: 0.1,
            every: 20,
        }
    }

    /// Learning rate during `epoch`.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        match self {
            LrSchedule::Constant { lr } => *lr,
            LrSchedule::StepDecay {
                base,
                boundaries,
                factor,
            } => {
                let crossed = boundaries.iter().filter(|&&b| epoch >= b).count();
                base * factor.powi(crossed as i32)
            }
            LrSchedule::HalveEvery { base, every } => {
                assert!(*every > 0, "zero halving period");
                base * 0.5f32.powi((epoch / every) as i32)
            }
        }
    }

    /// True when the rate changes *entering* `epoch` (epoch > 0); SMA
    /// restarts at these points.
    pub fn changes_at(&self, epoch: usize) -> bool {
        epoch > 0 && self.lr_at(epoch) != self.lr_at(epoch - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = LrSchedule::Constant { lr: 0.05 };
        assert_eq!(s.lr_at(0), 0.05);
        assert_eq!(s.lr_at(500), 0.05);
        assert!(!s.changes_at(100));
    }

    #[test]
    fn resnet_recipe_steps_twice() {
        let s = LrSchedule::resnet32();
        assert!((s.lr_at(0) - 0.1).abs() < 1e-9);
        assert!((s.lr_at(79) - 0.1).abs() < 1e-9);
        assert!((s.lr_at(80) - 0.01).abs() < 1e-9);
        assert!((s.lr_at(120) - 0.001).abs() < 1e-9);
        assert!(s.changes_at(80));
        assert!(s.changes_at(120));
        assert!(!s.changes_at(81));
        assert!(!s.changes_at(0));
    }

    #[test]
    fn vgg_recipe_halves() {
        let s = LrSchedule::vgg();
        assert!((s.lr_at(19) - 0.1).abs() < 1e-9);
        assert!((s.lr_at(20) - 0.05).abs() < 1e-9);
        assert!((s.lr_at(40) - 0.025).abs() < 1e-9);
        assert!(s.changes_at(20));
        assert!(!s.changes_at(21));
    }

    /// `changes_at` must be true exactly where `lr_at` actually moves:
    /// every restart (§3.2) and every checkpoint-resume decision keys off
    /// this agreement, so sweep every epoch rather than spot-check.
    fn changes_match_lr_everywhere(s: &LrSchedule, horizon: usize) {
        for epoch in 0..=horizon {
            let moved = epoch > 0 && s.lr_at(epoch) != s.lr_at(epoch - 1);
            assert_eq!(
                s.changes_at(epoch),
                moved,
                "changes_at({epoch}) disagrees with lr_at ({} vs {})",
                s.lr_at(epoch.saturating_sub(1)),
                s.lr_at(epoch),
            );
        }
    }

    #[test]
    fn resnet_changes_agree_with_lr_at_every_boundary() {
        let s = LrSchedule::resnet32();
        changes_match_lr_everywhere(&s, 200);
        // The paper's boundaries, exactly — and nowhere else.
        let boundaries: Vec<usize> = (0..=200).filter(|&e| s.changes_at(e)).collect();
        assert_eq!(boundaries, vec![80, 120]);
    }

    #[test]
    fn vgg_changes_agree_with_lr_at_every_boundary() {
        let s = LrSchedule::vgg();
        changes_match_lr_everywhere(&s, 200);
        let boundaries: Vec<usize> = (0..=200).filter(|&e| s.changes_at(e)).collect();
        let expected: Vec<usize> = (1..=10).map(|i| i * 20).collect();
        assert_eq!(boundaries, expected);
    }

    #[test]
    fn step_decay_handles_duplicate_and_zero_boundaries() {
        // A boundary at epoch 0 scales the base immediately and is never
        // reported as a change; duplicate boundaries apply the factor
        // twice at the same epoch.
        let s = LrSchedule::StepDecay {
            base: 0.1,
            boundaries: vec![0, 5, 5],
            factor: 0.5,
        };
        changes_match_lr_everywhere(&s, 20);
        assert!((s.lr_at(0) - 0.05).abs() < 1e-9);
        assert!((s.lr_at(5) - 0.0125).abs() < 1e-9);
        assert!(!s.changes_at(0));
        assert!(s.changes_at(5));
    }
}
