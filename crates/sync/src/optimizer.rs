//! Mini-batch SGD with Polyak momentum and weight decay.
//!
//! Implements Eq. (3) of the paper:
//!
//! ```text
//! w_{n+1} = w_n − γ_n ∇l_B(w_n) + µ (w_n − w_{n−1})
//! ```
//!
//! in the standard velocity form `v ← µv − γ(g + d·w)`, `w ← w + v`, where
//! `d` is the weight-decay coefficient the paper's Figure 9 captions call
//! `d`.

/// Hyper-parameters of momentum SGD.
#[derive(Clone, Copy, Debug)]
pub struct SgdConfig {
    /// Momentum µ (0 disables).
    pub momentum: f32,
    /// Weight decay d (L2 penalty added to every gradient).
    pub weight_decay: f32,
}

impl SgdConfig {
    /// The paper's standard setting: µ = 0.9, d = 1e-4 (Figure 9).
    pub fn paper_default() -> Self {
        SgdConfig {
            momentum: 0.9,
            weight_decay: 1e-4,
        }
    }

    /// Plain SGD: no momentum, no decay.
    pub fn plain() -> Self {
        SgdConfig {
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }
}

/// Momentum SGD state for one model.
#[derive(Clone, Debug)]
pub struct Sgd {
    config: SgdConfig,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Creates optimiser state for a model of `len` parameters.
    pub fn new(len: usize, config: SgdConfig) -> Self {
        Sgd {
            config,
            velocity: vec![0.0; len],
        }
    }

    /// The configuration.
    pub fn config(&self) -> SgdConfig {
        self.config
    }

    /// Applies one update with learning rate `lr`.
    ///
    /// # Panics
    /// Panics if slice lengths do not match the optimiser state.
    pub fn step(&mut self, params: &mut [f32], grad: &[f32], lr: f32) {
        assert_eq!(params.len(), self.velocity.len(), "params length mismatch");
        assert_eq!(grad.len(), self.velocity.len(), "grad length mismatch");
        let mu = self.config.momentum;
        let wd = self.config.weight_decay;
        for ((w, v), &g) in params.iter_mut().zip(self.velocity.iter_mut()).zip(grad) {
            *v = mu * *v - lr * (g + wd * *w);
            *w += *v;
        }
    }

    /// Clears accumulated momentum (used by SMA's restart rule).
    pub fn reset(&mut self) {
        self.velocity.iter_mut().for_each(|v| *v = 0.0);
    }

    /// The accumulated momentum buffer (checkpointed so a resumed run
    /// continues with the exact velocity, not a cold restart).
    pub fn velocity(&self) -> &[f32] {
        &self.velocity
    }

    /// Replaces the momentum buffer; refuses (returning `false`) a buffer
    /// of the wrong length.
    pub fn set_velocity(&mut self, velocity: &[f32]) -> bool {
        if velocity.len() != self.velocity.len() {
            return false;
        }
        self.velocity.copy_from_slice(velocity);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_is_gradient_descent() {
        let mut opt = Sgd::new(2, SgdConfig::plain());
        let mut w = vec![1.0f32, -1.0];
        opt.step(&mut w, &[0.5, -0.5], 0.1);
        assert_eq!(w, vec![0.95, -0.95]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = Sgd::new(
            1,
            SgdConfig {
                momentum: 0.9,
                weight_decay: 0.0,
            },
        );
        let mut w = vec![0.0f32];
        opt.step(&mut w, &[1.0], 0.1);
        assert!((w[0] + 0.1).abs() < 1e-6);
        opt.step(&mut w, &[1.0], 0.1);
        // v = 0.9*(-0.1) - 0.1 = -0.19; w = -0.1 - 0.19 = -0.29
        assert!((w[0] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut opt = Sgd::new(
            1,
            SgdConfig {
                momentum: 0.0,
                weight_decay: 0.1,
            },
        );
        let mut w = vec![1.0f32];
        opt.step(&mut w, &[0.0], 0.5);
        assert!((w[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_momentum() {
        let mut opt = Sgd::new(1, SgdConfig::paper_default());
        let mut w = vec![0.0f32];
        opt.step(&mut w, &[1.0], 0.1);
        opt.reset();
        let before = w[0];
        opt.step(&mut w, &[0.0], 0.1);
        // With zero gradient and reset velocity only decay acts (w ~ 0).
        assert!((w[0] - before).abs() < 1e-5);
    }

    #[test]
    fn velocity_round_trips_and_rejects_wrong_length() {
        let mut opt = Sgd::new(2, SgdConfig::paper_default());
        let mut w = vec![0.0f32, 0.0];
        opt.step(&mut w, &[1.0, -1.0], 0.1);
        let saved = opt.velocity().to_vec();
        let mut resumed = Sgd::new(2, SgdConfig::paper_default());
        assert!(resumed.set_velocity(&saved));
        assert!(!resumed.set_velocity(&[0.0; 3]));
        let mut w2 = w.clone();
        opt.step(&mut w, &[0.5, 0.5], 0.1);
        resumed.step(&mut w2, &[0.5, 0.5], 0.1);
        assert_eq!(w, w2, "restored velocity continues identically");
    }

    #[test]
    fn momentum_descends_a_quadratic_faster_than_plain() {
        // Minimise f(w) = 0.5 w^2 from w = 1.
        let run = |config: SgdConfig| {
            let mut opt = Sgd::new(1, config);
            let mut w = vec![1.0f32];
            for _ in 0..20 {
                let g = [w[0]];
                opt.step(&mut w, &g, 0.05);
            }
            w[0].abs()
        };
        let plain = run(SgdConfig::plain());
        let momentum = run(SgdConfig {
            momentum: 0.9,
            weight_decay: 0.0,
        });
        assert!(momentum < plain, "momentum {momentum} vs plain {plain}");
    }
}
