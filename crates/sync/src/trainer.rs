//! The multi-threaded training driver.
//!
//! Runs any [`SyncAlgorithm`] over a dataset: every iteration draws one
//! batch per learner from a shared epoch-aware sampler (Algorithm 1, lines
//! 5–7), computes the learners' gradients *in parallel threads*, performs
//! the algorithm's synchronisation step, and — at epoch boundaries —
//! evaluates the consensus model on the test set.
//!
//! This driver produces the statistical-efficiency half of every paper
//! experiment: accuracy-per-epoch curves and epochs-to-accuracy (ETA). The
//! hardware-efficiency half (time per epoch) comes from the GPU simulator
//! in the `crossbow` crate; time-to-accuracy is their product.

use crate::algorithm::{AlgoSnapshot, SyncAlgorithm};
use crate::schedule::LrSchedule;
use crossbow_checkpoint::{
    AlgoState, CheckpointError, CheckpointStore, DataCursor, RetentionPolicy, TrainingState,
};
use crossbow_data::{BatchSampler, PartitionPlan, PartitionSampler, SampleSource};
use crossbow_nn::{Network, Scratch};
use crossbow_telemetry::{Shard, SpanKind, Telemetry, HOST_DEVICE};
use crossbow_tensor::stats::WindowedMedian;
use crossbow_tensor::{RngState, Tensor};
use std::path::PathBuf;
use std::sync::Arc;

/// A consumer of freshly synchronised consensus models.
///
/// Installed via [`TrainerConfig::with_publish`], the hook is called with
/// `(applied iterations, consensus model z)` after every `every`-th
/// synchronisation step — the moment the paper's average model is
/// coherent and deployable. The callback runs on the training thread, so
/// it should hand the model off quickly (e.g. swap it into a snapshot
/// registry) rather than do heavy work inline.
#[derive(Clone)]
pub struct PublishHook {
    every: u64,
    hook: PublishFn,
}

/// The callback type a [`PublishHook`] wraps: `(iterations, z)`.
type PublishFn = Arc<dyn Fn(u64, &[f32]) + Send + Sync>;

impl PublishHook {
    /// A hook firing after every `every`-th applied iteration (`every`
    /// is clamped to at least 1).
    pub fn new(every: u64, hook: impl Fn(u64, &[f32]) + Send + Sync + 'static) -> Self {
        PublishHook {
            every: every.max(1),
            hook: Arc::new(hook),
        }
    }

    /// The publication interval in applied iterations.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Invokes the hook unconditionally.
    pub fn publish(&self, iteration: u64, z: &[f32]) {
        (self.hook)(iteration, z);
    }
}

impl std::fmt::Debug for PublishHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PublishHook")
            .field("every", &self.every)
            .finish_non_exhaustive()
    }
}

/// A consumer of the trainer's complete durable state.
///
/// Installed via [`TrainerConfig::with_state_hook`], the hook is called
/// with a freshly captured [`TrainingState`] after every `every`-th
/// applied iteration — the same post-step snapshot a durable checkpoint
/// would persist, so a consumer that later resumes from it (through
/// [`train_from_state_with_source`]) replays the remaining run
/// bit-identically. This is the replication tap: `crossbow-comms`
/// streams these states to warm-standby coordinators.
#[derive(Clone)]
pub struct StateHook {
    every: u64,
    hook: StateFn,
}

/// The callback type a [`StateHook`] wraps.
type StateFn = Arc<dyn Fn(&TrainingState) + Send + Sync>;

impl StateHook {
    /// A hook firing after every `every`-th applied iteration (`every`
    /// is clamped to at least 1).
    pub fn new(every: u64, hook: impl Fn(&TrainingState) + Send + Sync + 'static) -> Self {
        StateHook {
            every: every.max(1),
            hook: Arc::new(hook),
        }
    }

    /// The replication interval in applied iterations.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Invokes the hook unconditionally.
    pub fn publish(&self, state: &TrainingState) {
        (self.hook)(state);
    }
}

impl std::fmt::Debug for StateHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateHook")
            .field("every", &self.every)
            .finish_non_exhaustive()
    }
}

/// Configuration of a training run.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// Batch size per learner (`b` in the paper).
    pub batch_per_learner: usize,
    /// Hard stop after this many epochs.
    pub max_epochs: usize,
    /// Stop early once the median test accuracy of the last 5 epochs
    /// reaches this value — the paper's `TTA(x)` criterion (§5.1).
    pub target_accuracy: Option<f64>,
    /// Learning-rate schedule; changes trigger [`SyncAlgorithm::on_lr_change`].
    pub schedule: LrSchedule,
    /// Weight decay added to every learner gradient.
    pub weight_decay: f32,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Seed for batch order.
    pub seed: u64,
    /// Gradient-computation threads (0 = one per learner, capped at the
    /// machine's parallelism).
    pub threads: usize,
    /// Divergence guard: periodic in-memory checkpoints plus rollback on
    /// non-finite loss or accuracy collapse (`None` = off).
    pub guard: Option<GuardConfig>,
    /// Test hook: treat the losses of this (0-based) iteration as
    /// non-finite, simulating numerical divergence deterministically.
    pub inject_nan_at: Option<u64>,
    /// Durable checkpointing to disk (`None` = off). Unlike the in-memory
    /// divergence guard, these checkpoints survive a host crash; resume
    /// with [`resume`] to continue bit-exactly.
    pub checkpoint: Option<CheckpointConfig>,
    /// Fault injection: simulate a host crash by abandoning the run after
    /// this many *applied* iterations. The partial curve is returned;
    /// durable checkpoints written so far stay on disk for [`resume`].
    pub crash_after: Option<u64>,
    /// Publication hook: periodically hands the consensus model `z` to a
    /// consumer (e.g. a serving snapshot registry) right after a
    /// synchronisation step (`None` = off).
    pub publish: Option<PublishHook>,
    /// State-replication hook: periodically hands the run's complete
    /// [`TrainingState`] to a consumer (e.g. a warm-standby coordinator)
    /// at the end of an applied iteration (`None` = off).
    pub state_hook: Option<StateHook>,
    /// Span/metrics sink: records learning, global-sync, eval,
    /// snapshot-publish and checkpoint-write spans per iteration, and
    /// wires checkpoint size/latency metrics into the store (`None` =
    /// off). Never affects the [`TrainingCurve`]: timing is observed,
    /// not fed back.
    pub telemetry: Option<Telemetry>,
    /// Shard-aware sampling: split the dataset into one contiguous range
    /// per learner and draw lockstep rounds with a [`PartitionSampler`]
    /// (`None` = the classic shared [`BatchSampler`]). The plan's group
    /// count must equal the algorithm's learner count; with faults off,
    /// a partitioned distributed run draws the exact index stream a
    /// partitioned single-process run draws.
    pub partition: Option<PartitionPlan>,
}

/// Settings of durable (on-disk) checkpointing.
///
/// The trainer captures its *complete* state — central and replica
/// models, optimiser momentum, divergence-guard snapshot, the data
/// cursor, every RNG stream, and the curve so far — so a resumed run
/// replays the identical sample/update sequence and produces a
/// bit-identical [`TrainingCurve`].
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Directory the checkpoints live in (created on first save).
    pub dir: PathBuf,
    /// Write a periodic checkpoint every this many iterations (0 turns
    /// periodic checkpoints off).
    pub every: u64,
    /// Also checkpoint at every epoch boundary (after evaluation and any
    /// learning-rate restart), flagged so the retention policy can pin
    /// them.
    pub at_epoch_boundaries: bool,
    /// Retention: keep the newest this many checkpoints (epoch-boundary
    /// checkpoints are always kept).
    pub keep_last: usize,
    /// Recorded into every checkpoint so a resuming session can skip the
    /// auto-tuner and recreate the same parallelism (0 = not recorded).
    pub learners_per_gpu: u32,
}

impl CheckpointConfig {
    /// Checkpoints into `dir` every 50 iterations plus at epoch
    /// boundaries, keeping the last 3.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every: 50,
            at_epoch_boundaries: true,
            keep_last: 3,
            learners_per_gpu: 0,
        }
    }

    /// Sets the periodic interval (builder style).
    pub fn every(mut self, every: u64) -> Self {
        self.every = every;
        self
    }

    /// Sets how many checkpoints to keep (builder style).
    pub fn keep_last(mut self, keep_last: usize) -> Self {
        self.keep_last = keep_last;
        self
    }

    /// Opens (creating if necessary) the checkpoint store this
    /// configuration points at.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] when the directory cannot be created or
    /// read.
    pub fn store(&self) -> Result<CheckpointStore, CheckpointError> {
        CheckpointStore::open(
            &self.dir,
            RetentionPolicy {
                keep_last: self.keep_last,
                keep_epoch_boundaries: true,
            },
        )
    }
}

/// Settings of the divergence guard.
///
/// The guard keeps a periodic in-memory checkpoint of the algorithm's
/// full state (`z`, replicas, momentum — an [`AlgoSnapshot`]). When an
/// iteration produces a non-finite loss, or the test accuracy collapses
/// below the best seen, it restores the checkpoint and restarts the
/// averaging process through the §3.2 restart path
/// ([`SyncAlgorithm::on_lr_change`]).
#[derive(Clone, Copy, Debug)]
pub struct GuardConfig {
    /// Refresh the checkpoint every this many iterations.
    pub checkpoint_every: u64,
    /// Roll back when epoch-end test accuracy drops more than this many
    /// points below the best epoch so far.
    pub collapse_drop: f64,
    /// Stop rolling back (and train on unguarded) after this many
    /// rollbacks, so a fundamentally broken run still terminates.
    pub max_rollbacks: u32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            checkpoint_every: 50,
            collapse_drop: 0.25,
            max_rollbacks: 4,
        }
    }
}

impl TrainerConfig {
    /// A sensible starting point for the synthetic tasks.
    pub fn new(batch_per_learner: usize, max_epochs: usize) -> Self {
        TrainerConfig {
            batch_per_learner,
            max_epochs,
            target_accuracy: None,
            schedule: LrSchedule::Constant { lr: 0.05 },
            weight_decay: 1e-4,
            eval_batch: 256,
            seed: 42,
            threads: 0,
            guard: None,
            inject_nan_at: None,
            checkpoint: None,
            crash_after: None,
            publish: None,
            state_hook: None,
            telemetry: None,
            partition: None,
        }
    }

    /// Sets the target accuracy (builder style).
    pub fn with_target(mut self, target: f64) -> Self {
        self.target_accuracy = Some(target);
        self
    }

    /// Sets the schedule (builder style).
    pub fn with_schedule(mut self, schedule: LrSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the divergence guard (builder style).
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Enables durable checkpointing (builder style).
    pub fn with_checkpointing(mut self, checkpoint: CheckpointConfig) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Injects a simulated host crash (builder style).
    pub fn with_crash_after(mut self, iterations: u64) -> Self {
        self.crash_after = Some(iterations);
        self
    }

    /// Installs a consensus-model publication hook (builder style).
    pub fn with_publish(mut self, publish: PublishHook) -> Self {
        self.publish = Some(publish);
        self
    }

    /// Installs a state-replication hook (builder style).
    pub fn with_state_hook(mut self, hook: StateHook) -> Self {
        self.state_hook = Some(hook);
        self
    }

    /// Attaches a telemetry sink (builder style).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Enables partitioned (shard-aware) sampling (builder style).
    pub fn with_partition(mut self, plan: PartitionPlan) -> Self {
        self.partition = Some(plan);
        self
    }
}

/// The result of a training run.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainingCurve {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Test accuracy of the consensus model after each epoch.
    pub epoch_accuracy: Vec<f64>,
    /// Mean training loss of each epoch.
    pub epoch_loss: Vec<f32>,
    /// First epoch (1-based) at which the median test accuracy of the
    /// last 5 epochs reached the target.
    pub epochs_to_target: Option<usize>,
    /// Total synchronisation iterations executed.
    pub iterations: u64,
    /// Total training samples consumed.
    pub samples_processed: u64,
    /// Accuracy after the final epoch.
    pub final_accuracy: f64,
    /// Divergence-guard rollbacks performed during the run.
    pub rollbacks: u32,
}

impl TrainingCurve {
    /// Epochs run.
    pub fn epochs(&self) -> usize {
        self.epoch_accuracy.len()
    }

    /// Best accuracy along the curve.
    pub fn best_accuracy(&self) -> f64 {
        self.epoch_accuracy.iter().copied().fold(0.0f64, f64::max)
    }
}

/// How a [`GradientSource`] round ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundStatus {
    /// Every learner's gradient and loss were produced.
    Done,
    /// Cluster membership changed mid-round (a remote learner was evicted
    /// or rejoined): `algo` already reflects the new learner count, the
    /// drawn batches were discarded, and the caller must re-draw and
    /// retry the iteration. Local sources never return this.
    Resized,
}

/// One learner's batch for one round: the gathered payload plus the
/// global sample indices it came from. A local source consumes the
/// tensors; a remote source whose workers hold the dataset themselves
/// (shard-partitioned `dist-train`) ships just the indices and lets the
/// worker gather locally — same round, a fraction of the bytes.
#[derive(Clone, Debug)]
pub struct LearnerBatch {
    /// Batched images, `[b, …sample dims]`.
    pub images: Tensor,
    /// Per-sample class labels.
    pub labels: Vec<usize>,
    /// Global dataset indices the batch was gathered from.
    pub indices: Vec<usize>,
}

/// Where the per-learner gradients of one iteration come from.
///
/// Every iteration the training loop draws one batch per learner and asks
/// its source to fill one gradient and one loss per learner, each
/// evaluated against the matching replica of `algo` (`grads[j]` against
/// `algo.replica(j)` on `batches[j]`). [`LocalGradients`] computes them in
/// in-process threads — the classic single-node driver; `crossbow-comms`
/// provides a remote source whose learners are worker processes reached
/// over TCP. Because everything else (sampling, synchronisation,
/// evaluation, checkpointing) stays in this loop, a remote run with a
/// healthy cluster produces a bit-identical [`TrainingCurve`].
pub trait GradientSource {
    /// Fills `grads[j]`/`losses[j]` for every learner `j` in
    /// `0..algo.k()`. May instead resize the algorithm's learner group
    /// and return [`RoundStatus::Resized`]; gradients are then discarded.
    fn round(
        &mut self,
        algo: &mut dyn SyncAlgorithm,
        batches: &[LearnerBatch],
        grads: &mut [Vec<f32>],
        losses: &mut [f32],
    ) -> RoundStatus;
}

/// Trains `algo` on `train_set`, evaluating on `test_set` at epoch ends.
///
/// # Panics
/// Panics on configuration/dataset/network mismatches.
pub fn train(
    net: &Network,
    train_set: &dyn SampleSource,
    test_set: &dyn SampleSource,
    algo: &mut dyn SyncAlgorithm,
    config: &TrainerConfig,
) -> TrainingCurve {
    let mut source = LocalGradients::new(net, algo.k(), config);
    train_with_source(net, train_set, test_set, algo, config, &mut source)
}

/// [`train`] with an explicit gradient source (e.g. a remote cluster).
///
/// # Panics
/// Panics on configuration/dataset/network mismatches.
pub fn train_with_source(
    net: &Network,
    train_set: &dyn SampleSource,
    test_set: &dyn SampleSource,
    algo: &mut dyn SyncAlgorithm,
    config: &TrainerConfig,
    source: &mut dyn GradientSource,
) -> TrainingCurve {
    let store = config
        .checkpoint
        .as_ref()
        .map(|ckpt| ckpt.store().expect("cannot open the checkpoint directory"))
        .map(|s| attach_metrics(s, config));
    run(net, train_set, test_set, algo, config, None, store, source)
}

/// Wires the telemetry metrics registry into a checkpoint store so saves
/// report bytes/latency.
fn attach_metrics(store: CheckpointStore, config: &TrainerConfig) -> CheckpointStore {
    match &config.telemetry {
        Some(t) => store.with_metrics(Arc::clone(&t.metrics)),
        None => store,
    }
}

/// Resumes training from the newest valid checkpoint in
/// `config.checkpoint.dir`, or trains from scratch when none is usable.
///
/// A checkpoint is used only when it matches the run: same seed, same
/// algorithm, same parameter count. The resumed run replays the exact
/// sample and update stream the interrupted run would have produced, so
/// its [`TrainingCurve`] is bit-identical to an uninterrupted run of the
/// same configuration. When *every* checkpoint on disk is corrupt the run
/// starts fresh (the durable state is unusable, not merely absent).
///
/// # Errors
/// [`CheckpointError::Io`] when the checkpoint directory cannot be
/// created or read.
///
/// # Panics
/// Panics on configuration/dataset/network mismatches.
pub fn resume(
    net: &Network,
    train_set: &dyn SampleSource,
    test_set: &dyn SampleSource,
    algo: &mut dyn SyncAlgorithm,
    config: &TrainerConfig,
) -> Result<TrainingCurve, CheckpointError> {
    let mut source = LocalGradients::new(net, algo.k(), config);
    resume_with_source(net, train_set, test_set, algo, config, &mut source)
}

/// [`resume`] with an explicit gradient source (e.g. a remote cluster).
///
/// # Errors
/// [`CheckpointError::Io`] when the checkpoint directory cannot be
/// created or read.
///
/// # Panics
/// Panics on configuration/dataset/network mismatches.
pub fn resume_with_source(
    net: &Network,
    train_set: &dyn SampleSource,
    test_set: &dyn SampleSource,
    algo: &mut dyn SyncAlgorithm,
    config: &TrainerConfig,
    source: &mut dyn GradientSource,
) -> Result<TrainingCurve, CheckpointError> {
    let mut store = None;
    let mut restored = None;
    if let Some(ckpt) = &config.checkpoint {
        let opened = ckpt.store()?;
        restored = match opened.load_latest() {
            Ok(Some(loaded)) => {
                let st = loaded.state;
                let fits = st.seed == config.seed
                    && st.algorithm == algo.name()
                    && st.algo.center.len() == algo.param_len()
                    && !st.rngs.is_empty();
                fits.then_some(st)
            }
            Ok(None) => None,
            // Every file failed validation: durable state exists but none
            // of it is trustworthy — start over rather than guess.
            Err(CheckpointError::Corrupt(_)) => None,
            Err(e @ CheckpointError::Io(_)) => return Err(e),
        };
        store = Some(attach_metrics(opened, config));
    }
    Ok(run(
        net, train_set, test_set, algo, config, restored, store, source,
    ))
}

/// [`train_with_source`] seeded from an in-memory [`TrainingState`] — the
/// warm-standby takeover path: a new coordinator resumes from the state
/// the old primary streamed to it (via [`StateHook`]) instead of from a
/// durable checkpoint file. `state: None` trains from scratch.
///
/// The state is post-step consistent, so the continued run replays the
/// exact sample and update stream the interrupted run would have
/// produced: curve and model are bit-identical to an undisturbed run.
///
/// # Panics
/// Panics on configuration/dataset/network mismatches, or when `state`
/// does not fit the run (seed, algorithm, or parameter-count mismatch) —
/// a takeover that silently retrained from scratch would violate the
/// failover bit-identity invariant.
pub fn train_from_state_with_source(
    net: &Network,
    train_set: &dyn SampleSource,
    test_set: &dyn SampleSource,
    algo: &mut dyn SyncAlgorithm,
    config: &TrainerConfig,
    state: Option<TrainingState>,
    source: &mut dyn GradientSource,
) -> TrainingCurve {
    if let Some(st) = &state {
        assert!(
            st.seed == config.seed
                && st.algorithm == algo.name()
                && st.algo.center.len() == algo.param_len()
                && !st.rngs.is_empty(),
            "replicated state does not fit this run (seed {} vs {}, algorithm {:?} vs {:?}, \
             params {} vs {})",
            st.seed,
            config.seed,
            st.algorithm,
            algo.name(),
            st.algo.center.len(),
            algo.param_len(),
        );
    }
    let store = config
        .checkpoint
        .as_ref()
        .map(|ckpt| ckpt.store().expect("cannot open the checkpoint directory"))
        .map(|s| attach_metrics(s, config));
    run(net, train_set, test_set, algo, config, state, store, source)
}

/// Mutable loop state beyond the curve itself — bundled so the
/// checkpoint capture sees one coherent picture of the run.
struct Progress {
    /// Counts every loop pass (unlike `curve.iterations`, which counts
    /// applied steps), so the NaN-injection hook fires exactly once.
    attempt: u64,
    current_epoch: usize,
    epoch_loss_sum: f64,
    epoch_loss_count: u64,
    best_accuracy: f64,
    /// The divergence guard's in-memory rollback snapshot.
    guard: Option<AlgoSnapshot>,
}

fn snapshot_to_state(snap: &AlgoSnapshot) -> AlgoState {
    AlgoState {
        center: snap.center.clone(),
        center_prev: snap.center_prev.clone(),
        replicas: snap.replicas.clone(),
        aux: snap.aux.clone(),
        iter: snap.iter,
    }
}

fn state_to_snapshot(state: &AlgoState) -> AlgoSnapshot {
    AlgoSnapshot {
        center: state.center.clone(),
        center_prev: state.center_prev.clone(),
        replicas: state.replicas.clone(),
        aux: state.aux.clone(),
        iter: state.iter,
    }
}

/// The trainer's data-order engine: either the classic shared
/// [`BatchSampler`] (one global shuffle, `k` draws per iteration) or a
/// [`PartitionSampler`] (one contiguous range per learner, lockstep
/// rounds). Both expose the same `(epoch, position)` cursor and exact
/// seek, so checkpoint capture and restore are mode-agnostic.
enum Sampling {
    Single(BatchSampler),
    Parts(PartitionSampler),
}

impl Sampling {
    /// Draws one index list per learner.
    fn next_round(&mut self, k: usize) -> Vec<Vec<usize>> {
        match self {
            Sampling::Single(s) => (0..k).map(|_| s.next_batch().0).collect(),
            Sampling::Parts(p) => {
                let (round, _) = p.next_round();
                debug_assert_eq!(round.len(), k, "one partition group per learner");
                round
            }
        }
    }

    fn epoch(&self) -> usize {
        match self {
            Sampling::Single(s) => s.epoch(),
            Sampling::Parts(p) => p.epoch(),
        }
    }

    fn cursor(&self) -> (usize, usize) {
        match self {
            Sampling::Single(s) => s.cursor(),
            Sampling::Parts(p) => p.cursor(),
        }
    }

    fn seek(&mut self, epoch: usize, pos: usize) {
        match self {
            Sampling::Single(s) => s.seek(epoch, pos),
            Sampling::Parts(p) => p.seek(epoch, pos),
        }
    }

    /// RNG streams in checkpoint order: the single sampler stream, or one
    /// stream per partition group.
    fn rng_states(&self) -> Vec<RngState> {
        match self {
            Sampling::Single(s) => vec![s.rng_state()],
            Sampling::Parts(p) => p.rng_states(),
        }
    }

    /// Partition groups, 0 when unpartitioned — the value the checkpoint
    /// cursor records so a resume refuses a sampling-mode mismatch.
    fn groups(&self) -> u64 {
        match self {
            Sampling::Single(_) => 0,
            Sampling::Parts(p) => p.groups() as u64,
        }
    }
}

/// Captures the run's complete durable state. Returns `None` when the
/// algorithm does not support snapshots (nothing useful to persist).
fn capture_state(
    algo: &dyn SyncAlgorithm,
    sampler: &Sampling,
    curve: &TrainingCurve,
    config: &TrainerConfig,
    progress: &Progress,
) -> Option<TrainingState> {
    let snap = algo.snapshot()?;
    let (epoch, batch) = sampler.cursor();
    Some(TrainingState {
        seed: config.seed,
        algorithm: algo.name().to_string(),
        iterations: curve.iterations,
        samples_processed: curve.samples_processed,
        attempt: progress.attempt,
        current_epoch: progress.current_epoch as u64,
        epoch_loss_sum: progress.epoch_loss_sum,
        epoch_loss_count: progress.epoch_loss_count,
        best_accuracy: progress.best_accuracy,
        rollbacks: curve.rollbacks,
        epochs_to_target: curve.epochs_to_target.map(|e| e as u64),
        epoch_accuracy: curve.epoch_accuracy.clone(),
        epoch_loss: curve.epoch_loss.clone(),
        cursor: DataCursor {
            epoch: epoch as u64,
            batch: batch as u64,
            groups: sampler.groups(),
        },
        algo: snapshot_to_state(&snap),
        guard: progress.guard.as_ref().map(snapshot_to_state),
        rngs: sampler.rng_states(),
        learners_per_gpu: config.checkpoint.as_ref().map_or(0, |c| c.learners_per_gpu),
    })
}

#[allow(clippy::too_many_arguments)]
fn save_checkpoint(
    store: &CheckpointStore,
    algo: &dyn SyncAlgorithm,
    sampler: &Sampling,
    curve: &TrainingCurve,
    config: &TrainerConfig,
    progress: &Progress,
    epoch_boundary: bool,
    shard: &mut Shard,
) {
    if let Some(state) = capture_state(algo, sampler, curve, config, progress) {
        let t = shard.now_ns();
        store
            .save(&state, epoch_boundary)
            .expect("checkpoint write failed");
        shard.close(
            SpanKind::CheckpointWrite,
            "checkpoint-write",
            t,
            HOST_DEVICE,
            0,
            Some(curve.iterations),
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn run(
    net: &Network,
    train_set: &dyn SampleSource,
    test_set: &dyn SampleSource,
    algo: &mut dyn SyncAlgorithm,
    config: &TrainerConfig,
    restored: Option<TrainingState>,
    store: Option<CheckpointStore>,
    source: &mut dyn GradientSource,
) -> TrainingCurve {
    assert_eq!(
        algo.param_len(),
        net.param_len(),
        "algorithm replicas do not match the network"
    );
    assert_eq!(
        train_set.sample_len(),
        net.input_shape().len(),
        "dataset does not match the network input"
    );
    assert!(config.max_epochs > 0, "need at least one epoch");
    let mut sampler = match config.partition {
        Some(plan) => {
            assert_eq!(
                plan.n(),
                train_set.len(),
                "partition plan does not cover the dataset"
            );
            assert_eq!(plan.groups(), algo.k(), "one partition group per learner");
            Sampling::Parts(PartitionSampler::new(
                plan,
                config.batch_per_learner,
                config.seed,
            ))
        }
        None => Sampling::Single(BatchSampler::new(
            train_set.len(),
            config.batch_per_learner,
            true,
            config.seed,
        )),
    };
    let (test_images, test_labels) = test_set
        .eval_tensors()
        .expect("test set must gather cleanly");
    let recorder = config
        .telemetry
        .as_ref()
        .map_or_else(crossbow_telemetry::Recorder::disabled, |t| {
            Arc::clone(&t.recorder)
        });
    let mut shard = recorder.shard();

    let mut curve = TrainingCurve {
        algorithm: algo.name(),
        epoch_accuracy: Vec::new(),
        epoch_loss: Vec::new(),
        epochs_to_target: None,
        iterations: 0,
        samples_processed: 0,
        final_accuracy: 0.0,
        rollbacks: 0,
    };
    let mut median5 = WindowedMedian::new(5);
    let mut progress = Progress {
        attempt: 0,
        current_epoch: 0,
        epoch_loss_sum: 0.0,
        epoch_loss_count: 0,
        best_accuracy: 0.0,
        // Divergence guard: the initial model is the first checkpoint, so
        // a run that diverges immediately can still roll back somewhere.
        guard: config.guard.and_then(|_| algo.snapshot()),
    };

    if let Some(st) = restored {
        assert!(
            algo.restore(&state_to_snapshot(&st.algo)),
            "checkpoint does not fit this algorithm"
        );
        assert_eq!(
            st.cursor.groups,
            sampler.groups(),
            "checkpoint partitioning does not match this run: the index streams of \
             partitioned and unpartitioned sampling differ"
        );
        sampler.seek(st.cursor.epoch as usize, st.cursor.batch as usize);
        // The sampler replays its RNG streams from the seed; every
        // replayed stream must land exactly where the interrupted run
        // left it.
        assert_eq!(
            sampler.rng_states(),
            st.rngs,
            "checkpoint data cursor is inconsistent with the sampler stream"
        );
        curve.iterations = st.iterations;
        curve.samples_processed = st.samples_processed;
        curve.epoch_accuracy.clone_from(&st.epoch_accuracy);
        curve.epoch_loss.clone_from(&st.epoch_loss);
        curve.epochs_to_target = st.epochs_to_target.map(|e| e as usize);
        curve.rollbacks = st.rollbacks;
        let window = curve.epoch_accuracy.len().saturating_sub(5);
        for &acc in &curve.epoch_accuracy[window..] {
            median5.push(acc);
        }
        progress.attempt = st.attempt;
        progress.current_epoch = st.current_epoch as usize;
        progress.epoch_loss_sum = st.epoch_loss_sum;
        progress.epoch_loss_count = st.epoch_loss_count;
        progress.best_accuracy = st.best_accuracy;
        progress.guard = match &st.guard {
            Some(g) => Some(state_to_snapshot(g)),
            None => config.guard.and_then(|_| algo.snapshot()),
        };
        // A checkpoint written at completion resumes to a finished run.
        let done_target = config.target_accuracy.is_some() && curve.epochs_to_target.is_some();
        if curve.epoch_accuracy.len() >= config.max_epochs || done_target {
            curve.final_accuracy = curve.epoch_accuracy.last().copied().unwrap_or(0.0);
            return curve;
        }
    }

    // Pre-build the per-learner gradient vectors once; the loop below then
    // runs allocation-flat (§4.5) as long as the learner count is stable
    // (it only changes when a remote source resizes the cluster).
    let plen = algo.param_len();
    let mut grads: Vec<Vec<f32>> = Vec::new();
    let mut losses: Vec<f32> = Vec::new();

    loop {
        let k = algo.k();
        if grads.len() != k {
            grads.resize_with(k, || vec![0.0; plen]);
            losses.resize(k, 0.0);
        }
        // Draw one batch per learner.
        let t_fetch = shard.now_ns();
        let batches: Vec<LearnerBatch> = sampler
            .next_round(k)
            .into_iter()
            .map(|indices| {
                let (images, labels) = train_set
                    .gather(&indices)
                    .expect("sampler indices are in range by construction");
                LearnerBatch {
                    images,
                    labels,
                    indices,
                }
            })
            .collect();
        shard.close(
            SpanKind::BatchFetch,
            "batch-fetch",
            t_fetch,
            HOST_DEVICE,
            0,
            Some(curve.iterations),
        );
        let lr = config.schedule.lr_at(progress.current_epoch);
        let t_learn = shard.now_ns();
        let status = source.round(algo, &batches, &mut grads, &mut losses);
        shard.close(
            SpanKind::Learn,
            "learn",
            t_learn,
            HOST_DEVICE,
            0,
            Some(curve.iterations),
        );
        if status == RoundStatus::Resized {
            // Membership changed under us: the algorithm already holds the
            // new learner group; redo the iteration at the new size. Under
            // partitioned sampling the group count just changed too, so
            // rebuild the partition over the new learner count, restarting
            // the current shuffle epoch — faults make the index stream
            // diverge from an undisturbed run by design (the bit-identity
            // claim holds with faults off).
            if let Sampling::Parts(p) = &mut sampler {
                let (epoch, _) = p.cursor();
                let mut rebuilt = PartitionSampler::new(
                    PartitionPlan::even(train_set.len(), algo.k()),
                    config.batch_per_learner,
                    config.seed,
                );
                rebuilt.seek(epoch, 0);
                *p = rebuilt;
            }
            continue;
        }
        let diverged =
            config.inject_nan_at == Some(progress.attempt) || losses.iter().any(|l| !l.is_finite());
        progress.attempt += 1;
        if diverged {
            if let Some(g) = config.guard {
                if curve.rollbacks < g.max_rollbacks {
                    // Roll back to the checkpoint and restart averaging
                    // from its `z` via the §3.2 restart path. The poisoned
                    // gradients are discarded, not applied.
                    if let Some(snap) = &progress.guard {
                        if algo.restore(snap) {
                            algo.on_lr_change();
                        }
                    }
                    curve.rollbacks += 1;
                    // The restored model scores lower than the pre-fault
                    // best; rebuild the collapse baseline from here so the
                    // rollback itself is not mistaken for a collapse.
                    progress.best_accuracy = 0.0;
                    continue;
                }
            }
            // Unguarded (or out of rollbacks): fall through, preserving
            // the historic fail-loudly behaviour.
        }
        for &l in &losses {
            progress.epoch_loss_sum += f64::from(l);
            progress.epoch_loss_count += 1;
        }
        let t_sync = shard.now_ns();
        algo.step(&grads, lr);
        shard.close(
            SpanKind::GlobalSync,
            "global-sync",
            t_sync,
            HOST_DEVICE,
            0,
            Some(curve.iterations),
        );
        curve.iterations += 1;
        curve.samples_processed += (k * config.batch_per_learner) as u64;
        if let Some(hook) = &config.publish {
            // Right after the synchronisation step the consensus model is
            // coherent — this is the paper's deployable average model `z`.
            if curve.iterations.is_multiple_of(hook.every()) {
                let t_pub = shard.now_ns();
                hook.publish(curve.iterations, algo.consensus());
                shard.close(
                    SpanKind::SnapshotPublish,
                    "snapshot-publish",
                    t_pub,
                    HOST_DEVICE,
                    0,
                    Some(curve.iterations),
                );
            }
        }
        if let Some(g) = config.guard {
            if curve.iterations.is_multiple_of(g.checkpoint_every) {
                if let Some(snap) = algo.snapshot() {
                    progress.guard = Some(snap);
                }
            }
        }

        let mut saved_this_iter = false;
        if sampler.epoch() > progress.current_epoch {
            // Epoch boundary: evaluate, record, handle schedule changes.
            let t_eval = shard.now_ns();
            let acc = net.evaluate(
                algo.consensus(),
                &test_images,
                &test_labels,
                config.eval_batch,
            );
            shard.close(
                SpanKind::Eval,
                "eval",
                t_eval,
                HOST_DEVICE,
                0,
                Some(curve.iterations),
            );
            curve.epoch_accuracy.push(acc);
            curve.epoch_loss.push(if progress.epoch_loss_count > 0 {
                (progress.epoch_loss_sum / progress.epoch_loss_count as f64) as f32
            } else {
                0.0
            });
            progress.epoch_loss_sum = 0.0;
            progress.epoch_loss_count = 0;
            if let Some(g) = config.guard {
                // Accuracy collapse (e.g. silent numeric corruption):
                // restore the checkpoint and restart averaging.
                if acc + g.collapse_drop < progress.best_accuracy
                    && curve.rollbacks < g.max_rollbacks
                {
                    if let Some(snap) = &progress.guard {
                        if algo.restore(snap) {
                            algo.on_lr_change();
                        }
                    }
                    curve.rollbacks += 1;
                    progress.best_accuracy = 0.0;
                }
            }
            progress.best_accuracy = progress.best_accuracy.max(acc);
            median5.push(acc);
            let finished_epoch = curve.epoch_accuracy.len();
            if let Some(target) = config.target_accuracy {
                if curve.epochs_to_target.is_none() {
                    if let Some(m) = median5.median() {
                        if m >= target {
                            curve.epochs_to_target = Some(finished_epoch);
                        }
                    }
                }
            }
            let done_target = config.target_accuracy.is_some() && curve.epochs_to_target.is_some();
            if finished_epoch >= config.max_epochs || done_target {
                curve.final_accuracy = acc;
                // A final checkpoint: resuming a finished run is a no-op
                // instead of silently training past its stopping point.
                if let Some(store) = &store {
                    save_checkpoint(
                        store, algo, &sampler, &curve, config, &progress, true, &mut shard,
                    );
                }
                return curve;
            }
            progress.current_epoch = sampler.epoch();
            if config.schedule.changes_at(progress.current_epoch) {
                algo.on_lr_change();
            }
            // Saved *after* the learning-rate restart so the restored
            // state reflects the post-restart algorithm, not a hybrid.
            if let (Some(store), Some(ckpt)) = (&store, &config.checkpoint) {
                if ckpt.at_epoch_boundaries {
                    save_checkpoint(
                        store, algo, &sampler, &curve, config, &progress, true, &mut shard,
                    );
                    saved_this_iter = true;
                }
            }
        }
        if !saved_this_iter {
            if let (Some(store), Some(ckpt)) = (&store, &config.checkpoint) {
                if ckpt.every > 0 && curve.iterations.is_multiple_of(ckpt.every) {
                    save_checkpoint(
                        store, algo, &sampler, &curve, config, &progress, false, &mut shard,
                    );
                }
            }
        }
        if let Some(hook) = &config.state_hook {
            // End-of-iteration replication tap: the captured state is the
            // same post-step snapshot a durable checkpoint would persist
            // (cursor points at the next batch), so a standby resuming
            // from it replays the rest of the run bit-identically.
            if curve.iterations.is_multiple_of(hook.every()) {
                if let Some(state) = capture_state(algo, &sampler, &curve, config, &progress) {
                    hook.publish(&state);
                }
            }
        }
        if config.crash_after == Some(curve.iterations) {
            // Simulated host crash: abandon the run mid-flight. Durable
            // checkpoints survive on disk; the returned curve is partial.
            curve.final_accuracy = curve.epoch_accuracy.last().copied().unwrap_or(0.0);
            return curve;
        }
    }
}

/// The in-process [`GradientSource`]: one plan-pre-warmed [`Scratch`] per
/// gradient thread, built once before the training loop so steady-state
/// iterations reuse every buffer instead of reallocating them (§4.5
/// executable memory plan).
pub struct LocalGradients<'a> {
    net: &'a Network,
    weight_decay: f32,
    scratches: Vec<Scratch>,
}

impl<'a> LocalGradients<'a> {
    /// A local source computing `k` learners' gradients on `net` with the
    /// thread/batch settings of `config`.
    pub fn new(net: &'a Network, k: usize, config: &TrainerConfig) -> Self {
        let hw = std::thread::available_parallelism().map_or(4, |p| p.get());
        let threads = if config.threads == 0 {
            k.min(hw)
        } else {
            config.threads.min(k)
        }
        .max(1);
        let plan = net.plan(config.batch_per_learner.max(1));
        // Cores left idle by the learner threads serve packed parallel
        // GEMMs; `gemm_parallel` is bit-identical to the serial kernel,
        // so this does not perturb training curves.
        let gemm_threads = (hw / threads).max(1);
        let scratches = (0..threads)
            .map(|_| {
                let mut s = net.scratch_with_plan(&plan);
                s.set_parallelism(gemm_threads);
                s
            })
            .collect();
        LocalGradients {
            net,
            weight_decay: config.weight_decay,
            scratches,
        }
    }
}

impl GradientSource for LocalGradients<'_> {
    /// Computes one gradient per learner, distributing learners across the
    /// source's threads. Gradients land in `grads` (fully overwritten),
    /// per-batch training losses in `losses`.
    fn round(
        &mut self,
        algo: &mut dyn SyncAlgorithm,
        batches: &[LearnerBatch],
        grads: &mut [Vec<f32>],
        losses: &mut [f32],
    ) -> RoundStatus {
        let k = batches.len();
        debug_assert_eq!(k, grads.len(), "one gradient lane per learner");
        let net = self.net;
        let replicas: Vec<&[f32]> = (0..k).map(|j| algo.replica(j)).collect();
        let threads = self.scratches.len();
        let wd = self.weight_decay;
        if threads <= 1 {
            let scratch = &mut self.scratches[0];
            for j in 0..k {
                let batch = &batches[j];
                let (loss, _) = net.loss_and_grad(
                    replicas[j],
                    &batch.images,
                    &batch.labels,
                    &mut grads[j],
                    scratch,
                );
                losses[j] = loss;
                if wd != 0.0 {
                    crossbow_tensor::ops::axpy(wd, replicas[j], &mut grads[j]);
                }
            }
        } else {
            // Hand each thread an interleaved subset of learners.
            let mut grad_slots: Vec<(usize, &mut Vec<f32>, &mut f32)> = grads
                .iter_mut()
                .zip(losses.iter_mut())
                .enumerate()
                .map(|(j, (g, l))| (j, g, l))
                .collect();
            std::thread::scope(|scope| {
                let mut per_thread: Vec<Vec<(usize, &mut Vec<f32>, &mut f32)>> =
                    (0..threads).map(|_| Vec::new()).collect();
                for slot in grad_slots.drain(..) {
                    per_thread[slot.0 % threads].push(slot);
                }
                for (thread_slots, scratch) in per_thread.into_iter().zip(self.scratches.iter_mut())
                {
                    let replicas = &replicas;
                    scope.spawn(move || {
                        for (j, grad, loss) in thread_slots {
                            let batch = &batches[j];
                            let (l, _) = net.loss_and_grad(
                                replicas[j],
                                &batch.images,
                                &batch.labels,
                                grad,
                                scratch,
                            );
                            *loss = l;
                            if wd != 0.0 {
                                crossbow_tensor::ops::axpy(wd, replicas[j], grad);
                            }
                        }
                    });
                }
            });
        }
        RoundStatus::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::SgdConfig;
    use crate::sma::{Sma, SmaConfig};
    use crate::ssgd::SSgd;
    use crossbow_data::synth::gaussian_mixture;
    use crossbow_nn::zoo::mlp;
    use crossbow_tensor::Rng;

    fn setup() -> (Network, crossbow_data::Dataset, crossbow_data::Dataset) {
        let net = mlp(6, &[16], 4);
        let data = gaussian_mixture(4, 6, 480, 0.35, 7);
        let (train_set, test_set) = data.split_at(400).expect("split in range");
        (net, train_set, test_set)
    }

    #[test]
    fn ssgd_learns_the_mixture() {
        let (net, train_set, test_set) = setup();
        let init = net.init_params(&mut Rng::new(1));
        let mut algo = SSgd::new(init, 2, SgdConfig::paper_default());
        let curve = train(
            &net,
            &train_set,
            &test_set,
            &mut algo,
            &TrainerConfig::new(8, 12),
        );
        assert_eq!(curve.epochs(), 12);
        assert!(
            curve.final_accuracy > 0.9,
            "accuracy {}",
            curve.final_accuracy
        );
        assert!(curve.iterations > 0);
    }

    #[test]
    fn sma_learns_the_mixture() {
        let (net, train_set, test_set) = setup();
        let init = net.init_params(&mut Rng::new(1));
        let mut algo = Sma::new(init, 4, SmaConfig::default());
        let curve = train(
            &net,
            &train_set,
            &test_set,
            &mut algo,
            &TrainerConfig::new(8, 12),
        );
        assert!(
            curve.final_accuracy > 0.9,
            "accuracy {}",
            curve.final_accuracy
        );
        assert_eq!(curve.algorithm, "sma");
    }

    #[test]
    fn target_stops_early_with_median_rule() {
        let (net, train_set, test_set) = setup();
        let init = net.init_params(&mut Rng::new(1));
        let mut algo = SSgd::new(init, 2, SgdConfig::paper_default());
        let curve = train(
            &net,
            &train_set,
            &test_set,
            &mut algo,
            &TrainerConfig::new(8, 60).with_target(0.85),
        );
        let eta = curve.epochs_to_target.expect("should reach 85%");
        // Median-of-5 needs at least 5 epochs... but the window fills
        // gradually; the rule fires no earlier than epoch 1.
        assert!(eta >= 1 && eta <= curve.epochs());
        assert!(curve.epochs() < 60, "stopped early");
    }

    #[test]
    fn deterministic_given_seed_single_thread() {
        let (net, train_set, test_set) = setup();
        let run = || {
            let init = net.init_params(&mut Rng::new(3));
            let mut algo = Sma::new(init, 2, SmaConfig::default());
            let mut cfg = TrainerConfig::new(8, 3).with_seed(11);
            cfg.threads = 1;
            train(&net, &train_set, &test_set, &mut algo, &cfg)
        };
        let a = run();
        let b = run();
        assert_eq!(a.epoch_accuracy, b.epoch_accuracy);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn parallel_threads_match_single_thread() {
        // Gradient computation is read-only on replicas; threading must
        // not change the numbers.
        let (net, train_set, test_set) = setup();
        let run = |threads: usize| {
            let init = net.init_params(&mut Rng::new(3));
            let mut algo = Sma::new(init, 4, SmaConfig::default());
            let mut cfg = TrainerConfig::new(8, 2).with_seed(11);
            cfg.threads = threads;
            train(&net, &train_set, &test_set, &mut algo, &cfg)
        };
        let single = run(1);
        let multi = run(4);
        assert_eq!(single.epoch_accuracy, multi.epoch_accuracy);
    }

    #[test]
    fn samples_processed_counts_all_learners() {
        let (net, train_set, test_set) = setup();
        let init = net.init_params(&mut Rng::new(1));
        let mut algo = Sma::new(init, 4, SmaConfig::default());
        let curve = train(
            &net,
            &train_set,
            &test_set,
            &mut algo,
            &TrainerConfig::new(8, 2),
        );
        assert_eq!(curve.samples_processed, curve.iterations * 4 * 8);
    }

    #[test]
    fn injected_nan_rolls_back_and_still_converges() {
        let (net, train_set, test_set) = setup();
        let init = net.init_params(&mut Rng::new(1));
        let mut algo = Sma::new(init, 4, SmaConfig::default());
        let cfg = TrainerConfig::new(8, 12).with_guard(GuardConfig::default());
        let cfg = TrainerConfig {
            inject_nan_at: Some(30),
            ..cfg
        };
        let curve = train(&net, &train_set, &test_set, &mut algo, &cfg);
        assert_eq!(curve.rollbacks, 1, "one rollback for one injection");
        assert!(
            curve.final_accuracy > 0.9,
            "recovered run reaches accuracy, got {}",
            curve.final_accuracy
        );
    }

    #[test]
    fn unguarded_nan_passes_through() {
        // Without the guard the historic behaviour is preserved: the
        // poisoned loss is recorded, nothing rolls back.
        let (net, train_set, test_set) = setup();
        let init = net.init_params(&mut Rng::new(1));
        let mut algo = Sma::new(init, 2, SmaConfig::default());
        let cfg = TrainerConfig {
            inject_nan_at: Some(3),
            ..TrainerConfig::new(8, 2)
        };
        let curve = train(&net, &train_set, &test_set, &mut algo, &cfg);
        assert_eq!(curve.rollbacks, 0);
    }

    #[test]
    fn rollbacks_are_capped() {
        let (net, train_set, test_set) = setup();
        let init = net.init_params(&mut Rng::new(1));
        let mut algo = Sma::new(init, 2, SmaConfig::default());
        // Every iteration "diverges": losses can never be non-finite here,
        // so force it by injecting at attempt 0 and relying on the rolled
        // back state replaying attempt numbers... instead, cap at 0 and
        // check the guard stands down immediately.
        let guard = GuardConfig {
            max_rollbacks: 0,
            ..GuardConfig::default()
        };
        let cfg = TrainerConfig {
            inject_nan_at: Some(1),
            ..TrainerConfig::new(8, 2).with_guard(guard)
        };
        let curve = train(&net, &train_set, &test_set, &mut algo, &cfg);
        assert_eq!(curve.rollbacks, 0, "cap honoured");
    }

    #[test]
    fn crash_and_resume_reproduces_the_curve_bit_exactly() {
        let (net, train_set, test_set) = setup();
        let dir =
            std::env::temp_dir().join(format!("crossbow-trainer-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let checkpointed = || {
            TrainerConfig::new(8, 6)
                .with_seed(11)
                .with_checkpointing(CheckpointConfig::new(&dir).every(10))
        };
        let fresh_algo = || {
            let init = net.init_params(&mut Rng::new(3));
            Sma::new(init, 2, SmaConfig::default())
        };
        let mut algo = fresh_algo();
        let uninterrupted = train(
            &net,
            &train_set,
            &test_set,
            &mut algo,
            &TrainerConfig::new(8, 6).with_seed(11),
        );
        let mut algo = fresh_algo();
        let crashed = train(
            &net,
            &train_set,
            &test_set,
            &mut algo,
            &checkpointed().with_crash_after(107),
        );
        assert!(crashed.epochs() < 6, "the crash cut the run short");
        let mut algo = fresh_algo();
        let resumed = resume(&net, &train_set, &test_set, &mut algo, &checkpointed())
            .expect("checkpoint directory readable");
        assert_eq!(resumed, uninterrupted, "resume must be bit-exact");
        // Resuming the finished run changes nothing.
        let mut algo = fresh_algo();
        let again = resume(&net, &train_set, &test_set, &mut algo, &checkpointed())
            .expect("checkpoint directory readable");
        assert_eq!(again, uninterrupted);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_surfaces_an_unreadable_checkpoint_directory() {
        // A plain file where the directory should be: store creation is
        // an io error, and resume must return it instead of panicking.
        let (net, train_set, test_set) = setup();
        let path =
            std::env::temp_dir().join(format!("crossbow-trainer-notadir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::write(&path, b"occupied").expect("tmp write");
        let init = net.init_params(&mut Rng::new(1));
        let mut algo = Sma::new(init, 2, SmaConfig::default());
        let cfg = TrainerConfig::new(8, 1).with_checkpointing(CheckpointConfig::new(&path));
        let err = resume(&net, &train_set, &test_set, &mut algo, &cfg)
            .expect_err("a file is not a checkpoint directory");
        assert!(matches!(err, CheckpointError::Io(_)), "got {err:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn publish_hook_sees_fresh_consensus_models() {
        use std::sync::Mutex;
        let (net, train_set, test_set) = setup();
        let init = net.init_params(&mut Rng::new(1));
        let mut algo = Sma::new(init, 2, SmaConfig::default());
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&seen);
        let plen = net.param_len();
        let hook = PublishHook::new(10, move |iteration, z| {
            assert_eq!(z.len(), plen, "hook receives the full model");
            assert!(z.iter().all(|w| w.is_finite()));
            log.lock().unwrap().push(iteration);
        });
        let cfg = TrainerConfig::new(8, 2).with_publish(hook);
        let curve = train(&net, &train_set, &test_set, &mut algo, &cfg);
        let seen = seen.lock().unwrap();
        assert_eq!(
            seen.len() as u64,
            curve.iterations / 10,
            "fires every 10th applied iteration"
        );
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "iterations increase");
        assert!(seen.iter().all(|i| i.is_multiple_of(10)));
    }

    #[test]
    fn resume_from_a_streamed_state_is_bit_identical() {
        use std::sync::Mutex;
        let (net, train_set, test_set) = setup();
        let fresh_algo = || Sma::new(net.init_params(&mut Rng::new(1)), 2, SmaConfig::default());
        let cfg = TrainerConfig::new(8, 3);
        let mut algo = fresh_algo();
        let full = train(&net, &train_set, &test_set, &mut algo, &cfg);
        let full_model = algo.consensus().to_vec();
        assert!(full.iterations > 20, "run long enough to capture mid-way");
        // Stream every state; keep the one captured after iteration 20.
        let captured: Arc<Mutex<Option<TrainingState>>> = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&captured);
        let hook = StateHook::new(1, move |st| {
            if st.iterations == 20 {
                *slot.lock().unwrap() = Some(st.clone());
            }
        });
        let mut algo = fresh_algo();
        let _ = train(
            &net,
            &train_set,
            &test_set,
            &mut algo,
            &cfg.clone().with_state_hook(hook),
        );
        let st = captured
            .lock()
            .unwrap()
            .take()
            .expect("the hook saw iteration 20");
        assert_eq!(st.iterations, 20);
        // A standby resuming from the streamed snapshot replays the tail
        // and lands on the exact same curve and model.
        let mut algo = fresh_algo();
        let mut source = LocalGradients::new(&net, algo.k(), &cfg);
        let resumed = train_from_state_with_source(
            &net,
            &train_set,
            &test_set,
            &mut algo,
            &cfg,
            Some(st),
            &mut source,
        );
        assert_eq!(resumed, full, "curve must be bit-exact after takeover");
        assert_eq!(algo.consensus(), &full_model[..], "model must match");
    }

    #[test]
    #[should_panic(expected = "replicated state does not fit this run")]
    fn misfit_replicated_state_is_rejected() {
        let (net, train_set, test_set) = setup();
        let mut algo = Sma::new(net.init_params(&mut Rng::new(1)), 2, SmaConfig::default());
        let cfg = TrainerConfig::new(8, 1);
        let st = TrainingState {
            seed: cfg.seed + 1, // wrong run
            algorithm: algo.name().to_string(),
            ..TrainingState::default()
        };
        let mut source = LocalGradients::new(&net, algo.k(), &cfg);
        let _ = train_from_state_with_source(
            &net,
            &train_set,
            &test_set,
            &mut algo,
            &cfg,
            Some(st),
            &mut source,
        );
    }

    #[test]
    #[should_panic(expected = "do not match the network")]
    fn mismatched_model_rejected() {
        let (net, train_set, test_set) = setup();
        let mut algo = SSgd::new(vec![0.0; 3], 1, SgdConfig::plain());
        let _ = train(
            &net,
            &train_set,
            &test_set,
            &mut algo,
            &TrainerConfig::new(8, 1),
        );
    }
}
