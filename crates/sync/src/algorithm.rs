//! The synchronisation-algorithm abstraction.
//!
//! Every algorithm manages `k` model replicas, one per learner. Each
//! iteration the training driver:
//!
//! 1. reads the replicas ([`SyncAlgorithm::replica`]) and computes one
//!    gradient per replica, each on its own batch (in parallel threads);
//! 2. hands all `k` gradients to [`SyncAlgorithm::step`], which applies
//!    updates *and* performs the algorithm's synchronisation;
//! 3. evaluates the [`SyncAlgorithm::consensus`] model at epoch ends.
//!
//! The abstraction deliberately matches Figure 4: learners always compute
//! gradients against their own replica; what differs between S-SGD, SMA,
//! EA-SGD and A-SGD is purely what `step` does.

/// A parallel training algorithm over `k` model replicas.
pub trait SyncAlgorithm: Send {
    /// Algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Number of replicas / learners.
    fn k(&self) -> usize;

    /// Parameter length of one replica.
    fn param_len(&self) -> usize;

    /// Current parameters of replica `j` (what learner `j` computes its
    /// gradient against).
    fn replica(&self, j: usize) -> &[f32];

    /// Applies one iteration: `grads[j]` is learner `j`'s gradient
    /// evaluated at `replica(j)`, `lr` the current learning rate.
    fn step(&mut self, grads: &[Vec<f32>], lr: f32);

    /// The model whose accuracy defines convergence (the central average
    /// model for SMA, the single model for S-SGD).
    fn consensus(&self) -> &[f32];

    /// Called when the learning-rate schedule changes; SMA restarts its
    /// averaging process here (§3.2). Default: no-op.
    fn on_lr_change(&mut self) {}

    /// Adds a learner (auto-tuner grows parallelism, §3.4/§4.4). The new
    /// replica must start from the consensus model. Returns `false` when
    /// the algorithm does not support resizing (e.g. S-SGD couples k to
    /// the data partitioning).
    fn add_replica(&mut self) -> bool {
        false
    }

    /// Removes the last learner. Returns `false` when unsupported or when
    /// only one replica remains.
    fn remove_replica(&mut self) -> bool {
        false
    }

    /// Captures the algorithm's complete training state for the
    /// divergence guard's in-memory checkpoint. Default: unsupported.
    fn snapshot(&self) -> Option<AlgoSnapshot> {
        None
    }

    /// Restores a snapshot previously taken from this algorithm. Returns
    /// `false` when unsupported; after a successful restore the state —
    /// including `k` — matches the snapshot exactly.
    fn restore(&mut self, snapshot: &AlgoSnapshot) -> bool {
        let _ = snapshot;
        false
    }
}

/// A point-in-time copy of an algorithm's full training state —
/// `(z, z_prev, replicas, iteration)`. This is the unit of rollback for
/// the divergence guard: restoring one and restarting averaging (§3.2)
/// resumes training from a known-good model.
#[derive(Clone, Debug, PartialEq)]
pub struct AlgoSnapshot {
    /// The consensus / central average model `z`.
    pub center: Vec<f32>,
    /// `z_prev`, carrying the Polyak momentum history.
    pub center_prev: Vec<f32>,
    /// All replicas.
    pub replicas: Vec<Vec<f32>>,
    /// Algorithm-specific auxiliary buffers beyond centre and replicas:
    /// S-SGD stores its optimiser velocity here, hierarchical SMA its
    /// per-group reference models. Empty for flat SMA.
    pub aux: Vec<Vec<f32>>,
    /// The iteration counter (the τ phase).
    pub iter: u64,
}

/// Test helper: mean pairwise squared distance between replicas — a
/// measure of replica diversity used by SMA tests.
pub fn replica_spread(algo: &dyn SyncAlgorithm) -> f64 {
    let k = algo.k();
    if k < 2 {
        return 0.0;
    }
    let mut total = 0.0f64;
    let mut pairs = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            total += f64::from(crossbow_tensor::ops::dist_sq(
                algo.replica(i),
                algo.replica(j),
            ));
            pairs += 1;
        }
    }
    total / pairs as f64
}
