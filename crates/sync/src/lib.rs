//! Training and synchronisation algorithms.
//!
//! This crate implements the paper's algorithmic layer:
//!
//! * [`optimizer`] — mini-batch SGD with Polyak momentum and weight decay
//!   (Eq. 1–3) and the learning-rate schedules of §5.1;
//! * [`algorithm`] — the [`SyncAlgorithm`] abstraction: `k` model replicas
//!   trained by `k` learners, synchronised once per iteration;
//! * [`ssgd`] — parallel synchronous SGD, the TensorFlow-style baseline
//!   (§2.3): one logical model, batch partitioned across learners,
//!   gradients aggregated;
//! * [`sma`] — **synchronous model averaging** (Algorithm 1), the paper's
//!   contribution: independent replicas corrected toward a central average
//!   model that advances with Polyak momentum, plus the restart rule on
//!   learning-rate changes; [`sma::easgd`] configures the same machinery
//!   as the EA-SGD comparator (no centre momentum, optional τ);
//! * [`asgd`] — asynchronous SGD with configurable staleness, the §2.3
//!   strawman;
//! * [`hierarchical`] — the two-level synchronisation of §3.3: learners on
//!   one GPU synchronise against a local reference model, and only the
//!   reference models participate in global SMA;
//! * [`trainer`] — a multi-threaded training driver that runs any
//!   [`SyncAlgorithm`] on a dataset and records accuracy per epoch (the
//!   statistical-efficiency half of every experiment).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithm;
pub mod asgd;
pub mod hierarchical;
pub mod optimizer;
pub mod schedule;
pub mod sma;
pub mod ssgd;
pub mod trainer;

pub use algorithm::{AlgoSnapshot, SyncAlgorithm};
pub use optimizer::{Sgd, SgdConfig};
pub use schedule::LrSchedule;
pub use sma::{easgd, Sma, SmaConfig};
pub use ssgd::SSgd;
pub use trainer::{
    resume, resume_with_source, train, train_from_state_with_source, train_with_source,
    CheckpointConfig, GradientSource, GuardConfig, LearnerBatch, LocalGradients, PublishHook,
    RoundStatus, StateHook, TrainerConfig, TrainingCurve,
};
