//! Flat-vector kernels.
//!
//! The synchronisation algorithms of the paper (Eq. 1–3 and Algorithm 1)
//! operate on whole model replicas, which the workspace stores as flat
//! contiguous `f32` vectors. These kernels are the hot path of every
//! training step: `axpy` applies gradients, `scaled_diff` computes the SMA
//! correction `α (w_j − z)`, and the reductions feed metrics and tests.

/// `y[i] += alpha * x[i]` (BLAS `axpy`).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x[i] *= alpha` (BLAS `scal`).
pub fn scal(alpha: f32, x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// `out[i] = alpha * (a[i] - b[i])` — the SMA correction kernel
/// `c_j = α (w_j − z)` from Algorithm 1, line 9.
pub fn scaled_diff(alpha: f32, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "scaled_diff length mismatch");
    assert_eq!(a.len(), out.len(), "scaled_diff output length mismatch");
    for ((o, &ai), &bi) in out.iter_mut().zip(a).zip(b) {
        *o = alpha * (ai - bi);
    }
}

/// `y[i] -= x[i]`.
pub fn sub_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(x.len(), y.len(), "sub_assign length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi -= xi;
    }
}

/// `y[i] += x[i]`.
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(x.len(), y.len(), "add_assign length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += xi;
    }
}

/// Element-wise product `out[i] = a[i] * b[i]`.
pub fn mul(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "mul length mismatch");
    assert_eq!(a.len(), out.len(), "mul output length mismatch");
    for ((o, &ai), &bi) in out.iter_mut().zip(a).zip(b) {
        *o = ai * bi;
    }
}

/// Dot product.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Squared L2 distance between two vectors.
pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dist_sq length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// L2 norm.
pub fn norm(a: &[f32]) -> f32 {
    a.iter().map(|&x| x * x).sum::<f32>().sqrt()
}

/// Writes the element-wise mean of several equal-length vectors into `out`.
///
/// Used to compute the central average model from replicas, and as the
/// reference implementation the simulated all-reduce is tested against.
///
/// # Panics
/// Panics if `vectors` is empty or lengths mismatch.
pub fn mean_of(vectors: &[&[f32]], out: &mut [f32]) {
    assert!(!vectors.is_empty(), "mean_of needs at least one vector");
    for v in vectors {
        assert_eq!(v.len(), out.len(), "mean_of length mismatch");
    }
    let scale = 1.0 / vectors.len() as f32;
    out.iter_mut().for_each(|o| *o = 0.0);
    for v in vectors {
        for (o, &x) in out.iter_mut().zip(*v) {
            *o += x;
        }
    }
    scal(scale, out);
}

/// Clamps every element to `[-limit, limit]` (gradient clipping).
pub fn clip(x: &mut [f32], limit: f32) {
    debug_assert!(limit >= 0.0);
    for xi in x.iter_mut() {
        *xi = xi.clamp(-limit, limit);
    }
}

/// `x[i] = 0` for all `i`, keeping the allocation.
pub fn zero(x: &mut [f32]) {
    x.iter_mut().for_each(|v| *v = 0.0);
}

/// Polyak momentum update used by Eq. (3) and SMA's central-model step:
/// `velocity = momentum * velocity + update; target += velocity`.
pub fn momentum_step(target: &mut [f32], velocity: &mut [f32], update: &[f32], momentum: f32) {
    assert_eq!(
        target.len(),
        velocity.len(),
        "momentum_step length mismatch"
    );
    assert_eq!(target.len(), update.len(), "momentum_step length mismatch");
    for ((t, v), &u) in target.iter_mut().zip(velocity.iter_mut()).zip(update) {
        *v = momentum * *v + u;
        *t += *v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-5, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn axpy_matches_definition() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_close(&y, &[12.0, 24.0, 36.0]);
    }

    #[test]
    fn scal_scales() {
        let mut x = [1.0, -2.0];
        scal(0.5, &mut x);
        assert_close(&x, &[0.5, -1.0]);
    }

    #[test]
    fn scaled_diff_is_sma_correction() {
        let w = [2.0, 4.0];
        let z = [1.0, 1.0];
        let mut c = [0.0; 2];
        scaled_diff(0.5, &w, &z, &mut c);
        assert_close(&c, &[0.5, 1.5]);
    }

    #[test]
    fn add_sub_round_trip() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [5.0, 5.0, 5.0];
        add_assign(&mut y, &x);
        sub_assign(&mut y, &x);
        assert_close(&y, &[5.0, 5.0, 5.0]);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(dist_sq(&[1.0, 1.0], &[0.0, 3.0]), 5.0);
    }

    #[test]
    fn mean_of_averages() {
        let a = [1.0, 2.0];
        let b = [3.0, 6.0];
        let mut out = [0.0; 2];
        mean_of(&[&a, &b], &mut out);
        assert_close(&out, &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "at least one vector")]
    fn mean_of_rejects_empty() {
        let mut out = [0.0; 2];
        mean_of(&[], &mut out);
    }

    #[test]
    fn clip_bounds_values() {
        let mut x = [-5.0, 0.5, 5.0];
        clip(&mut x, 1.0);
        assert_close(&x, &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn momentum_step_accumulates_direction() {
        let mut target = [0.0f32];
        let mut velocity = [0.0f32];
        momentum_step(&mut target, &mut velocity, &[1.0], 0.9);
        assert_close(&target, &[1.0]);
        momentum_step(&mut target, &mut velocity, &[1.0], 0.9);
        // velocity = 0.9 * 1 + 1 = 1.9; target = 1 + 1.9 = 2.9
        assert_close(&target, &[2.9]);
    }

    #[test]
    fn mul_elementwise() {
        let mut out = [0.0; 3];
        mul(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &mut out);
        assert_close(&out, &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn zero_clears() {
        let mut x = [1.0, 2.0];
        zero(&mut x);
        assert_close(&x, &[0.0, 0.0]);
    }
}
