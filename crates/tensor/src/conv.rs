//! im2col / col2im lowering for 2-D convolutions.
//!
//! The `nn` crate implements `Conv2d` as an im2col transform followed by a
//! GEMM, the same lowering cuDNN's GEMM algorithm uses. `col2im` scatters
//! gradients back for the backward pass with respect to the input.
//!
//! Layout conventions: images are NCHW; the column buffer for one image is
//! `(c_in * kh * kw) x (out_h * out_w)`, row-major.

/// Geometry of a 2-D convolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub c_in: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvGeom {
    /// Output height.
    pub fn out_h(&self) -> usize {
        conv_out(self.h, self.kh, self.stride, self.pad)
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        conv_out(self.w, self.kw, self.stride, self.pad)
    }

    /// Rows of the column buffer: `c_in * kh * kw`.
    pub fn col_rows(&self) -> usize {
        self.c_in * self.kh * self.kw
    }

    /// Columns of the column buffer: `out_h * out_w`.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Elements of the column buffer for one image.
    pub fn col_len(&self) -> usize {
        self.col_rows() * self.col_cols()
    }

    /// Elements of one input image (`c_in * h * w`).
    pub fn image_len(&self) -> usize {
        self.c_in * self.h * self.w
    }
}

/// Output extent of a 1-D convolution.
pub fn conv_out(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * pad;
    assert!(
        padded >= kernel,
        "kernel {kernel} larger than padded input {padded}"
    );
    (padded - kernel) / stride + 1
}

/// Unfolds one CHW image into a `(c_in*kh*kw) x (out_h*out_w)` column
/// buffer. Out-of-bounds (padding) taps contribute zeros.
///
/// # Panics
/// Panics if slice lengths do not match the geometry.
pub fn im2col(geom: &ConvGeom, image: &[f32], col: &mut [f32]) {
    assert_eq!(image.len(), geom.image_len(), "image length mismatch");
    assert_eq!(col.len(), geom.col_len(), "column buffer length mismatch");
    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let cols = out_h * out_w;
    let mut row = 0usize;
    for c in 0..geom.c_in {
        let plane = &image[c * geom.h * geom.w..(c + 1) * geom.h * geom.w];
        for ky in 0..geom.kh {
            for kx in 0..geom.kw {
                let out_row = &mut col[row * cols..(row + 1) * cols];
                if geom.stride == 1 {
                    // Stride-1 fast path: each output row is a contiguous
                    // window of an input row (with zero fringes where the
                    // window pads past the image edge), so the inner loop
                    // becomes slice copies instead of per-tap bounds
                    // checks.
                    let (lo, hi) = valid_range(out_w, geom.w, kx, geom.pad);
                    for oy in 0..out_h {
                        let dst = &mut out_row[oy * out_w..(oy + 1) * out_w];
                        let iy = (oy + ky) as isize - geom.pad as isize;
                        if iy < 0 || iy as usize >= geom.h || lo >= hi {
                            dst.iter_mut().for_each(|v| *v = 0.0);
                            continue;
                        }
                        let src0 = iy as usize * geom.w + (lo + kx - geom.pad);
                        dst[..lo].iter_mut().for_each(|v| *v = 0.0);
                        dst[lo..hi].copy_from_slice(&plane[src0..src0 + (hi - lo)]);
                        dst[hi..].iter_mut().for_each(|v| *v = 0.0);
                    }
                } else {
                    let mut idx = 0usize;
                    for oy in 0..out_h {
                        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                        for ox in 0..out_w {
                            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                            out_row[idx] = if iy >= 0
                                && (iy as usize) < geom.h
                                && ix >= 0
                                && (ix as usize) < geom.w
                            {
                                plane[iy as usize * geom.w + ix as usize]
                            } else {
                                0.0
                            };
                            idx += 1;
                        }
                    }
                }
                row += 1;
            }
        }
    }
}

/// For a stride-1 kernel tap at horizontal offset `kx`, the output columns
/// `lo..hi` (within `0..out_w`) whose input column `ox + kx - pad` falls
/// inside `0..w`; everything outside the range reads padding zeros.
#[inline]
fn valid_range(out_w: usize, w: usize, kx: usize, pad: usize) -> (usize, usize) {
    let lo = pad.saturating_sub(kx).min(out_w);
    let hi = (w + pad).saturating_sub(kx).min(out_w);
    (lo, hi.max(lo))
}

/// Folds a column buffer back into a CHW image, *accumulating* overlapping
/// taps — the adjoint of [`im2col`], used for input gradients.
///
/// The caller must zero `image` first if accumulation from a clean slate is
/// wanted.
pub fn col2im(geom: &ConvGeom, col: &[f32], image: &mut [f32]) {
    assert_eq!(image.len(), geom.image_len(), "image length mismatch");
    assert_eq!(col.len(), geom.col_len(), "column buffer length mismatch");
    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let cols = out_h * out_w;
    let mut row = 0usize;
    for c in 0..geom.c_in {
        let plane = &mut image[c * geom.h * geom.w..(c + 1) * geom.h * geom.w];
        for ky in 0..geom.kh {
            for kx in 0..geom.kw {
                let col_row = &col[row * cols..(row + 1) * cols];
                if geom.stride == 1 {
                    // Mirror of the im2col fast path: accumulate each
                    // output row's valid window into the input row with a
                    // vectorisable slice add; padding taps fall outside
                    // `lo..hi` and are skipped.
                    let (lo, hi) = valid_range(out_w, geom.w, kx, geom.pad);
                    for oy in 0..out_h {
                        let iy = (oy + ky) as isize - geom.pad as isize;
                        if iy < 0 || iy as usize >= geom.h || lo >= hi {
                            continue;
                        }
                        let src = &col_row[oy * out_w + lo..oy * out_w + hi];
                        let dst0 = iy as usize * geom.w + (lo + kx - geom.pad);
                        let dst = &mut plane[dst0..dst0 + (hi - lo)];
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                } else {
                    let mut idx = 0usize;
                    for oy in 0..out_h {
                        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                        for ox in 0..out_w {
                            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                            if iy >= 0
                                && (iy as usize) < geom.h
                                && ix >= 0
                                && (ix as usize) < geom.w
                            {
                                plane[iy as usize * geom.w + ix as usize] += col_row[idx];
                            }
                            idx += 1;
                        }
                    }
                }
                row += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom_3x3() -> ConvGeom {
        ConvGeom {
            c_in: 1,
            h: 3,
            w: 3,
            kh: 2,
            kw: 2,
            stride: 1,
            pad: 0,
        }
    }

    #[test]
    fn conv_out_matches_formula() {
        assert_eq!(conv_out(32, 3, 1, 1), 32); // "same" conv
        assert_eq!(conv_out(32, 3, 2, 1), 16);
        assert_eq!(conv_out(28, 5, 1, 0), 24); // LeNet C1
        assert_eq!(conv_out(4, 4, 1, 0), 1);
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn conv_out_rejects_oversized_kernel() {
        conv_out(2, 5, 1, 0);
    }

    #[test]
    fn im2col_hand_example() {
        // 3x3 image 1..9, 2x2 kernel, stride 1 -> 2x2 output, 4 rows.
        let g = geom_3x3();
        let image: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let mut col = vec![0.0; g.col_len()];
        im2col(&g, &image, &mut col);
        // row 0 = top-left tap of each window: [1 2 4 5]
        assert_eq!(&col[0..4], &[1.0, 2.0, 4.0, 5.0]);
        // row 3 = bottom-right tap: [5 6 8 9]
        assert_eq!(&col[12..16], &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn padding_contributes_zeros() {
        let g = ConvGeom {
            c_in: 1,
            h: 2,
            w: 2,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let image = [1.0, 2.0, 3.0, 4.0];
        let mut col = vec![0.0; g.col_len()];
        im2col(&g, &image, &mut col);
        // First row is the (ky=0,kx=0) tap; for output (0,0) this reads the
        // padded position (-1,-1) which must be zero.
        assert_eq!(col[0], 0.0);
        // Centre tap (ky=1,kx=1) of output (0,0) reads image (0,0) = 1.
        let cols = g.col_cols();
        assert_eq!(col[4 * cols], 1.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining
        // property of the adjoint, checked on a small dense case.
        let g = ConvGeom {
            c_in: 2,
            h: 4,
            w: 3,
            kh: 2,
            kw: 2,
            stride: 1,
            pad: 1,
        };
        let mut rng = crate::rng::Rng::new(5);
        let x: Vec<f32> = (0..g.image_len()).map(|_| rng.normal()).collect();
        let y: Vec<f32> = (0..g.col_len()).map(|_| rng.normal()).collect();
        let mut fx = vec![0.0; g.col_len()];
        im2col(&g, &x, &mut fx);
        let mut aty = vec![0.0; g.image_len()];
        col2im(&g, &y, &mut aty);
        let lhs: f32 = fx.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn col2im_im2col_round_trip_with_stride_and_pad() {
        // col2im(im2col(x)) multiplies each input pixel by the number of
        // sliding windows that read it; that multiplicity is exactly
        // col2im(im2col(ones)). Checked with stride > 1 and pad > 0 so
        // both uneven overlap and padding-dropped taps are exercised.
        let mut rng = crate::rng::Rng::new(17);
        for &(h, w, kh, kw, stride, pad) in
            &[(5, 7, 3, 3, 2, 1), (6, 6, 3, 2, 2, 2), (4, 5, 2, 2, 3, 1)]
        {
            let g = ConvGeom {
                c_in: 2,
                h,
                w,
                kh,
                kw,
                stride,
                pad,
            };
            let x: Vec<f32> = (0..g.image_len()).map(|_| rng.normal()).collect();
            let mut col = vec![0.0; g.col_len()];
            im2col(&g, &x, &mut col);
            let mut back = vec![0.0; g.image_len()];
            col2im(&g, &col, &mut back);

            let ones = vec![1.0; g.image_len()];
            let mut ones_col = vec![0.0; g.col_len()];
            im2col(&g, &ones, &mut ones_col);
            let mut multiplicity = vec![0.0; g.image_len()];
            col2im(&g, &ones_col, &mut multiplicity);

            for i in 0..g.image_len() {
                let want = x[i] * multiplicity[i];
                assert!(
                    (back[i] - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "geom {g:?} elem {i}: {} vs {want} (multiplicity {})",
                    back[i],
                    multiplicity[i]
                );
            }
        }
    }

    #[test]
    fn multi_channel_rows_are_grouped_by_channel() {
        let g = ConvGeom {
            c_in: 2,
            h: 2,
            w: 2,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        let image = [1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0];
        let mut col = vec![0.0; g.col_len()];
        im2col(&g, &image, &mut col);
        assert_eq!(&col[0..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&col[4..8], &[10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn strided_geometry() {
        let g = ConvGeom {
            c_in: 1,
            h: 4,
            w: 4,
            kh: 2,
            kw: 2,
            stride: 2,
            pad: 0,
        };
        assert_eq!(g.out_h(), 2);
        assert_eq!(g.out_w(), 2);
        let image: Vec<f32> = (0..16).map(|v| v as f32).collect();
        let mut col = vec![0.0; g.col_len()];
        im2col(&g, &image, &mut col);
        // Top-left taps of the 4 windows: 0, 2, 8, 10.
        assert_eq!(&col[0..4], &[0.0, 2.0, 8.0, 10.0]);
    }
}
