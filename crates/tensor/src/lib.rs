//! Dense `f32` tensors and the numeric kernels used throughout the CROSSBOW
//! reproduction.
//!
//! This crate is the lowest layer of the workspace: it provides
//!
//! * [`Shape`] and [`Tensor`] — owned, row-major dense `f32` tensors;
//! * element-wise and BLAS-like kernels ([`ops`], [`gemm`]) used by the
//!   neural-network substrate;
//! * [`conv`] — im2col/col2im lowering for convolution layers;
//! * [`rng`] — a small, deterministic random number generator
//!   (SplitMix64 + PCG32) so that every experiment in the workspace is
//!   bit-reproducible given a seed;
//! * [`stats`] — streaming statistics used by the auto-tuner and the metric
//!   collectors.
//!
//! The training *math* of the paper (gradients, momentum, model averaging)
//! operates on flat `&[f32]`/`&mut [f32]` parameter vectors, so most hot
//! kernels here are slice-based rather than tensor-based.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod conv;
pub mod gemm;
pub mod ops;
pub mod quant;
pub mod rng;
pub mod shape;
pub mod stats;
pub mod tensor;
pub mod workspace;

pub use gemm::GemmKernel;
pub use quant::{PackedQuantLinear, Precision, QuantLinear};
pub use rng::{Rng, RngState};
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::{Workspace, WorkspaceStats};
