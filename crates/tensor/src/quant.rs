//! Reduced-precision weight formats for the inference-only serving path.
//!
//! Training stays in `f32` everywhere; quantization happens once, when a
//! snapshot is exported for serving. Two formats:
//!
//! * **bf16** — each weight truncated to the top 16 bits of its `f32`
//!   encoding (round-to-nearest-even). Halves snapshot bytes; decoded
//!   back to `f32` at load time, so the serving compute path is the
//!   unchanged `f32` one.
//! * **int8** — dense weight matrices quantized *per output channel*:
//!   each output row gets a scale `max|row| / 127` and its weights
//!   become `round(w / scale)` clamped to `[-127, 127]`. Activations are
//!   quantized dynamically per sample row the same way, the matrix
//!   product runs in exact `i32` arithmetic, and the result is rescaled
//!   by `sx * sw[j]`. Quarter snapshot bytes and roughly 2x eval
//!   arithmetic density.
//!
//! # Determinism
//!
//! Integer accumulation is exact and order-independent, so the int8
//! forward is **bit-identical across kernel tiers and thread counts** by
//! construction — the SIMD kernels ([`GemmKernel::Avx2`] /
//! [`GemmKernel::Avx512`], via `madd_epi16`) and the scalar loop read
//! the same packed buffer and produce the same `i32` sums. Tests pin
//! exact equality.
//!
//! # Packed int8 layout
//!
//! [`PackedQuantLinear`] stores weights widened to `i16` (so a single
//! `madd_epi16` handles a `p`-pair without the `i16` saturation that
//! `maddubs` would hit), interleaved for 16-output-wide kernels: for
//! output tile `jt` and `p`-pair `p2`,
//!
//! ```text
//! packed[(jt * kp/2 + p2) * 32 + jlane * 2 + e] = w[jt*16 + jlane][2*p2 + e]
//! ```
//!
//! with `kp` = `cols` rounded up to even and out-of-range `j`/`p`
//! zero-filled. One `p`-pair group is 32 `i16` = 64 bytes = one AVX-512
//! register (AVX2 reads it as two consecutive halves; the scalar loop
//! walks the same buffer).

use crate::gemm::GemmKernel;

/// Number of output channels per packed tile (one AVX-512 lane group).
const QNR: usize = 16;

/// Activation rows processed together by the batched integer kernels:
/// each packed-weight load is reused across this many rows, which is
/// what lets the int8 path outrun the batched `f32` GEMM.
const QMB: usize = 4;

/// Serving precision of a model snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precision {
    /// Full-precision `f32` weights (the training format).
    F32,
    /// Weights truncated to bfloat16; compute stays `f32`.
    Bf16,
    /// Dense weights in per-channel int8; dense compute in `i32`.
    Int8,
}

impl Precision {
    /// Every precision, in `--precision` flag order.
    pub fn all() -> [Precision; 3] {
        [Precision::F32, Precision::Bf16, Precision::Int8]
    }

    /// Stable lower-case name (flag value and report label).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Bf16 => "bf16",
            Precision::Int8 => "int8",
        }
    }

    /// Stable wire tag for the snapshot codec.
    pub fn tag(self) -> u8 {
        match self {
            Precision::F32 => 0,
            Precision::Bf16 => 1,
            Precision::Int8 => 2,
        }
    }

    /// Inverse of [`Precision::tag`].
    pub fn from_tag(tag: u8) -> Option<Precision> {
        Precision::all().into_iter().find(|p| p.tag() == tag)
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Precision::all()
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| format!("unknown precision {s:?} (expected f32|bf16|int8)"))
    }
}

/// Encodes one `f32` as bfloat16 (round-to-nearest-even on the dropped
/// 16 mantissa bits). NaNs are quieted so they stay NaN after the
/// truncation.
pub fn bf16_encode(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        return ((bits >> 16) as u16) | 0x0040;
    }
    let lsb = (bits >> 16) & 1;
    ((bits.wrapping_add(0x7fff + lsb)) >> 16) as u16
}

/// Decodes a bfloat16 value back to `f32` (exact — bf16 is a prefix of
/// the `f32` encoding).
pub fn bf16_decode(u: u16) -> f32 {
    f32::from_bits((u as u32) << 16)
}

/// Encodes a slice of weights as bfloat16.
pub fn bf16_encode_slice(xs: &[f32]) -> Vec<u16> {
    xs.iter().map(|&x| bf16_encode(x)).collect()
}

/// Decodes bfloat16 weights into an `f32` buffer of the same length.
pub fn bf16_decode_into(us: &[u16], out: &mut [f32]) {
    assert_eq!(us.len(), out.len(), "bf16 length mismatch");
    for (o, &u) in out.iter_mut().zip(us) {
        *o = bf16_decode(u);
    }
}

/// An int8 weight matrix with per-output-channel scales — the *storage*
/// form (row-major, codec-friendly). [`PackedQuantLinear`] is the
/// runtime form.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantLinear {
    /// Output channels (rows of the weight matrix).
    pub rows: usize,
    /// Input features (columns of the weight matrix).
    pub cols: usize,
    /// Per-row scale: `dequantized = q as f32 * scales[row]`.
    pub scales: Vec<f32>,
    /// Quantized weights, row-major `rows x cols`, in `[-127, 127]`.
    pub q: Vec<i8>,
}

impl QuantLinear {
    /// Quantizes a row-major `rows x cols` `f32` weight matrix. Each
    /// row's scale is `max|row| / 127` (1.0 for an all-zero row, so
    /// dequantization is always well-defined).
    pub fn quantize(w: &[f32], rows: usize, cols: usize) -> QuantLinear {
        assert_eq!(w.len(), rows * cols, "weight dims mismatch");
        let mut scales = Vec::with_capacity(rows);
        let mut q = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let row = &w[r * cols..(r + 1) * cols];
            let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
            scales.push(scale);
            q.extend(
                row.iter()
                    .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8),
            );
        }
        QuantLinear {
            rows,
            cols,
            scales,
            q,
        }
    }

    /// Reassembles the storage form from codec fields. The loader uses
    /// this instead of re-quantizing dequantized weights: `quantize ∘
    /// dequantize` is *not* the identity (the re-derived scale differs),
    /// so round-tripping through it would change the served bytes.
    pub fn from_parts(rows: usize, cols: usize, scales: Vec<f32>, q: Vec<i8>) -> QuantLinear {
        assert_eq!(scales.len(), rows, "scale count mismatch");
        assert_eq!(q.len(), rows * cols, "quantized weight dims mismatch");
        QuantLinear {
            rows,
            cols,
            scales,
            q,
        }
    }

    /// Dequantizes into an `f32` buffer of `rows * cols`.
    pub fn dequantize_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.rows * self.cols, "output dims mismatch");
        for r in 0..self.rows {
            let scale = self.scales[r];
            let src = &self.q[r * self.cols..(r + 1) * self.cols];
            let dst = &mut out[r * self.cols..(r + 1) * self.cols];
            for (d, &qv) in dst.iter_mut().zip(src) {
                *d = f32::from(qv) * scale;
            }
        }
    }
}

/// Quantizes one activation row into `i16` values in `[-127, 127]`,
/// zero-padded to `kp` (`cols` rounded up to even). Returns the
/// activation scale `sx` (1.0 for an all-zero row).
fn quantize_activations(x: &[f32], kp: usize, xq: &mut Vec<i16>) -> f32 {
    let max_abs = x.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let sx = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
    xq.clear();
    xq.resize(kp, 0);
    quantize_row_into(x, sx, xq);
    sx
}

/// Writes `x / sx` rounded to nearest (ties to even) and clamped to
/// `[-127, 127]` into `dst` (already `kp`-sized and zeroed past
/// `x.len()`). Two deliberate choices keep this loop vectorizable —
/// it sits on the hot path of every int8 forward:
///
/// * reciprocal multiply instead of per-element `divps` (plain division
///   remains as the guard for scales so small their reciprocal
///   overflows);
/// * `round_ties_even`, which lowers to a single `roundps`, where
///   `f32::round`'s half-away-from-zero is a libm call per element.
///
/// Every kernel tier shares this one quantization, so both choices are
/// invisible to the bit-identity contract.
fn quantize_row_into(x: &[f32], sx: f32, dst: &mut [i16]) {
    let inv = 1.0 / sx;
    if !inv.is_finite() {
        for (d, &v) in dst.iter_mut().zip(x) {
            *d = (v / sx).round_ties_even().clamp(-127.0, 127.0) as i16;
        }
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: avx2 checked on the line above.
        unsafe { quantize_row_avx2(x, inv, dst) };
        return;
    }
    for (d, &v) in dst.iter_mut().zip(x) {
        *d = (v * inv).round_ties_even().clamp(-127.0, 127.0) as i16;
    }
}

/// The same loop as the portable tail of [`quantize_row_into`], compiled
/// with AVX2 enabled: the baseline x86-64 target has no `roundps`, so
/// `round_ties_even` there is a libm call per element, while under this
/// attribute LLVM auto-vectorizes the whole loop. `roundps`'s
/// nearest-even is exactly `round_ties_even`, so both lowerings produce
/// identical bits — which kernel tier quantizes is unobservable.
///
/// # Safety
/// The caller must have verified AVX2 support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_row_avx2(x: &[f32], inv: f32, dst: &mut [i16]) {
    for (d, &v) in dst.iter_mut().zip(x) {
        *d = (v * inv).round_ties_even().clamp(-127.0, 127.0) as i16;
    }
}

/// The runtime int8 linear operator: weights widened to `i16` and
/// interleaved for the 16-output-wide integer kernels (see the module
/// docs for the exact layout).
#[derive(Clone, Debug)]
pub struct PackedQuantLinear {
    rows: usize,
    cols: usize,
    /// `cols` rounded up to even (`p`-pairs), zero-padded.
    kp: usize,
    scales: Vec<f32>,
    packed: Vec<i16>,
}

impl PackedQuantLinear {
    /// Packs the storage form for the integer kernels.
    pub fn new(lin: &QuantLinear) -> PackedQuantLinear {
        let (rows, cols) = (lin.rows, lin.cols);
        let kp = cols.div_ceil(2) * 2;
        let tiles = rows.div_ceil(QNR);
        let mut packed = vec![0i16; tiles * kp * QNR];
        for jt in 0..tiles {
            for p2 in 0..kp / 2 {
                let base = (jt * (kp / 2) + p2) * 2 * QNR;
                for jlane in 0..QNR {
                    let j = jt * QNR + jlane;
                    if j >= rows {
                        break;
                    }
                    for e in 0..2 {
                        let p = 2 * p2 + e;
                        if p < cols {
                            packed[base + jlane * 2 + e] = i16::from(lin.q[j * cols + p]);
                        }
                    }
                }
            }
        }
        PackedQuantLinear {
            rows,
            cols,
            kp,
            scales: lin.scales.clone(),
            packed,
        }
    }

    /// Output channels.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input features.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-output-channel weight scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Computes `y[j] = (sum_p round(x/sx)[p] * q[j][p]) * sx * scales[j]`
    /// for one sample row — the int8 analogue of `y = x @ W^T`. The
    /// caller adds the (`f32`) bias. `xq` is reusable scratch for the
    /// quantized activations.
    ///
    /// Bit-identical across kernel tiers and thread counts: the integer
    /// accumulation is exact, so only the final rescale touches floats,
    /// and it is a single multiply per output.
    pub fn forward_row(&self, x: &[f32], xq: &mut Vec<i16>, y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "input dims mismatch");
        assert_eq!(y.len(), self.rows, "output dims mismatch");
        let sx = quantize_activations(x, self.kp, xq);
        match GemmKernel::active() {
            GemmKernel::Scalar => self.forward_row_scalar(xq, sx, y),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: dispatch only selects these kernels when
            // `supported()` saw the matching CPU feature.
            GemmKernel::Avx2 => unsafe { self.forward_row_avx2(xq, sx, y) },
            #[cfg(target_arch = "x86_64")]
            GemmKernel::Avx512 => {
                if std::arch::is_x86_feature_detected!("avx512bw") {
                    // SAFETY: avx512f (kernel gate) + avx512bw (checked
                    // here) are both present.
                    unsafe { self.forward_row_avx512(xq, sx, y) }
                } else if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: avx2 checked on the line above.
                    unsafe { self.forward_row_avx2(xq, sx, y) }
                } else {
                    self.forward_row_scalar(xq, sx, y)
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            GemmKernel::Avx2 | GemmKernel::Avx512 => {
                unreachable!("SIMD kernels are never selected off x86-64")
            }
        }
    }

    /// `forward_row` over a whole batch: `xs` is `b * cols` row-major
    /// activations, `ys` receives `b * rows` outputs. Rows are blocked
    /// in groups of `QMB` so the SIMD kernels amortise each packed
    /// weight load across the group. Per (row, output) the accumulation
    /// order is unchanged, so the result is bit-identical to calling
    /// `forward_row` once per row — on every kernel tier.
    pub fn forward_batch(&self, xs: &[f32], xq: &mut Vec<i16>, ys: &mut [f32]) {
        assert_eq!(xs.len() % self.cols, 0, "input dims mismatch");
        let b = xs.len() / self.cols;
        assert_eq!(ys.len(), b * self.rows, "output dims mismatch");
        let kernel = GemmKernel::active();
        let mut sx = [0.0f32; QMB];
        let mut r = 0usize;
        while r < b {
            let mb = QMB.min(b - r);
            let block = &xs[r * self.cols..(r + mb) * self.cols];
            xq.clear();
            xq.resize(mb * self.kp, 0);
            for (i, row) in block.chunks_exact(self.cols).enumerate() {
                let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                sx[i] = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
                quantize_row_into(row, sx[i], &mut xq[i * self.kp..(i + 1) * self.kp]);
            }
            let y = &mut ys[r * self.rows..(r + mb) * self.rows];
            match kernel {
                GemmKernel::Scalar => {
                    for i in 0..mb {
                        self.forward_row_scalar(
                            &xq[i * self.kp..(i + 1) * self.kp],
                            sx[i],
                            &mut y[i * self.rows..(i + 1) * self.rows],
                        );
                    }
                }
                #[cfg(target_arch = "x86_64")]
                // SAFETY: dispatch only selects these kernels when
                // `supported()` saw the matching CPU feature.
                GemmKernel::Avx2 => unsafe { self.forward_block_avx2(xq, mb, &sx, y) },
                #[cfg(target_arch = "x86_64")]
                GemmKernel::Avx512 => {
                    if std::arch::is_x86_feature_detected!("avx512bw") {
                        // SAFETY: avx512f (kernel gate) + avx512bw
                        // (checked here) are both present.
                        unsafe { self.forward_block_avx512(xq, mb, &sx, y) }
                    } else if std::arch::is_x86_feature_detected!("avx2") {
                        // SAFETY: avx2 checked on the line above.
                        unsafe { self.forward_block_avx2(xq, mb, &sx, y) }
                    } else {
                        for i in 0..mb {
                            self.forward_row_scalar(
                                &xq[i * self.kp..(i + 1) * self.kp],
                                sx[i],
                                &mut y[i * self.rows..(i + 1) * self.rows],
                            );
                        }
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                GemmKernel::Avx2 | GemmKernel::Avx512 => {
                    unreachable!("SIMD kernels are never selected off x86-64")
                }
            }
            r += mb;
        }
    }

    /// Portable integer kernel over the packed layout — the reference
    /// the SIMD kernels must match exactly.
    fn forward_row_scalar(&self, xq: &[i16], sx: f32, y: &mut [f32]) {
        let pairs = self.kp / 2;
        for jt in 0..self.rows.div_ceil(QNR) {
            let mut acc = [0i32; QNR];
            for p2 in 0..pairs {
                let group = &self.packed[(jt * pairs + p2) * 2 * QNR..];
                let x0 = i32::from(xq[2 * p2]);
                let x1 = i32::from(xq[2 * p2 + 1]);
                for (jlane, a) in acc.iter_mut().enumerate() {
                    *a += x0 * i32::from(group[jlane * 2]) + x1 * i32::from(group[jlane * 2 + 1]);
                }
            }
            let j0 = jt * QNR;
            let lanes = QNR.min(self.rows - j0);
            for jlane in 0..lanes {
                y[j0 + jlane] = acc[jlane] as f32 * (sx * self.scales[j0 + jlane]);
            }
        }
    }

    /// AVX2 integer kernel: each 64-byte `p`-pair group is consumed as
    /// two 256-bit halves, `madd_epi16` pairs exactly like the scalar
    /// loop.
    ///
    /// # Safety
    /// The caller must have verified AVX2 support (kernel dispatch does).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn forward_row_avx2(&self, xq: &[i16], sx: f32, y: &mut [f32]) {
        use std::arch::x86_64::*;
        let pairs = self.kp / 2;
        let xp = xq.as_ptr();
        for jt in 0..self.rows.div_ceil(QNR) {
            // Two p-pairs per iteration = four independent madd+add
            // chains; i32 addition is exact, so the split accumulators
            // still match the scalar loop bit for bit.
            let mut acc0a = _mm256_setzero_si256();
            let mut acc1a = _mm256_setzero_si256();
            let mut acc0b = _mm256_setzero_si256();
            let mut acc1b = _mm256_setzero_si256();
            let mut wp = self.packed.as_ptr().add(jt * pairs * 2 * QNR);
            let mut p2 = 0usize;
            while p2 + 2 <= pairs {
                // Both halves of an x p-pair in one i32 lane: low 16
                // bits = x[2p2], high 16 bits = x[2p2+1] (little-endian
                // load).
                let xa = _mm256_set1_epi32((xp.add(2 * p2) as *const i32).read_unaligned());
                let xb = _mm256_set1_epi32((xp.add(2 * p2 + 2) as *const i32).read_unaligned());
                let w0a = _mm256_loadu_si256(wp as *const __m256i);
                let w1a = _mm256_loadu_si256(wp.add(QNR) as *const __m256i);
                let w0b = _mm256_loadu_si256(wp.add(2 * QNR) as *const __m256i);
                let w1b = _mm256_loadu_si256(wp.add(3 * QNR) as *const __m256i);
                acc0a = _mm256_add_epi32(acc0a, _mm256_madd_epi16(xa, w0a));
                acc1a = _mm256_add_epi32(acc1a, _mm256_madd_epi16(xa, w1a));
                acc0b = _mm256_add_epi32(acc0b, _mm256_madd_epi16(xb, w0b));
                acc1b = _mm256_add_epi32(acc1b, _mm256_madd_epi16(xb, w1b));
                wp = wp.add(4 * QNR);
                p2 += 2;
            }
            if p2 < pairs {
                let xv = _mm256_set1_epi32((xp.add(2 * p2) as *const i32).read_unaligned());
                let w0 = _mm256_loadu_si256(wp as *const __m256i);
                let w1 = _mm256_loadu_si256(wp.add(QNR) as *const __m256i);
                acc0a = _mm256_add_epi32(acc0a, _mm256_madd_epi16(xv, w0));
                acc1a = _mm256_add_epi32(acc1a, _mm256_madd_epi16(xv, w1));
            }
            let acc0 = _mm256_add_epi32(acc0a, acc0b);
            let acc1 = _mm256_add_epi32(acc1a, acc1b);
            let mut lanes_acc = [0i32; QNR];
            _mm256_storeu_si256(lanes_acc.as_mut_ptr() as *mut __m256i, acc0);
            _mm256_storeu_si256(lanes_acc.as_mut_ptr().add(8) as *mut __m256i, acc1);
            let j0 = jt * QNR;
            let lanes = QNR.min(self.rows - j0);
            for (jlane, &a) in lanes_acc.iter().enumerate().take(lanes) {
                y[j0 + jlane] = a as f32 * (sx * self.scales[j0 + jlane]);
            }
        }
    }

    /// AVX2 batched kernel: [`QMB`] rows share every packed-weight load.
    /// Rows of a partial block go through the single-row kernel.
    ///
    /// # Safety
    /// The caller must have verified AVX2 support (kernel dispatch does).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn forward_block_avx2(&self, xq: &[i16], mb: usize, sx: &[f32; QMB], y: &mut [f32]) {
        use std::arch::x86_64::*;
        if mb < QMB {
            for i in 0..mb {
                self.forward_row_avx2(
                    &xq[i * self.kp..(i + 1) * self.kp],
                    sx[i],
                    &mut y[i * self.rows..(i + 1) * self.rows],
                );
            }
            return;
        }
        let pairs = self.kp / 2;
        let kp = self.kp;
        // One cursor per activation row; named accumulators (two 256-bit
        // halves per row) keep the tile in registers.
        let xp0 = xq.as_ptr();
        let xp1 = xp0.add(kp);
        let xp2 = xp0.add(2 * kp);
        let xp3 = xp0.add(3 * kp);
        for jt in 0..self.rows.div_ceil(QNR) {
            let mut acc0l = _mm256_setzero_si256();
            let mut acc0h = _mm256_setzero_si256();
            let mut acc1l = _mm256_setzero_si256();
            let mut acc1h = _mm256_setzero_si256();
            let mut acc2l = _mm256_setzero_si256();
            let mut acc2h = _mm256_setzero_si256();
            let mut acc3l = _mm256_setzero_si256();
            let mut acc3h = _mm256_setzero_si256();
            let mut wp = self.packed.as_ptr().add(jt * pairs * 2 * QNR);
            for p2 in 0..pairs {
                // One x p-pair per i32 lane: low 16 bits = x[2p2], high
                // 16 bits = x[2p2+1] (little-endian load).
                let w0 = _mm256_loadu_si256(wp as *const __m256i);
                let w1 = _mm256_loadu_si256(wp.add(QNR) as *const __m256i);
                let x0 = _mm256_set1_epi32((xp0.add(2 * p2) as *const i32).read_unaligned());
                let x1 = _mm256_set1_epi32((xp1.add(2 * p2) as *const i32).read_unaligned());
                let x2 = _mm256_set1_epi32((xp2.add(2 * p2) as *const i32).read_unaligned());
                let x3 = _mm256_set1_epi32((xp3.add(2 * p2) as *const i32).read_unaligned());
                acc0l = _mm256_add_epi32(acc0l, _mm256_madd_epi16(x0, w0));
                acc0h = _mm256_add_epi32(acc0h, _mm256_madd_epi16(x0, w1));
                acc1l = _mm256_add_epi32(acc1l, _mm256_madd_epi16(x1, w0));
                acc1h = _mm256_add_epi32(acc1h, _mm256_madd_epi16(x1, w1));
                acc2l = _mm256_add_epi32(acc2l, _mm256_madd_epi16(x2, w0));
                acc2h = _mm256_add_epi32(acc2h, _mm256_madd_epi16(x2, w1));
                acc3l = _mm256_add_epi32(acc3l, _mm256_madd_epi16(x3, w0));
                acc3h = _mm256_add_epi32(acc3h, _mm256_madd_epi16(x3, w1));
                wp = wp.add(2 * QNR);
            }
            let j0 = jt * QNR;
            let lanes = QNR.min(self.rows - j0);
            let halves = [
                (acc0l, acc0h),
                (acc1l, acc1h),
                (acc2l, acc2h),
                (acc3l, acc3h),
            ];
            for (i, (lo, hi)) in halves.into_iter().enumerate() {
                let mut lanes_acc = [0i32; QNR];
                _mm256_storeu_si256(lanes_acc.as_mut_ptr() as *mut __m256i, lo);
                _mm256_storeu_si256(lanes_acc.as_mut_ptr().add(8) as *mut __m256i, hi);
                let yrow = &mut y[i * self.rows + j0..];
                for (jlane, &a) in lanes_acc.iter().enumerate().take(lanes) {
                    yrow[jlane] = a as f32 * (sx[i] * self.scales[j0 + jlane]);
                }
            }
        }
    }

    /// AVX-512 batched kernel: [`QMB`] rows share every packed-weight
    /// load. Rows of a partial block go through the single-row kernel.
    ///
    /// # Safety
    /// The caller must have verified AVX-512F + AVX-512BW support
    /// (`forward_batch` checks avx512bw before dispatching here).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn forward_block_avx512(&self, xq: &[i16], mb: usize, sx: &[f32; QMB], y: &mut [f32]) {
        use std::arch::x86_64::*;
        if mb < QMB {
            for i in 0..mb {
                self.forward_row_avx512(
                    &xq[i * self.kp..(i + 1) * self.kp],
                    sx[i],
                    &mut y[i * self.rows..(i + 1) * self.rows],
                );
            }
            return;
        }
        let pairs = self.kp / 2;
        let kp = self.kp;
        // One cursor per activation row; named accumulators keep the
        // whole tile in registers (an indexed array spills).
        let xp0 = xq.as_ptr();
        let xp1 = xp0.add(kp);
        let xp2 = xp0.add(2 * kp);
        let xp3 = xp0.add(3 * kp);
        for jt in 0..self.rows.div_ceil(QNR) {
            let mut acc0 = _mm512_setzero_si512();
            let mut acc1 = _mm512_setzero_si512();
            let mut acc2 = _mm512_setzero_si512();
            let mut acc3 = _mm512_setzero_si512();
            let mut wp = self.packed.as_ptr().add(jt * pairs * 2 * QNR);
            for p2 in 0..pairs {
                // One x p-pair per i32 lane: low 16 bits = x[2p2], high
                // 16 bits = x[2p2+1] (little-endian load).
                let w = _mm512_loadu_si512(wp as *const __m512i);
                let x0 = _mm512_set1_epi32((xp0.add(2 * p2) as *const i32).read_unaligned());
                let x1 = _mm512_set1_epi32((xp1.add(2 * p2) as *const i32).read_unaligned());
                let x2 = _mm512_set1_epi32((xp2.add(2 * p2) as *const i32).read_unaligned());
                let x3 = _mm512_set1_epi32((xp3.add(2 * p2) as *const i32).read_unaligned());
                acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(x0, w));
                acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(x1, w));
                acc2 = _mm512_add_epi32(acc2, _mm512_madd_epi16(x2, w));
                acc3 = _mm512_add_epi32(acc3, _mm512_madd_epi16(x3, w));
                wp = wp.add(2 * QNR);
            }
            let j0 = jt * QNR;
            let lanes = QNR.min(self.rows - j0);
            for (i, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
                let mut lanes_acc = [0i32; QNR];
                _mm512_storeu_si512(lanes_acc.as_mut_ptr() as *mut __m512i, acc);
                let yrow = &mut y[i * self.rows + j0..];
                for (jlane, &a) in lanes_acc.iter().enumerate().take(lanes) {
                    yrow[jlane] = a as f32 * (sx[i] * self.scales[j0 + jlane]);
                }
            }
        }
    }

    /// AVX-512 integer kernel: one 512-bit register per `p`-pair group.
    ///
    /// # Safety
    /// The caller must have verified AVX-512F + AVX-512BW support
    /// (`forward_row` checks avx512bw explicitly before dispatching
    /// here, falling back to the AVX2 kernel without it).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn forward_row_avx512(&self, xq: &[i16], sx: f32, y: &mut [f32]) {
        use std::arch::x86_64::*;
        let pairs = self.kp / 2;
        let xp = xq.as_ptr();
        for jt in 0..self.rows.div_ceil(QNR) {
            // Four independent accumulators hide the madd+add latency
            // chain; i32 addition is exact, so any combine order gives
            // the same bits as the scalar loop.
            let mut acc0 = _mm512_setzero_si512();
            let mut acc1 = _mm512_setzero_si512();
            let mut acc2 = _mm512_setzero_si512();
            let mut acc3 = _mm512_setzero_si512();
            let mut wp = self.packed.as_ptr().add(jt * pairs * 2 * QNR);
            let mut p2 = 0usize;
            while p2 + 4 <= pairs {
                // Each i32 lane holds one x p-pair: low 16 bits = x[2p2],
                // high 16 bits = x[2p2+1] (little-endian load).
                let x0 = (xp.add(2 * p2) as *const i32).read_unaligned();
                let x1 = (xp.add(2 * p2 + 2) as *const i32).read_unaligned();
                let x2 = (xp.add(2 * p2 + 4) as *const i32).read_unaligned();
                let x3 = (xp.add(2 * p2 + 6) as *const i32).read_unaligned();
                let w0 = _mm512_loadu_si512(wp as *const __m512i);
                let w1 = _mm512_loadu_si512(wp.add(2 * QNR) as *const __m512i);
                let w2 = _mm512_loadu_si512(wp.add(4 * QNR) as *const __m512i);
                let w3 = _mm512_loadu_si512(wp.add(6 * QNR) as *const __m512i);
                acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(_mm512_set1_epi32(x0), w0));
                acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(_mm512_set1_epi32(x1), w1));
                acc2 = _mm512_add_epi32(acc2, _mm512_madd_epi16(_mm512_set1_epi32(x2), w2));
                acc3 = _mm512_add_epi32(acc3, _mm512_madd_epi16(_mm512_set1_epi32(x3), w3));
                wp = wp.add(8 * QNR);
                p2 += 4;
            }
            while p2 < pairs {
                let x0 = (xp.add(2 * p2) as *const i32).read_unaligned();
                let wv = _mm512_loadu_si512(wp as *const __m512i);
                acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(_mm512_set1_epi32(x0), wv));
                wp = wp.add(2 * QNR);
                p2 += 1;
            }
            let acc = _mm512_add_epi32(_mm512_add_epi32(acc0, acc1), _mm512_add_epi32(acc2, acc3));
            let mut lanes_acc = [0i32; QNR];
            _mm512_storeu_si512(lanes_acc.as_mut_ptr() as *mut __m512i, acc);
            let j0 = jt * QNR;
            let lanes = QNR.min(self.rows - j0);
            for (jlane, &a) in lanes_acc.iter().enumerate().take(lanes) {
                y[j0 + jlane] = a as f32 * (sx * self.scales[j0 + jlane]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::with_kernel;
    use crate::rng::Rng;

    #[test]
    fn precision_names_round_trip() {
        for p in Precision::all() {
            assert_eq!(p.name().parse::<Precision>().unwrap(), p);
            assert_eq!(Precision::from_tag(p.tag()), Some(p));
        }
        assert!("f16".parse::<Precision>().is_err());
        assert_eq!(Precision::from_tag(9), None);
    }

    #[test]
    fn bf16_round_trip_is_within_relative_bound() {
        let mut rng = Rng::new(8);
        for _ in 0..1000 {
            let x = rng.normal() * 10.0f32.powi(rng.below(7) as i32 - 3);
            let y = bf16_decode(bf16_encode(x));
            // bf16 keeps 8 mantissa bits: relative error <= 2^-9 + slack.
            let tol = x.abs() * (1.0 / 256.0);
            assert!((x - y).abs() <= tol, "{x} -> {y}");
        }
        // Values already representable in bf16 survive exactly.
        for x in [0.0f32, -0.0, 1.0, -2.5, 0.15625, f32::INFINITY] {
            assert_eq!(bf16_decode(bf16_encode(x)).to_bits(), x.to_bits());
        }
        assert!(bf16_decode(bf16_encode(f32::NAN)).is_nan());
    }

    #[test]
    fn bf16_rounds_to_nearest_even() {
        // 1.0 + 2^-9 sits exactly between 1.0 and the next bf16 value;
        // round-to-nearest-even picks the even mantissa (1.0).
        let halfway = f32::from_bits(0x3f80_8000);
        assert_eq!(bf16_decode(bf16_encode(halfway)), 1.0);
        // Just above halfway rounds up.
        let above = f32::from_bits(0x3f80_8001);
        assert_eq!(bf16_decode(bf16_encode(above)), f32::from_bits(0x3f81_0000));
    }

    /// Satellite test: per-channel quantize→dequantize round trip stays
    /// within half a quantization step of the original, per channel.
    #[test]
    fn quantize_dequantize_round_trip_is_bounded_per_channel() {
        let mut rng = Rng::new(9);
        let (rows, cols) = (13, 37);
        let mut w: Vec<f32> = (0..rows * cols).map(|_| rng.normal()).collect();
        // Give the channels very different dynamic ranges.
        for r in 0..rows {
            let gain = 10.0f32.powi(r as i32 % 5 - 2);
            for v in &mut w[r * cols..(r + 1) * cols] {
                *v *= gain;
            }
        }
        let lin = QuantLinear::quantize(&w, rows, cols);
        let mut deq = vec![0.0; rows * cols];
        lin.dequantize_into(&mut deq);
        for r in 0..rows {
            let row = &w[r * cols..(r + 1) * cols];
            let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let scale = lin.scales[r];
            assert!((scale - max_abs / 127.0).abs() <= f32::EPSILON * max_abs);
            for c in 0..cols {
                let err = (w[r * cols + c] - deq[r * cols + c]).abs();
                assert!(
                    err <= scale * 0.5 + f32::EPSILON,
                    "row {r} col {c}: err {err} vs half-step {}",
                    scale * 0.5
                );
            }
        }
    }

    #[test]
    fn zero_channel_gets_unit_scale() {
        let w = vec![0.0f32; 8];
        let lin = QuantLinear::quantize(&w, 2, 4);
        assert_eq!(lin.scales, vec![1.0, 1.0]);
        let mut deq = vec![9.9; 8];
        lin.dequantize_into(&mut deq);
        assert_eq!(deq, vec![0.0; 8]);
    }

    #[test]
    fn from_parts_preserves_served_bytes() {
        let mut rng = Rng::new(10);
        let (rows, cols) = (5, 9);
        let w: Vec<f32> = (0..rows * cols).map(|_| rng.normal()).collect();
        let lin = QuantLinear::quantize(&w, rows, cols);
        let rebuilt = QuantLinear::from_parts(rows, cols, lin.scales.clone(), lin.q.clone());
        assert_eq!(lin, rebuilt);
    }

    /// Exact integer reference for the packed forward.
    fn reference_forward(lin: &QuantLinear, x: &[f32]) -> Vec<f32> {
        let max_abs = x.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let sx = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
        // Mirrors `quantize_row_into`: reciprocal multiply, not divide.
        let inv = 1.0 / sx;
        let xq: Vec<i32> = x
            .iter()
            .map(|&v| (v * inv).round_ties_even().clamp(-127.0, 127.0) as i32)
            .collect();
        (0..lin.rows)
            .map(|j| {
                let acc: i32 = (0..lin.cols)
                    .map(|p| i32::from(lin.q[j * lin.cols + p]) * xq[p])
                    .sum();
                acc as f32 * (sx * lin.scales[j])
            })
            .collect()
    }

    /// Tentpole test: the packed int8 forward is bit-identical across
    /// every supported kernel tier and matches the exact integer
    /// reference, over shapes that exercise ragged tiles and odd `cols`.
    #[test]
    fn packed_forward_is_bit_identical_across_kernels() {
        let mut rng = Rng::new(11);
        for &(rows, cols) in &[(1, 1), (3, 7), (16, 16), (17, 31), (40, 65), (64, 128)] {
            let w: Vec<f32> = (0..rows * cols).map(|_| rng.normal()).collect();
            let x: Vec<f32> = (0..cols).map(|_| rng.normal()).collect();
            let lin = QuantLinear::quantize(&w, rows, cols);
            let packed = PackedQuantLinear::new(&lin);
            let want = reference_forward(&lin, &x);
            for kernel in GemmKernel::all() {
                if !kernel.supported() {
                    continue;
                }
                let got = with_kernel(kernel, || {
                    let mut xq = Vec::new();
                    let mut y = vec![0.0; rows];
                    packed.forward_row(&x, &mut xq, &mut y);
                    y
                });
                assert_eq!(want, got, "{kernel} rows={rows} cols={cols}");
            }
        }
    }

    /// The batched kernels block rows in groups of [`QMB`]; every batch
    /// size (full blocks, partial tail, singleton) must reproduce the
    /// per-row path bit for bit on every kernel tier.
    #[test]
    fn batched_forward_matches_per_row_on_every_kernel() {
        let mut rng = Rng::new(12);
        let (rows, cols) = (19, 33);
        let w: Vec<f32> = (0..rows * cols).map(|_| rng.normal()).collect();
        let lin = QuantLinear::quantize(&w, rows, cols);
        let packed = PackedQuantLinear::new(&lin);
        for &b in &[1usize, 3, 4, 5, 8, 11] {
            let xs: Vec<f32> = (0..b * cols).map(|_| rng.normal()).collect();
            for kernel in GemmKernel::all() {
                if !kernel.supported() {
                    continue;
                }
                let (batched, per_row) = with_kernel(kernel, || {
                    let mut xq = Vec::new();
                    let mut ys = vec![0.0; b * rows];
                    packed.forward_batch(&xs, &mut xq, &mut ys);
                    let mut rows_out = vec![0.0; b * rows];
                    for (xrow, yrow) in xs.chunks_exact(cols).zip(rows_out.chunks_exact_mut(rows)) {
                        packed.forward_row(xrow, &mut xq, yrow);
                    }
                    (ys, rows_out)
                });
                let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&batched), bits(&per_row), "{kernel} b={b}");
            }
        }
    }

    #[test]
    fn packed_forward_handles_zero_input() {
        let lin = QuantLinear::quantize(&[1.0, -2.0, 3.0, 4.0], 2, 2);
        let packed = PackedQuantLinear::new(&lin);
        let mut xq = Vec::new();
        let mut y = vec![9.0; 2];
        packed.forward_row(&[0.0, 0.0], &mut xq, &mut y);
        assert_eq!(y, vec![0.0, 0.0]);
    }
}
