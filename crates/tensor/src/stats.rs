//! Streaming statistics.
//!
//! The auto-tuner (paper Algorithm 2) decides the number of learners per GPU
//! from the *observed training throughput*, and the metric collectors track
//! accuracy over epochs. Both need small online statistics helpers: a
//! Welford mean/variance accumulator, an exponentially-weighted moving
//! average, and a windowed median (the paper's time-to-accuracy metric is
//! defined on the *median* test accuracy of the last five epochs, §5.1).

/// Welford online mean/variance accumulator.
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Exponentially-weighted moving average, used to smooth the throughput
/// signal the auto-tuner reacts to.
#[derive(Clone, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`; larger
    /// alpha reacts faster.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Adds a sample and returns the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current average, if any sample has been seen.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Clears the accumulator.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Median over a sliding window of the last `window` samples.
///
/// The paper's TTA metric uses the median test accuracy of the last five
/// epochs; `WindowedMedian::new(5)` implements exactly that.
#[derive(Clone, Debug)]
pub struct WindowedMedian {
    window: usize,
    buf: Vec<f64>,
    next: usize,
    filled: bool,
}

impl WindowedMedian {
    /// Creates a windowed median over the last `window` samples.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        WindowedMedian {
            window,
            buf: Vec::with_capacity(window),
            next: 0,
            filled: false,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        if self.buf.len() < self.window {
            self.buf.push(x);
            if self.buf.len() == self.window {
                self.filled = true;
            }
        } else {
            self.buf[self.next] = x;
            self.next = (self.next + 1) % self.window;
        }
    }

    /// Median of the current window contents (`None` before any sample).
    ///
    /// With an even count, the mean of the two central values is returned.
    pub fn median(&self) -> Option<f64> {
        if self.buf.is_empty() {
            return None;
        }
        let mut sorted = self.buf.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median window"));
        let n = sorted.len();
        Some(if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        })
    }

    /// True once `window` samples have been seen.
    pub fn is_full(&self) -> bool {
        self.filled
    }
}

/// Median of a slice (convenience for report generation). `None` if empty
/// or if any value is NaN.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| v.is_nan()) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("checked for NaN"));
    let n = sorted.len();
    Some(if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_small_counts() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn ewma_first_sample_passes_through() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.push(10.0), 10.0);
        assert_eq!(e.push(0.0), 5.0);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn windowed_median_tracks_last_n() {
        let mut m = WindowedMedian::new(3);
        assert_eq!(m.median(), None);
        m.push(1.0);
        assert_eq!(m.median(), Some(1.0));
        m.push(9.0);
        assert_eq!(m.median(), Some(5.0)); // even count: midpoint
        m.push(2.0);
        assert!(m.is_full());
        assert_eq!(m.median(), Some(2.0));
        m.push(10.0); // evicts 1.0 -> window {9, 2, 10}
        assert_eq!(m.median(), Some(9.0));
        m.push(11.0); // evicts 9.0 -> {2, 10, 11}
        assert_eq!(m.median(), Some(10.0));
    }

    #[test]
    fn median_of_slice() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
        assert_eq!(median(&[4.0, 1.0, 3.0]), Some(3.0));
        assert_eq!(median(&[1.0, f64::NAN]), None);
    }
}
