//! Owned, dense, row-major `f32` tensors.
//!
//! [`Tensor`] is deliberately simple: a [`Shape`] plus a `Vec<f32>`. The
//! neural-network substrate keeps all *parameters* in flat contiguous
//! vectors (the paper notes in §4.4 that contiguous weights let a replica be
//! allocated with a single call), so `Tensor` is mostly used for layer
//! activations and input batches.

use crate::rng::Rng;
use crate::shape::Shape;
use std::fmt;

/// A dense, row-major `f32` tensor.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros<S: Into<Shape>>(shape: S) -> Self {
        let shape = shape.into();
        let data = vec![0.0; shape.len()];
        Tensor { shape, data }
    }

    /// A tensor filled with a constant.
    pub fn full<S: Into<Shape>>(shape: S, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.len()];
        Tensor { shape, data }
    }

    /// Builds a tensor from a shape and existing data.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.len()`.
    pub fn from_vec<S: Into<Shape>>(shape: S, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// A 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor::from_vec(Shape::vector(data.len()), data.to_vec())
    }

    /// A tensor with entries drawn i.i.d. from `N(0, stddev^2)`.
    pub fn randn<S: Into<Shape>>(shape: S, stddev: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(|_| rng.normal() * stddev).collect();
        Tensor { shape, data }
    }

    /// A tensor with entries drawn i.i.d. from `U[lo, hi)`.
    pub fn rand_uniform<S: Into<Shape>>(shape: S, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(|_| rng.uniform(lo, hi)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Reinterprets the tensor with a new shape of the same element count.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape<S: Into<Shape>>(mut self, shape: S) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            self.data.len(),
            "cannot reshape {} elements to {shape}",
            self.data.len()
        );
        self.shape = shape;
        self
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Copies data from another tensor of identical shape.
    pub fn copy_from(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "copy_from shape mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Index of the maximum element (first on ties). `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &v) in self.data.iter().enumerate() {
            match best {
                Some((_, bv)) if bv >= v => {}
                _ => best = Some((i, v)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Maximum absolute element (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Squared L2 norm of the elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum()
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor({} ", self.shape)?;
        if self.data.len() <= PREVIEW {
            write!(f, "{:?}", self.data)?;
        } else {
            write!(f, "{:?}...", &self.data[..PREVIEW])?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let f = Tensor::full([2, 2], 1.5);
        assert!(f.data().iter().all(|&v| v == 1.5));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_checks_len() {
        let _ = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros([2, 3]);
        *t.at_mut(&[1, 2]) = 7.0;
        assert_eq!(t.at(&[1, 2]), 7.0);
        assert_eq!(t.data()[5], 7.0);
    }

    #[test]
    fn reshape_keeps_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]).reshape([2, 2]);
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    fn argmax_first_on_ties() {
        let t = Tensor::from_slice(&[1.0, 3.0, 3.0, 2.0]);
        assert_eq!(t.argmax(), Some(1));
        assert_eq!(Tensor::from_slice(&[]).argmax(), None);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(t.sum(), 2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.max_abs(), 3.0);
        assert_eq!(t.norm_sq(), 14.0);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let ta = Tensor::randn([4, 4], 1.0, &mut a);
        let tb = Tensor::randn([4, 4], 1.0, &mut b);
        assert_eq!(ta.data(), tb.data());
        assert!(ta.is_finite());
    }

    #[test]
    fn copy_from_copies() {
        let src = Tensor::from_slice(&[1.0, 2.0]);
        let mut dst = Tensor::zeros([2]);
        dst.copy_from(&src);
        assert_eq!(dst.data(), src.data());
    }
}
