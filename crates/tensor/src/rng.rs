//! Deterministic random number generation.
//!
//! Every experiment in the CROSSBOW reproduction must be bit-reproducible
//! from a seed: the same seed has to produce the same model initialisation,
//! the same batch order, and therefore the same accuracy curve, regardless
//! of the versions of external crates. We therefore implement a small RNG
//! in-tree instead of depending on `rand` in library code: a SplitMix64
//! seeder feeding a PCG32 stream, plus the Box–Muller transform for normal
//! samples. Tests draw their random cases from this RNG too, so the whole
//! workspace builds without any registry dependency.

/// A deterministic PCG32 random number generator.
///
/// ```
/// use crossbow_tensor::Rng;
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u32(), b.next_u32());
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
    inc: u64,
    /// Cached second sample of the Box–Muller pair.
    spare_normal: Option<f32>,
}

/// The raw, serialisable state of a [`Rng`] stream.
///
/// Round-tripping through [`Rng::export_state`] / [`Rng::import_state`]
/// reproduces the stream bit-exactly — including the cached Box–Muller
/// spare — which is what lets a crash-restored training run continue the
/// exact random sequence of the uninterrupted one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RngState {
    /// PCG32 state word.
    pub state: u64,
    /// PCG32 stream increment (always odd).
    pub inc: u64,
    /// Cached second sample of the Box–Muller pair, if one is pending.
    pub spare_normal: Option<f32>,
}

const PCG_MULT: u64 = 6364136223846793005;

/// SplitMix64 step; used to expand a user seed into PCG state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = splitmix64(&mut sm);
        let inc = splitmix64(&mut sm) | 1; // stream must be odd
        let mut rng = Rng {
            state: 0,
            inc,
            spare_normal: None,
        };
        // Standard PCG initialisation: advance once with the seeded state.
        rng.state = state.wrapping_add(inc);
        rng.next_u32();
        rng
    }

    /// Exports the raw generator state for checkpointing.
    ///
    /// ```
    /// use crossbow_tensor::Rng;
    /// let mut a = Rng::new(7);
    /// let _ = a.next_u32();
    /// let mut b = Rng::import_state(a.export_state());
    /// for _ in 0..100 {
    ///     assert_eq!(a.next_u32(), b.next_u32());
    /// }
    /// ```
    pub fn export_state(&self) -> RngState {
        RngState {
            state: self.state,
            inc: self.inc,
            spare_normal: self.spare_normal,
        }
    }

    /// Reconstructs a generator from exported raw state, continuing the
    /// stream exactly where [`Rng::export_state`] captured it — the cached
    /// Box–Muller spare included:
    ///
    /// ```
    /// use crossbow_tensor::Rng;
    /// let mut a = Rng::new(9);
    /// let _ = a.normal(); // leaves the pair's second sample cached
    /// let mut b = Rng::import_state(a.export_state());
    /// assert_eq!(a.normal().to_bits(), b.normal().to_bits()); // the spare
    /// assert_eq!(a.normal().to_bits(), b.normal().to_bits()); // fresh pair
    /// assert_eq!(a.next_u32(), b.next_u32());
    /// ```
    pub fn import_state(state: RngState) -> Rng {
        Rng {
            state: state.state,
            inc: state.inc,
            spare_normal: state.spare_normal,
        }
    }

    /// Derives an independent generator; used to give each learner, data
    /// pre-processor or GPU its own stream from one experiment seed.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let mut sm = self.next_u64() ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
        let seed = splitmix64(&mut sm);
        Rng::new(seed)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform sample in `[0, 1)` with 32 bits of precision.
    pub fn next_f32(&mut self) -> f32 {
        // 24 high bits -> exactly representable in f32.
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Unbiased uniform integer in `[0, bound)` (Lemire rejection).
    ///
    /// # Panics
    /// Panics when `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is meaningless");
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let (hi, lo) = (
                ((u128::from(x) * u128::from(bound)) >> 64) as u64,
                x.wrapping_mul(bound),
            );
            if lo >= bound || lo >= x.wrapping_neg() % bound {
                return hi as usize;
            }
        }
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u1 = self.next_f64();
            if u1 <= f64::EPSILON {
                continue;
            }
            let u2 = self.next_f64();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.spare_normal = Some((r * theta.sin()) as f32);
            return (r * theta.cos()) as f32;
        }
    }

    /// Bernoulli sample with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..16).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should not match");
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut root1 = Rng::new(9);
        let mut root2 = Rng::new(9);
        let mut f1 = root1.fork(0);
        let mut f2 = root2.fork(0);
        assert_eq!(f1.next_u64(), f2.next_u64());
        let mut g1 = root1.fork(1);
        assert_ne!(f1.next_u64(), g1.next_u64());
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = Rng::new(4);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers_values() {
        let mut rng = Rng::new(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = rng.below(7);
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = Rng::new(6);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(7);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle should move elements"
        );
    }

    #[test]
    fn bernoulli_respects_probability() {
        let mut rng = Rng::new(8);
        let hits = (0..20_000).filter(|_| rng.bernoulli(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn raw_state_round_trip_is_bit_exact() {
        let mut a = Rng::new(31);
        // Consume a mixed stream, ending with a pending Box–Muller spare.
        for _ in 0..17 {
            let _ = a.next_u64();
        }
        let _ = a.normal();
        let exported = a.export_state();
        let mut b = Rng::import_state(exported);
        assert_eq!(b.export_state(), exported);
        for _ in 0..50 {
            assert_eq!(a.normal().to_bits(), b.normal().to_bits());
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn permutation_covers_all_indices() {
        let mut rng = Rng::new(11);
        let p = rng.permutation(10);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}
